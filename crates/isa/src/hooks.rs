//! Debug-build verification hooks.
//!
//! The analysis crate (`fetchmech-analysis`) sits *above* this crate in the
//! dependency graph, so the IR constructors here cannot call its verifiers
//! directly. Instead they expose process-global hook slots: an embedder (the
//! analysis crate's `install_debug_hooks`, the experiment harness, or a test)
//! installs function pointers once, and every subsequently constructed
//! [`Program`] or [`Layout`] is handed to them
//! — in debug builds only. Release builds skip the calls entirely.
//!
//! A hook returns `Err(report)` to reject the artifact; the constructor then
//! panics with the report, turning silent IR corruption into a loud failure
//! at the construction site.

use std::sync::OnceLock;

use crate::cfg::Program;
use crate::layout::Layout;

/// Verification callback for freshly constructed [`Program`]s.
pub type ProgramHook = fn(&Program) -> Result<(), String>;

/// Verification callback for freshly constructed [`Layout`]s.
pub type LayoutHook = fn(&Program, &Layout) -> Result<(), String>;

static PROGRAM_HOOK: OnceLock<ProgramHook> = OnceLock::new();
static LAYOUT_HOOK: OnceLock<LayoutHook> = OnceLock::new();

/// Installs the process-wide program hook. Returns `false` if one was
/// already installed (the first installation wins).
pub fn install_program_hook(hook: ProgramHook) -> bool {
    PROGRAM_HOOK.set(hook).is_ok()
}

/// Installs the process-wide layout hook. Returns `false` if one was
/// already installed (the first installation wins).
pub fn install_layout_hook(hook: LayoutHook) -> bool {
    LAYOUT_HOOK.set(hook).is_ok()
}

/// Runs the installed program hook, if any, in debug builds.
///
/// # Panics
///
/// Panics with the hook's report if the program is rejected.
pub(crate) fn check_program(program: &Program) {
    if cfg!(debug_assertions) {
        if let Some(hook) = PROGRAM_HOOK.get() {
            if let Err(report) = hook(program) {
                panic!("program verification hook rejected the IR:\n{report}");
            }
        }
    }
}

/// Runs the installed layout hook, if any, in debug builds.
///
/// # Panics
///
/// Panics with the hook's report if the layout is rejected.
pub(crate) fn check_layout(program: &Program, layout: &Layout) {
    if cfg!(debug_assertions) {
        if let Some(hook) = LAYOUT_HOOK.get() {
            if let Err(report) = hook(program, layout) {
                panic!("layout verification hook rejected the layout:\n{report}");
            }
        }
    }
}
