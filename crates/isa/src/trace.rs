//! Dynamic instruction records — the unit of communication between the
//! workload executor and the fetch/pipeline simulators.

use crate::addr::Addr;
use crate::cfg::BranchId;
use crate::op::OpClass;
use crate::reg::Reg;

/// Control-flow outcome attached to a dynamic control instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynCtrl {
    /// Stable branch id for conditional branches; `None` for jumps, calls,
    /// returns, and halts.
    pub branch_id: Option<BranchId>,
    /// Whether the hardware transfer was taken this execution. Always `true`
    /// for unconditional transfers.
    pub taken: bool,
    /// The taken-destination address. For conditional branches this is the
    /// *static* taken target even when the branch falls through (the BTB
    /// stores it); for returns it is the dynamic return address.
    pub target: Addr,
    /// For calls: the address the matching return will resume at (what a
    /// return-address stack would push). `None` for every other transfer.
    pub link: Option<Addr>,
}

/// One dynamically-executed instruction.
///
/// # Examples
///
/// ```
/// use fetchmech_isa::{Addr, DynInst, OpClass};
///
/// let i = DynInst::simple(Addr::new(0x1000), OpClass::IntAlu, None, [None, None]);
/// assert_eq!(i.next_pc, Addr::new(0x1004));
/// assert!(!i.is_taken_control());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynInst {
    /// Instruction address.
    pub addr: Addr,
    /// Operation class.
    pub op: OpClass,
    /// Destination register.
    pub dest: Option<Reg>,
    /// Source registers.
    pub srcs: [Option<Reg>; 2],
    /// Address of the next instruction actually executed.
    pub next_pc: Addr,
    /// Control outcome; `Some` exactly for control transfers and halts.
    pub ctrl: Option<DynCtrl>,
}

impl DynInst {
    /// Creates a non-control dynamic instruction falling through to the next
    /// word.
    #[must_use]
    pub fn simple(addr: Addr, op: OpClass, dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        debug_assert!(!op.is_control() && op != OpClass::Halt);
        Self {
            addr,
            op,
            dest,
            srcs,
            next_pc: addr.add_words(1),
            ctrl: None,
        }
    }

    /// Returns `true` if this instruction redirected the instruction stream
    /// (a taken branch, jump, call, return, or halt restart).
    #[must_use]
    pub fn is_taken_control(&self) -> bool {
        self.ctrl.is_some_and(|c| c.taken)
    }

    /// Returns `true` if this is a conditional branch.
    #[must_use]
    pub fn is_cond_branch(&self) -> bool {
        self.op == OpClass::CondBranch
    }

    /// For a taken control transfer, returns `true` if the target lies in the
    /// same cache block as the branch itself — an *intra-block branch* in the
    /// paper's Table 2 sense. Returns `false` for non-control or not-taken
    /// instructions.
    #[must_use]
    pub fn is_intra_block_taken(&self, block_bytes: u64) -> bool {
        match self.ctrl {
            Some(c) if c.taken => self.addr.same_block(c.target, block_bytes),
            _ => false,
        }
    }
}

/// Accumulates the dynamic-stream statistics the paper reports (taken-branch
/// counts and Table 2's intra-block percentages).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total dynamic instructions observed.
    pub insts: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Dynamic *taken* conditional branches.
    pub taken_cond_branches: u64,
    /// All taken control transfers (branches, jumps, calls, returns, halts).
    pub taken_controls: u64,
    /// Taken control transfers whose target lies in the same cache block.
    pub intra_block_taken: u64,
    /// Dynamic nops (interesting under the padding optimizations).
    pub nops: u64,
}

impl TraceStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one dynamic instruction, classifying intra-block transfers
    /// with the given cache-block size.
    pub fn observe(&mut self, inst: &DynInst, block_bytes: u64) {
        self.insts += 1;
        if inst.op == OpClass::Nop {
            self.nops += 1;
        }
        if inst.is_cond_branch() {
            self.cond_branches += 1;
            if inst.is_taken_control() {
                self.taken_cond_branches += 1;
            }
        }
        if inst.is_taken_control() {
            self.taken_controls += 1;
            if inst.is_intra_block_taken(block_bytes) {
                self.intra_block_taken += 1;
            }
        }
    }

    /// Percentage of taken control transfers with an intra-block target
    /// (Table 2's metric).
    #[must_use]
    pub fn intra_block_pct(&self) -> f64 {
        if self.taken_controls == 0 {
            0.0
        } else {
            100.0 * self.intra_block_taken as f64 / self.taken_controls as f64
        }
    }

    /// Fraction of conditional branches that were taken.
    #[must_use]
    pub fn taken_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.taken_cond_branches as f64 / self.cond_branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn taken_branch(addr: u64, target: u64) -> DynInst {
        DynInst {
            addr: Addr::new(addr),
            op: OpClass::CondBranch,
            dest: None,
            srcs: [None, None],
            next_pc: Addr::new(target),
            ctrl: Some(DynCtrl {
                branch_id: Some(BranchId(0)),
                taken: true,
                target: Addr::new(target),
                link: None,
            }),
        }
    }

    #[test]
    fn simple_falls_through() {
        let i = DynInst::simple(Addr::new(0x100), OpClass::Load, None, [None, None]);
        assert_eq!(i.next_pc, Addr::new(0x104));
        assert!(!i.is_taken_control());
    }

    #[test]
    fn intra_block_detection() {
        let near = taken_branch(0x100, 0x108);
        let far = taken_branch(0x100, 0x200);
        assert!(near.is_intra_block_taken(16));
        assert!(!far.is_intra_block_taken(16));
        // With a bigger block the "far" branch becomes intra-block.
        assert!(far.is_intra_block_taken(1024));
    }

    #[test]
    fn stats_accumulate() {
        let mut s = TraceStats::new();
        s.observe(&taken_branch(0x100, 0x108), 16);
        s.observe(&taken_branch(0x100, 0x200), 16);
        s.observe(
            &DynInst::simple(Addr::new(0x104), OpClass::IntAlu, None, [None, None]),
            16,
        );
        assert_eq!(s.insts, 3);
        assert_eq!(s.cond_branches, 2);
        assert_eq!(s.taken_cond_branches, 2);
        assert_eq!(s.taken_controls, 2);
        assert_eq!(s.intra_block_taken, 1);
        assert!((s.intra_block_pct() - 50.0).abs() < 1e-9);
        assert!((s.taken_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn stats_empty_percentages_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.intra_block_pct(), 0.0);
        assert_eq!(s.taken_rate(), 0.0);
    }

    #[test]
    fn not_taken_branch_is_not_intra_block() {
        let mut b = taken_branch(0x100, 0x108);
        b.ctrl = Some(DynCtrl {
            branch_id: Some(BranchId(0)),
            taken: false,
            target: Addr::new(0x108),
            link: None,
        });
        b.next_pc = Addr::new(0x104);
        assert!(!b.is_intra_block_taken(16));
        let mut s = TraceStats::new();
        s.observe(&b, 16);
        assert_eq!(s.taken_controls, 0);
        assert_eq!(s.cond_branches, 1);
    }
}
