//! Control-flow graphs: basic blocks, terminators, and programs.
//!
//! A [`Program`] is a set of [`Block`]s grouped into functions. Blocks hold
//! straight-line *body* instructions ([`Inst`]) and end in a [`Terminator`].
//! Control-flow instructions are materialized from terminators only when the
//! program is laid out in memory (see [`crate::layout`]), which is what lets
//! the compiler crate reorder blocks, invert branch senses, and elide jumps
//! without touching instruction contents.

use std::collections::HashMap;
use std::fmt;

use crate::op::OpClass;
use crate::reg::Reg;

/// Identifier of a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

/// Identifier of a function within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

/// Stable identity of a static conditional branch.
///
/// Branch behaviour models and profile counts are keyed by `BranchId`; the
/// id survives code reordering and sense inversion, which is what keeps the
/// §4 compiler experiments honest (the same dynamic branch keeps the same
/// behaviour before and after layout transforms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BranchId(pub u32);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F{}", self.0)
    }
}

impl fmt::Display for BranchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "br{}", self.0)
    }
}

/// A straight-line (non-control) instruction in a block body.
///
/// # Examples
///
/// ```
/// use fetchmech_isa::{Inst, OpClass, Reg};
///
/// let add = Inst::new(OpClass::IntAlu, Some(Reg::int(3)), [Some(Reg::int(1)), Some(Reg::int(2))]);
/// assert_eq!(add.op, OpClass::IntAlu);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Inst {
    /// Operation class. Must not be a control-transfer class.
    pub op: OpClass,
    /// Destination register, if any.
    pub dest: Option<Reg>,
    /// Source registers (up to two).
    pub srcs: [Option<Reg>; 2],
    /// Short immediate (address offsets, small constants).
    pub imm: i8,
}

impl Inst {
    /// Creates a body instruction with a zero immediate.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a control-transfer class; those are expressed as
    /// block [`Terminator`]s.
    #[must_use]
    pub fn new(op: OpClass, dest: Option<Reg>, srcs: [Option<Reg>; 2]) -> Self {
        assert!(!op.is_control(), "control op {op} must be a terminator");
        Self {
            op,
            dest,
            srcs,
            imm: 0,
        }
    }

    /// Creates a no-operation.
    #[must_use]
    pub fn nop() -> Self {
        Self {
            op: OpClass::Nop,
            dest: None,
            srcs: [None, None],
            imm: 0,
        }
    }

    /// Sets the immediate field (builder style).
    #[must_use]
    pub fn with_imm(mut self, imm: i8) -> Self {
        self.imm = imm;
        self
    }
}

/// How a basic block transfers control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Terminator {
    /// Fall through to `next`. Materializes as a jump only if `next` is not
    /// laid out immediately after this block.
    FallThrough {
        /// Successor block.
        next: BlockId,
    },
    /// Two-way conditional branch.
    CondBranch {
        /// Stable branch identity (see [`BranchId`]).
        id: BranchId,
        /// Registers the branch condition reads.
        srcs: [Option<Reg>; 2],
        /// Destination when the hardware branch is taken.
        taken: BlockId,
        /// Destination when the hardware branch falls through.
        fall: BlockId,
        /// `true` if a layout transform swapped the `taken`/`fall` edges
        /// relative to the branch's original construction. Behaviour models
        /// decide in terms of the *original* taken edge; the executor XORs
        /// their decision with this flag to get the hardware direction.
        inverted: bool,
    },
    /// Unconditional direct jump.
    Jump {
        /// Destination block.
        target: BlockId,
    },
    /// Direct call. Control flows to `callee`; the matching `Return` resumes
    /// at `return_to`.
    Call {
        /// Entry block of the called function.
        callee: BlockId,
        /// Block control resumes at after the callee returns.
        return_to: BlockId,
    },
    /// Return to the most recent caller's `return_to` block.
    Return,
    /// End of program; the trace executor restarts from the entry block.
    Halt,
}

/// Classification of a control-flow edge leaving a block, used by the
/// profiler and trace-selection passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Sequential fall-through edge.
    Fall,
    /// Hardware-taken edge of a conditional branch.
    Taken,
    /// Unconditional jump edge.
    Jump,
    /// Call edge (to the callee entry).
    Call,
    /// Post-call resume edge (to the `return_to` block).
    CallFall,
}

impl Terminator {
    /// Returns the intra-procedural successor edges of this terminator.
    ///
    /// Call terminators report only the `return_to` edge (as [`EdgeKind::CallFall`]);
    /// the interprocedural edge to the callee is excluded so that trace
    /// selection never grows a trace across a function boundary.
    #[must_use]
    pub fn local_successors(&self) -> Vec<(EdgeKind, BlockId)> {
        match *self {
            Terminator::FallThrough { next } => vec![(EdgeKind::Fall, next)],
            Terminator::CondBranch { taken, fall, .. } => {
                vec![(EdgeKind::Taken, taken), (EdgeKind::Fall, fall)]
            }
            Terminator::Jump { target } => vec![(EdgeKind::Jump, target)],
            Terminator::Call { return_to, .. } => vec![(EdgeKind::CallFall, return_to)],
            Terminator::Return | Terminator::Halt => vec![],
        }
    }

    /// Returns the conditional-branch id, if this terminator is one.
    #[must_use]
    pub fn branch_id(&self) -> Option<BranchId> {
        match self {
            Terminator::CondBranch { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// A basic block: body instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// This block's id (equal to its index in [`Program::blocks`]).
    pub id: BlockId,
    /// Function this block belongs to.
    pub func: FuncId,
    /// Straight-line body instructions (no control transfers).
    pub insts: Vec<Inst>,
    /// The block's control transfer.
    pub terminator: Terminator,
}

/// A whole program: blocks, function entries, and the program entry point.
///
/// Construct with [`ProgramBuilder`]; `Program` itself is immutable, which is
/// what allows layouts, profiles, and behaviour maps to reference block and
/// branch ids without invalidation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    blocks: Vec<Block>,
    func_entries: Vec<BlockId>,
    entry: BlockId,
    num_branches: u32,
}

impl Program {
    /// Returns the program entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Returns all blocks in id order.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Returns the number of blocks.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Returns the number of static conditional branches.
    #[must_use]
    pub fn num_branches(&self) -> u32 {
        self.num_branches
    }

    /// Returns the entry block of each function, indexed by [`FuncId`].
    #[must_use]
    pub fn func_entries(&self) -> &[BlockId] {
        &self.func_entries
    }

    /// Returns the number of functions.
    #[must_use]
    pub fn num_funcs(&self) -> usize {
        self.func_entries.len()
    }

    /// A stable FNV-1a content hash over the whole CFG: entry, function
    /// entries, every instruction, and every terminator. Equal programs hash
    /// equal across processes and restarts (no pointer or `HashMap` order
    /// dependence), which is what lets callers derive persistent
    /// content-addressed identifiers from it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(PRIME);
        };
        let reg = |r: Option<Reg>| -> u64 {
            match r {
                None => 0,
                Some(Reg::Int(n)) => 1 + u64::from(n),
                Some(Reg::Fp(n)) => 64 + u64::from(n),
            }
        };
        mix(u64::from(self.entry.0));
        mix(self.func_entries.len() as u64);
        for f in &self.func_entries {
            mix(u64::from(f.0));
        }
        for b in &self.blocks {
            mix(u64::from(b.func.0));
            mix(b.insts.len() as u64);
            for inst in &b.insts {
                mix(inst.op as u64);
                mix(reg(inst.dest));
                mix(reg(inst.srcs[0]));
                mix(reg(inst.srcs[1]));
                mix(inst.imm as u8 as u64);
            }
            match b.terminator {
                Terminator::FallThrough { next } => {
                    mix(1);
                    mix(u64::from(next.0));
                }
                Terminator::CondBranch {
                    id,
                    srcs,
                    taken,
                    fall,
                    inverted,
                } => {
                    mix(2);
                    mix(u64::from(id.0));
                    mix(reg(srcs[0]));
                    mix(reg(srcs[1]));
                    mix(u64::from(taken.0));
                    mix(u64::from(fall.0));
                    mix(u64::from(inverted));
                }
                Terminator::Jump { target } => {
                    mix(3);
                    mix(u64::from(target.0));
                }
                Terminator::Call { callee, return_to } => {
                    mix(4);
                    mix(u64::from(callee.0));
                    mix(u64::from(return_to.0));
                }
                Terminator::Return => mix(5),
                Terminator::Halt => mix(6),
            }
        }
        h
    }

    /// Total body + terminator-branch instruction count when every jump is
    /// materialized (an upper bound on laid-out size, before nop padding and
    /// before fall-through elision).
    #[must_use]
    pub fn static_inst_upper_bound(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.insts.len()
                    + match b.terminator {
                        Terminator::FallThrough { .. } => 1,
                        Terminator::CondBranch { .. } => 2,
                        Terminator::Jump { .. }
                        | Terminator::Call { .. }
                        | Terminator::Return
                        | Terminator::Halt => 1,
                    }
            })
            .sum()
    }

    /// Computes the intra-procedural predecessor map (callee entries have no
    /// predecessors recorded; `CallFall` edges count as predecessors).
    #[must_use]
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in &self.blocks {
            for (_, succ) in b.terminator.local_successors() {
                preds.entry(succ).or_default().push(b.id);
            }
        }
        preds
    }

    /// Returns a new program with the given block terminators replaced.
    ///
    /// Used by the code-reordering pass to invert branch senses and convert
    /// jumps/fall-throughs. Every key must be a valid block id and the
    /// replacement must pass the same validation as [`ProgramBuilder::finish`].
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the edited program is malformed.
    pub fn with_terminators(
        &self,
        edits: &HashMap<BlockId, Terminator>,
    ) -> Result<Program, ValidateError> {
        let mut blocks = self.blocks.clone();
        for (&id, term) in edits {
            let idx = id.0 as usize;
            if idx >= blocks.len() {
                return Err(ValidateError::UnknownBlock(id));
            }
            blocks[idx].terminator = *term;
        }
        let prog = Program {
            blocks,
            func_entries: self.func_entries.clone(),
            entry: self.entry,
            num_branches: self.num_branches,
        };
        prog.validate()?;
        crate::hooks::check_program(&prog);
        Ok(prog)
    }

    /// Starts a validated editing session over this program (clone-on-edit).
    ///
    /// This is the mutation companion to [`CfgView`]: compiler passes that
    /// rewrite bodies, retarget terminators, or duplicate blocks build a
    /// [`ProgramEdit`], apply their changes, and get back a fully
    /// re-validated [`Program`] (same checks as [`ProgramBuilder::finish`],
    /// including the debug verification hooks).
    #[must_use]
    pub fn edit(&self) -> ProgramEdit {
        ProgramEdit {
            blocks: self.blocks.clone(),
            func_entries: self.func_entries.clone(),
            entry: self.entry,
            num_branches: self.num_branches,
        }
    }

    /// Decomposes the program into its raw parts.
    ///
    /// Together with [`Program::from_raw`] this is the escape hatch for
    /// verification tooling: tests corrupt one field of a valid program and
    /// assert the analysis layer catches exactly that corruption.
    #[must_use]
    pub fn into_raw(self) -> RawProgram {
        RawProgram {
            blocks: self.blocks,
            func_entries: self.func_entries,
            entry: self.entry,
            num_branches: self.num_branches,
        }
    }

    /// Reassembles a program from raw parts **without validation** and
    /// without running verification hooks.
    ///
    /// The result may violate every invariant [`ProgramBuilder::finish`]
    /// enforces; anything consuming it must be prepared for out-of-range
    /// ids. Intended for the analysis layer's mutation tests and for tools
    /// that deliberately need malformed IR.
    #[must_use]
    pub fn from_raw(raw: RawProgram) -> Self {
        Self {
            blocks: raw.blocks,
            func_entries: raw.func_entries,
            entry: raw.entry,
            num_branches: raw.num_branches,
        }
    }

    fn validate(&self) -> Result<(), ValidateError> {
        let nblocks = self.blocks.len() as u32;
        let check = |id: BlockId| -> Result<(), ValidateError> {
            if id.0 >= nblocks {
                Err(ValidateError::UnknownBlock(id))
            } else {
                Ok(())
            }
        };
        check(self.entry)?;
        if self.func_entries.is_empty() {
            return Err(ValidateError::NoFunctions);
        }
        for &fe in &self.func_entries {
            check(fe)?;
        }
        let mut seen_branch = vec![false; self.num_branches as usize];
        for (idx, b) in self.blocks.iter().enumerate() {
            if b.id.0 as usize != idx {
                return Err(ValidateError::BlockIdMismatch {
                    expected: idx as u32,
                    found: b.id,
                });
            }
            if b.func.0 as usize >= self.func_entries.len() {
                return Err(ValidateError::UnknownFunc(b.func));
            }
            for inst in &b.insts {
                if inst.op.is_control() {
                    return Err(ValidateError::ControlInBody {
                        block: b.id,
                        op: inst.op,
                    });
                }
            }
            match b.terminator {
                Terminator::FallThrough { next } => {
                    check(next)?;
                    self.check_same_func(b, next)?;
                }
                Terminator::CondBranch {
                    id, taken, fall, ..
                } => {
                    check(taken)?;
                    check(fall)?;
                    self.check_same_func(b, taken)?;
                    self.check_same_func(b, fall)?;
                    let slot = id.0 as usize;
                    if slot >= seen_branch.len() {
                        return Err(ValidateError::UnknownBranch(id));
                    }
                    if seen_branch[slot] {
                        return Err(ValidateError::DuplicateBranch(id));
                    }
                    seen_branch[slot] = true;
                }
                Terminator::Jump { target } => {
                    check(target)?;
                    self.check_same_func(b, target)?;
                }
                Terminator::Call { callee, return_to } => {
                    check(callee)?;
                    check(return_to)?;
                    self.check_same_func(b, return_to)?;
                    let callee_func = self.blocks[callee.0 as usize].func;
                    if self.func_entries[callee_func.0 as usize] != callee {
                        return Err(ValidateError::CallToNonEntry {
                            block: b.id,
                            callee,
                        });
                    }
                }
                Terminator::Return | Terminator::Halt => {}
            }
        }
        if !seen_branch.iter().all(|&s| s) {
            return Err(ValidateError::MissingBranch);
        }
        Ok(())
    }

    fn check_same_func(&self, from: &Block, to: BlockId) -> Result<(), ValidateError> {
        let to_func = self.blocks[to.0 as usize].func;
        if to_func != from.func {
            return Err(ValidateError::CrossFuncEdge { from: from.id, to });
        }
        Ok(())
    }
}

/// Dense successor/predecessor adjacency over a [`Program`]'s CFG.
///
/// [`Program::predecessors`] answers one-off queries through a `HashMap`;
/// analyses that traverse the graph repeatedly (the dataflow solver, the
/// dominator builder) want `O(1)` indexed edge lists instead. A view is a
/// snapshot: it does not borrow the program, and edits made through
/// [`Program::with_terminators`] require building a fresh view.
///
/// Two edge flavours exist:
///
/// * [`CfgView::local`] — intra-procedural: `Call` contributes only its
///   `CallFall` edge to `return_to`. This is the graph dominators and
///   liveness run on.
/// * [`CfgView::interprocedural`] — additionally records `Call → callee`
///   edges, so reachability from the program entry covers callee bodies.
///
/// Successor lists are deduplicated (a conditional branch whose taken and
/// fall targets coincide contributes one edge).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CfgView {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl CfgView {
    /// Builds the intra-procedural view (`Call` edges go to the return
    /// block only).
    #[must_use]
    pub fn local(program: &Program) -> Self {
        Self::build(program, false)
    }

    /// Builds the inter-procedural view (`Call` edges additionally reach the
    /// callee entry).
    #[must_use]
    pub fn interprocedural(program: &Program) -> Self {
        Self::build(program, true)
    }

    fn build(program: &Program, call_edges: bool) -> Self {
        let n = program.num_blocks();
        let mut succs: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        let add = |succs: &mut Vec<Vec<BlockId>>,
                   preds: &mut Vec<Vec<BlockId>>,
                   from: BlockId,
                   to: BlockId| {
            if (to.0 as usize) < n && !succs[from.0 as usize].contains(&to) {
                succs[from.0 as usize].push(to);
                preds[to.0 as usize].push(from);
            }
        };
        for b in program.blocks() {
            for (_, succ) in b.terminator.local_successors() {
                add(&mut succs, &mut preds, b.id, succ);
            }
            if call_edges {
                if let Terminator::Call { callee, .. } = b.terminator {
                    add(&mut succs, &mut preds, b.id, callee);
                }
            }
        }
        Self { succs, preds }
    }

    /// Number of blocks in the underlying program.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `block`, deduplicated, in terminator order.
    #[must_use]
    pub fn successors(&self, block: BlockId) -> &[BlockId] {
        &self.succs[block.0 as usize]
    }

    /// Predecessors of `block`, deduplicated, in block-id-discovery order.
    #[must_use]
    pub fn predecessors(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.0 as usize]
    }

    /// Blocks reachable from `entry` along this view's edges, in
    /// reverse postorder (every edge `a → b` with `b` not an ancestor of `a`
    /// puts `a` before `b`; the classic iteration order for forward
    /// dataflow).
    #[must_use]
    pub fn reverse_postorder(&self, entry: BlockId) -> Vec<BlockId> {
        let n = self.num_blocks();
        if (entry.0 as usize) >= n {
            return Vec::new();
        }
        let mut visited = vec![false; n];
        let mut order = Vec::new();
        // Iterative DFS with an explicit "children pending" frame so the
        // postorder append happens after all successors are finished.
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.0 as usize] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.successors(b);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order.reverse();
        order
    }
}

/// A validated editing session over a [`Program`].
///
/// Created by [`Program::edit`]. The session holds a private working copy;
/// passes mutate bodies, retarget terminators, append duplicated blocks, and
/// allocate fresh branch ids, then call [`ProgramEdit::finish`], which runs
/// the full [`ProgramBuilder::finish`] validation (plus the debug
/// verification hooks) before any `Program` escapes. An edit that breaks an
/// invariant is therefore rejected at its construction site, not downstream.
#[derive(Debug, Clone)]
pub struct ProgramEdit {
    blocks: Vec<Block>,
    func_entries: Vec<BlockId>,
    entry: BlockId,
    num_branches: u32,
}

impl ProgramEdit {
    /// Number of blocks in the working copy.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of allocated conditional-branch ids in the working copy.
    #[must_use]
    pub fn num_branches(&self) -> u32 {
        self.num_branches
    }

    /// Returns the working copy of a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable access to a block's body instructions.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn insts_mut(&mut self, id: BlockId) -> &mut Vec<Inst> {
        &mut self.blocks[id.0 as usize].insts
    }

    /// Replaces a block's terminator.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_terminator(&mut self, id: BlockId, terminator: Terminator) {
        self.blocks[id.0 as usize].terminator = terminator;
    }

    /// Allocates a fresh conditional-branch id (duplicated branches must not
    /// reuse their original's id — validation requires each id to appear
    /// exactly once).
    pub fn alloc_branch(&mut self) -> BranchId {
        let id = BranchId(self.num_branches);
        self.num_branches += 1;
        id
    }

    /// Appends a new block to `func` and returns its id. Unlike
    /// [`ProgramBuilder::new_block`], appended blocks never become function
    /// entries — this is the tail-duplication primitive.
    ///
    /// # Panics
    ///
    /// Panics if `func` is out of range.
    pub fn add_block(&mut self, func: FuncId, insts: Vec<Inst>, terminator: Terminator) -> BlockId {
        assert!(
            (func.0 as usize) < self.func_entries.len(),
            "add_block: unknown function {func:?}"
        );
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            id,
            func,
            insts,
            terminator,
        });
        id
    }

    /// Validates the working copy and returns it as a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the edits broke any structural
    /// invariant.
    pub fn finish(self) -> Result<Program, ValidateError> {
        let prog = Program {
            blocks: self.blocks,
            func_entries: self.func_entries,
            entry: self.entry,
            num_branches: self.num_branches,
        };
        prog.validate()?;
        crate::hooks::check_program(&prog);
        Ok(prog)
    }
}

/// The raw, unvalidated parts of a [`Program`].
///
/// Produced by [`Program::into_raw`] and consumed by [`Program::from_raw`];
/// every field is public so tests and tooling can corrupt exactly one
/// invariant at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawProgram {
    /// Basic blocks, normally indexed by their own ids.
    pub blocks: Vec<Block>,
    /// Entry block of each function.
    pub func_entries: Vec<BlockId>,
    /// Program entry block.
    pub entry: BlockId,
    /// Number of allocated conditional-branch ids.
    pub num_branches: u32,
}

/// Errors produced by [`ProgramBuilder::finish`] and
/// [`Program::with_terminators`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// An edge or entry references a block id that does not exist.
    UnknownBlock(BlockId),
    /// A block references a function id that does not exist.
    UnknownFunc(FuncId),
    /// A conditional branch id is outside the allocated range.
    UnknownBranch(BranchId),
    /// Two blocks carry the same conditional-branch id.
    DuplicateBranch(BranchId),
    /// An allocated branch id is not used by any block.
    MissingBranch,
    /// A block's stored id does not match its index.
    BlockIdMismatch {
        /// Index in the block table.
        expected: u32,
        /// Id stored on the block.
        found: BlockId,
    },
    /// A body instruction has a control-transfer op class.
    ControlInBody {
        /// Offending block.
        block: BlockId,
        /// Offending op class.
        op: OpClass,
    },
    /// An intra-procedural edge crosses a function boundary.
    CrossFuncEdge {
        /// Source block.
        from: BlockId,
        /// Destination block.
        to: BlockId,
    },
    /// A call targets a block that is not a function entry.
    CallToNonEntry {
        /// Calling block.
        block: BlockId,
        /// Target block.
        callee: BlockId,
    },
    /// The program has no functions.
    NoFunctions,
    /// A block was never given a terminator.
    MissingTerminator(BlockId),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::UnknownBlock(b) => write!(f, "reference to unknown block {b}"),
            ValidateError::UnknownFunc(fu) => write!(f, "reference to unknown function {fu}"),
            ValidateError::UnknownBranch(br) => write!(f, "reference to unknown branch {br}"),
            ValidateError::DuplicateBranch(br) => write!(f, "branch id {br} used more than once"),
            ValidateError::MissingBranch => write!(f, "an allocated branch id is unused"),
            ValidateError::BlockIdMismatch { expected, found } => {
                write!(f, "block at index {expected} carries id {found}")
            }
            ValidateError::ControlInBody { block, op } => {
                write!(f, "control op {op} appears in the body of {block}")
            }
            ValidateError::CrossFuncEdge { from, to } => {
                write!(f, "edge {from} -> {to} crosses a function boundary")
            }
            ValidateError::CallToNonEntry { block, callee } => {
                write!(f, "{block} calls {callee}, which is not a function entry")
            }
            ValidateError::NoFunctions => write!(f, "program has no functions"),
            ValidateError::MissingTerminator(b) => write!(f, "block {b} has no terminator"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Incrementally builds a [`Program`].
///
/// # Examples
///
/// ```
/// use fetchmech_isa::{Inst, OpClass, ProgramBuilder, Reg, Terminator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// let f = b.begin_func();
/// let head = b.new_block(f);
/// let exit = b.new_block(f);
/// b.push_inst(head, Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]));
/// let _loop_branch = b.set_cond_branch(head, [Some(Reg::int(1)), None], head, exit);
/// b.set_terminator(exit, Terminator::Halt);
/// b.set_entry(head);
/// let program = b.finish()?;
/// assert_eq!(program.num_blocks(), 2);
/// assert_eq!(program.num_branches(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    blocks: Vec<(FuncId, Vec<Inst>, Option<Terminator>)>,
    func_entries: Vec<Option<BlockId>>,
    entry: Option<BlockId>,
    next_branch: u32,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new function; its entry is the first block created for it.
    pub fn begin_func(&mut self) -> FuncId {
        self.func_entries.push(None);
        FuncId((self.func_entries.len() - 1) as u32)
    }

    /// Creates a new empty block in `func`. The first block created for a
    /// function becomes that function's entry.
    ///
    /// # Panics
    ///
    /// Panics if `func` was not created by this builder.
    pub fn new_block(&mut self, func: FuncId) -> BlockId {
        assert!(
            (func.0 as usize) < self.func_entries.len(),
            "unknown function {func}"
        );
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push((func, Vec::new(), None));
        let entry = &mut self.func_entries[func.0 as usize];
        if entry.is_none() {
            *entry = Some(id);
        }
        id
    }

    /// Appends a body instruction to `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is unknown or `inst` is a control op.
    pub fn push_inst(&mut self, block: BlockId, inst: Inst) {
        assert!(
            !inst.op.is_control(),
            "control op {} must be a terminator",
            inst.op
        );
        self.blocks[block.0 as usize].1.push(inst);
    }

    /// Sets a non-conditional terminator on `block`.
    ///
    /// # Panics
    ///
    /// Panics if `term` is a [`Terminator::CondBranch`]; use
    /// [`ProgramBuilder::set_cond_branch`] so the branch id is allocated.
    pub fn set_terminator(&mut self, block: BlockId, term: Terminator) {
        assert!(
            !matches!(term, Terminator::CondBranch { .. }),
            "use set_cond_branch for conditional branches"
        );
        self.blocks[block.0 as usize].2 = Some(term);
    }

    /// Sets a conditional-branch terminator on `block`, allocating and
    /// returning its stable [`BranchId`].
    pub fn set_cond_branch(
        &mut self,
        block: BlockId,
        srcs: [Option<Reg>; 2],
        taken: BlockId,
        fall: BlockId,
    ) -> BranchId {
        let id = BranchId(self.next_branch);
        self.next_branch += 1;
        self.blocks[block.0 as usize].2 = Some(Terminator::CondBranch {
            id,
            srcs,
            taken,
            fall,
            inverted: false,
        });
        id
    }

    /// Sets the program entry block.
    pub fn set_entry(&mut self, block: BlockId) {
        self.entry = Some(block);
    }

    /// Validates and returns the finished [`Program`].
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] describing the first structural problem
    /// found (dangling edge, missing terminator, cross-function edge, call to
    /// a non-entry block, branch-id misuse, …).
    pub fn finish(self) -> Result<Program, ValidateError> {
        let entry = self.entry.ok_or(ValidateError::NoFunctions)?;
        let mut blocks = Vec::with_capacity(self.blocks.len());
        for (idx, (func, insts, term)) in self.blocks.into_iter().enumerate() {
            let id = BlockId(idx as u32);
            let terminator = term.ok_or(ValidateError::MissingTerminator(id))?;
            blocks.push(Block {
                id,
                func,
                insts,
                terminator,
            });
        }
        let func_entries = self
            .func_entries
            .into_iter()
            .map(|e| e.ok_or(ValidateError::NoFunctions))
            .collect::<Result<Vec<_>, _>>()?;
        let prog = Program {
            blocks,
            func_entries,
            entry,
            num_branches: self.next_branch,
        };
        prog.validate()?;
        crate::hooks::check_program(&prog);
        Ok(prog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_block_program() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let head = b.new_block(f);
        let exit = b.new_block(f);
        b.push_inst(
            head,
            Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
        );
        b.set_cond_branch(head, [Some(Reg::int(1)), None], head, exit);
        b.set_terminator(exit, Terminator::Halt);
        b.set_entry(head);
        b.finish().expect("valid program")
    }

    #[test]
    fn builder_produces_valid_program() {
        let p = two_block_program();
        assert_eq!(p.num_blocks(), 2);
        assert_eq!(p.num_branches(), 1);
        assert_eq!(p.entry(), BlockId(0));
        assert_eq!(p.func_entries(), &[BlockId(0)]);
    }

    #[test]
    fn cfg_view_edges_match_terminators() {
        let p = two_block_program();
        let v = CfgView::local(&p);
        assert_eq!(v.num_blocks(), 2);
        // head: cond branch taken->head, fall->exit.
        assert_eq!(v.successors(BlockId(0)), &[BlockId(0), BlockId(1)]);
        assert_eq!(v.successors(BlockId(1)), &[] as &[BlockId]);
        assert_eq!(v.predecessors(BlockId(0)), &[BlockId(0)]);
        assert_eq!(v.predecessors(BlockId(1)), &[BlockId(0)]);
    }

    #[test]
    fn cfg_view_deduplicates_coincident_edges() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let head = b.new_block(f);
        let exit = b.new_block(f);
        b.set_cond_branch(head, [None, None], exit, exit);
        b.set_terminator(exit, Terminator::Halt);
        b.set_entry(head);
        let p = b.finish().expect("valid");
        let v = CfgView::local(&p);
        assert_eq!(v.successors(BlockId(0)), &[BlockId(1)]);
        assert_eq!(v.predecessors(BlockId(1)), &[BlockId(0)]);
    }

    #[test]
    fn interprocedural_view_reaches_callees() {
        let mut b = ProgramBuilder::new();
        let f0 = b.begin_func();
        let f1 = b.begin_func();
        let a = b.new_block(f0);
        let ret = b.new_block(f0);
        let callee = b.new_block(f1);
        b.set_terminator(
            a,
            Terminator::Call {
                callee,
                return_to: ret,
            },
        );
        b.set_terminator(ret, Terminator::Halt);
        b.set_terminator(callee, Terminator::Return);
        b.set_entry(a);
        let p = b.finish().expect("valid");
        let local = CfgView::local(&p);
        assert_eq!(local.successors(a), &[ret]);
        let inter = CfgView::interprocedural(&p);
        assert_eq!(inter.successors(a), &[ret, callee]);
        assert_eq!(inter.predecessors(callee), &[a]);
    }

    #[test]
    fn reverse_postorder_visits_parents_first() {
        // Diamond: 0 -> {1, 2} -> 3.
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let top = b.new_block(f);
        let left = b.new_block(f);
        let right = b.new_block(f);
        let join = b.new_block(f);
        b.set_cond_branch(top, [None, None], left, right);
        b.set_terminator(left, Terminator::Jump { target: join });
        b.set_terminator(right, Terminator::Jump { target: join });
        b.set_terminator(join, Terminator::Halt);
        b.set_entry(top);
        let p = b.finish().expect("valid");
        let rpo = CfgView::local(&p).reverse_postorder(top);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], top);
        assert_eq!(rpo[3], join);
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).expect("in order");
        assert!(pos(top) < pos(left) && pos(top) < pos(right));
        assert!(pos(left) < pos(join) && pos(right) < pos(join));
    }

    #[test]
    fn missing_terminator_is_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let blk = b.new_block(f);
        b.set_entry(blk);
        assert_eq!(
            b.finish().unwrap_err(),
            ValidateError::MissingTerminator(BlockId(0))
        );
    }

    #[test]
    fn dangling_edge_is_rejected() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let blk = b.new_block(f);
        b.set_terminator(blk, Terminator::Jump { target: BlockId(9) });
        b.set_entry(blk);
        assert_eq!(
            b.finish().unwrap_err(),
            ValidateError::UnknownBlock(BlockId(9))
        );
    }

    #[test]
    fn cross_function_jump_is_rejected() {
        let mut b = ProgramBuilder::new();
        let f0 = b.begin_func();
        let f1 = b.begin_func();
        let a = b.new_block(f0);
        let c = b.new_block(f1);
        b.set_terminator(a, Terminator::Jump { target: c });
        b.set_terminator(c, Terminator::Return);
        b.set_entry(a);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::CrossFuncEdge { .. }
        ));
    }

    #[test]
    fn call_must_target_function_entry() {
        let mut b = ProgramBuilder::new();
        let f0 = b.begin_func();
        let f1 = b.begin_func();
        let a = b.new_block(f0);
        let ret = b.new_block(f0);
        let callee_entry = b.new_block(f1);
        let callee_body = b.new_block(f1);
        b.set_terminator(
            a,
            Terminator::Call {
                callee: callee_body,
                return_to: ret,
            },
        );
        b.set_terminator(ret, Terminator::Halt);
        b.set_terminator(callee_entry, Terminator::FallThrough { next: callee_body });
        b.set_terminator(callee_body, Terminator::Return);
        b.set_entry(a);
        assert!(matches!(
            b.finish().unwrap_err(),
            ValidateError::CallToNonEntry { .. }
        ));
    }

    #[test]
    fn control_op_in_body_panics() {
        let result = std::panic::catch_unwind(|| {
            let _ = Inst::new(OpClass::Jump, None, [None, None]);
        });
        assert!(result.is_err());
    }

    #[test]
    fn local_successors_shapes() {
        let p = two_block_program();
        let head_succs = p.block(BlockId(0)).terminator.local_successors();
        assert_eq!(
            head_succs,
            vec![(EdgeKind::Taken, BlockId(0)), (EdgeKind::Fall, BlockId(1))]
        );
        assert!(p.block(BlockId(1)).terminator.local_successors().is_empty());
    }

    #[test]
    fn predecessors_cover_both_edges() {
        let p = two_block_program();
        let preds = p.predecessors();
        assert_eq!(preds[&BlockId(0)], vec![BlockId(0)]);
        assert_eq!(preds[&BlockId(1)], vec![BlockId(0)]);
    }

    #[test]
    fn with_terminators_swaps_and_validates() {
        let p = two_block_program();
        let mut edits = HashMap::new();
        edits.insert(
            BlockId(0),
            Terminator::CondBranch {
                id: BranchId(0),
                srcs: [Some(Reg::int(1)), None],
                taken: BlockId(1),
                fall: BlockId(0),
                inverted: true,
            },
        );
        let q = p.with_terminators(&edits).expect("valid edit");
        match q.block(BlockId(0)).terminator {
            Terminator::CondBranch {
                taken,
                fall,
                inverted,
                ..
            } => {
                assert_eq!(taken, BlockId(1));
                assert_eq!(fall, BlockId(0));
                assert!(inverted);
            }
            _ => panic!("terminator kind changed"),
        }
    }

    #[test]
    fn with_terminators_rejects_duplicate_branch_id() {
        let p = two_block_program();
        let mut edits = HashMap::new();
        // Give the exit block the same branch id as the head block.
        edits.insert(
            BlockId(1),
            Terminator::CondBranch {
                id: BranchId(0),
                srcs: [None, None],
                taken: BlockId(0),
                fall: BlockId(0),
                inverted: false,
            },
        );
        assert_eq!(
            p.with_terminators(&edits).unwrap_err(),
            ValidateError::DuplicateBranch(BranchId(0))
        );
    }

    #[test]
    fn static_upper_bound_counts_terminators() {
        let p = two_block_program();
        // head: 1 body + up to 2 (branch + jump); exit: 0 body + 1 halt.
        assert_eq!(p.static_inst_upper_bound(), 4);
    }
}
