//! Architectural registers.

use std::fmt;

/// Number of integer architectural registers.
pub const NUM_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_FP_REGS: u8 = 32;

/// An architectural register: 32 integer (`r0`–`r31`) and 32 floating-point
/// (`f0`–`f31`) registers, mirroring the PA-RISC-flavoured intermediate code
/// the paper traced.
///
/// `r0` is a normal register here (not hard-wired to zero); the simulator only
/// tracks dataflow identity, never values.
///
/// # Examples
///
/// ```
/// use fetchmech_isa::Reg;
///
/// let r = Reg::int(5);
/// assert_eq!(r.to_string(), "r5");
/// assert_eq!(r.file_index(), 5);
/// assert_eq!(Reg::fp(5).file_index(), 37); // fp registers follow the 32 int regs
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Reg {
    /// Integer register `r<n>`.
    Int(u8),
    /// Floating-point register `f<n>`.
    Fp(u8),
}

impl Reg {
    /// Creates integer register `r<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn int(n: u8) -> Self {
        assert!(n < NUM_INT_REGS, "integer register index {n} out of range");
        Reg::Int(n)
    }

    /// Creates floating-point register `f<n>`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[must_use]
    pub fn fp(n: u8) -> Self {
        assert!(n < NUM_FP_REGS, "fp register index {n} out of range");
        Reg::Fp(n)
    }

    /// Returns the register number within its file.
    #[must_use]
    pub fn number(self) -> u8 {
        match self {
            Reg::Int(n) | Reg::Fp(n) => n,
        }
    }

    /// Returns `true` for floating-point registers.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, Reg::Fp(_))
    }

    /// Returns a dense index over both files: `0..32` for integer registers,
    /// `32..64` for floating-point. Useful for flat rename tables.
    #[must_use]
    pub fn file_index(self) -> usize {
        match self {
            Reg::Int(n) => n as usize,
            Reg::Fp(n) => NUM_INT_REGS as usize + n as usize,
        }
    }

    /// Inverse of [`Reg::file_index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[must_use]
    pub fn from_file_index(index: usize) -> Self {
        let total = (NUM_INT_REGS + NUM_FP_REGS) as usize;
        assert!(index < total, "file index {index} out of range");
        if index < NUM_INT_REGS as usize {
            Reg::Int(index as u8)
        } else {
            Reg::Fp((index - NUM_INT_REGS as usize) as u8)
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::Int(n) => write!(f, "r{n}"),
            Reg::Fp(n) => write!(f, "f{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_index_roundtrip() {
        for i in 0..64 {
            assert_eq!(Reg::from_file_index(i).file_index(), i);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Reg::int(0).to_string(), "r0");
        assert_eq!(Reg::fp(31).to_string(), "f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_out_of_range_panics() {
        let _ = Reg::int(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn file_index_out_of_range_panics() {
        let _ = Reg::from_file_index(64);
    }

    #[test]
    fn fp_flag() {
        assert!(Reg::fp(1).is_fp());
        assert!(!Reg::int(1).is_fp());
    }
}
