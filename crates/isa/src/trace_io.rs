//! Binary serialization of dynamic traces.
//!
//! Traces in this reproduction are regenerated deterministically, but a
//! stable on-disk format lets users snapshot a trace once and replay it
//! elsewhere (or feed externally-produced traces to the simulator). The
//! format is a compact little-endian record stream:
//!
//! ```text
//! header:  magic "FMTR" | u16 version | u16 reserved | u64 record count
//! record:  u64 addr | u8 op | u8 dest | u8 src0 | u8 src1
//!          | u8 flags | u64 next_pc
//!          [ u32 branch_id  if flags.HAS_BRANCH_ID ]
//!          [ u64 target     if flags.HAS_CTRL ]
//!          [ u64 link       if flags.HAS_LINK ]
//! ```
//!
//! Register bytes hold `Reg::file_index` or `0xff` for "none"; `flags` packs
//! the ctrl presence bits and the taken flag.

use std::io::{self, Read, Write};

use crate::addr::Addr;
use crate::cfg::BranchId;
use crate::op::OpClass;
use crate::reg::Reg;
use crate::trace::{DynCtrl, DynInst};

const MAGIC: &[u8; 4] = b"FMTR";
const VERSION: u16 = 1;

const NO_REG: u8 = 0xff;
const F_HAS_CTRL: u8 = 1 << 0;
const F_TAKEN: u8 = 1 << 1;
const F_HAS_BRANCH_ID: u8 = 1 << 2;
const F_HAS_LINK: u8 = 1 << 3;

fn op_code(op: OpClass) -> u8 {
    OpClass::ALL
        .iter()
        .position(|&o| o == op)
        .expect("op in ALL") as u8
}

fn op_from(code: u8) -> Option<OpClass> {
    OpClass::ALL.get(code as usize).copied()
}

fn reg_byte(r: Option<Reg>) -> u8 {
    r.map_or(NO_REG, |r| r.file_index() as u8)
}

fn reg_from(b: u8) -> Result<Option<Reg>, io::Error> {
    match b {
        NO_REG => Ok(None),
        n if (n as usize) < 64 => Ok(Some(Reg::from_file_index(n as usize))),
        n => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad register byte {n}"),
        )),
    }
}

/// Writes a trace to `w` in the `FMTR` format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace<W: Write>(mut w: W, trace: &[DynInst]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u16.to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    for inst in trace {
        w.write_all(&inst.addr.byte().to_le_bytes())?;
        let mut flags = 0u8;
        if let Some(c) = inst.ctrl {
            flags |= F_HAS_CTRL;
            if c.taken {
                flags |= F_TAKEN;
            }
            if c.branch_id.is_some() {
                flags |= F_HAS_BRANCH_ID;
            }
            if c.link.is_some() {
                flags |= F_HAS_LINK;
            }
        }
        w.write_all(&[
            op_code(inst.op),
            reg_byte(inst.dest),
            reg_byte(inst.srcs[0]),
            reg_byte(inst.srcs[1]),
            flags,
        ])?;
        w.write_all(&inst.next_pc.byte().to_le_bytes())?;
        if let Some(c) = inst.ctrl {
            if let Some(id) = c.branch_id {
                w.write_all(&id.0.to_le_bytes())?;
            }
            w.write_all(&c.target.byte().to_le_bytes())?;
            if let Some(link) = c.link {
                w.write_all(&link.byte().to_le_bytes())?;
            }
        }
    }
    Ok(())
}

fn read_exact<const N: usize, R: Read>(r: &mut R) -> io::Result<[u8; N]> {
    let mut buf = [0u8; N];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Reads a trace previously written by [`write_trace`].
///
/// # Errors
///
/// Returns [`io::ErrorKind::InvalidData`] for a bad magic number, an
/// unsupported version, or malformed records, and propagates reader errors.
pub fn read_trace<R: Read>(mut r: R) -> io::Result<Vec<DynInst>> {
    let magic = read_exact::<4, _>(&mut r)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad trace magic",
        ));
    }
    let version = u16::from_le_bytes(read_exact::<2, _>(&mut r)?);
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported trace version {version}"),
        ));
    }
    let _reserved = read_exact::<2, _>(&mut r)?;
    let count = u64::from_le_bytes(read_exact::<8, _>(&mut r)?);
    let mut trace = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let addr = Addr::new(u64::from_le_bytes(read_exact::<8, _>(&mut r)?));
        let [op_b, dest_b, s0_b, s1_b, flags] = read_exact::<5, _>(&mut r)?;
        let op = op_from(op_b).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad op byte {op_b}"))
        })?;
        let next_pc = Addr::new(u64::from_le_bytes(read_exact::<8, _>(&mut r)?));
        let ctrl = if flags & F_HAS_CTRL != 0 {
            let branch_id = if flags & F_HAS_BRANCH_ID != 0 {
                Some(BranchId(u32::from_le_bytes(read_exact::<4, _>(&mut r)?)))
            } else {
                None
            };
            let target = Addr::new(u64::from_le_bytes(read_exact::<8, _>(&mut r)?));
            let link = if flags & F_HAS_LINK != 0 {
                Some(Addr::new(u64::from_le_bytes(read_exact::<8, _>(&mut r)?)))
            } else {
                None
            };
            Some(DynCtrl {
                branch_id,
                taken: flags & F_TAKEN != 0,
                target,
                link,
            })
        } else {
            None
        };
        trace.push(DynInst {
            addr,
            op,
            dest: reg_from(dest_b)?,
            srcs: [reg_from(s0_b)?, reg_from(s1_b)?],
            next_pc,
            ctrl,
        });
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<DynInst> {
        vec![
            DynInst::simple(
                Addr::new(0x1000),
                OpClass::IntAlu,
                Some(Reg::int(3)),
                [Some(Reg::int(1)), None],
            ),
            DynInst {
                addr: Addr::new(0x1004),
                op: OpClass::CondBranch,
                dest: None,
                srcs: [Some(Reg::int(3)), None],
                next_pc: Addr::new(0x2000),
                ctrl: Some(DynCtrl {
                    branch_id: Some(BranchId(7)),
                    taken: true,
                    target: Addr::new(0x2000),
                    link: None,
                }),
            },
            DynInst {
                addr: Addr::new(0x2000),
                op: OpClass::Call,
                dest: Some(Reg::int(31)),
                srcs: [None, None],
                next_pc: Addr::new(0x3000),
                ctrl: Some(DynCtrl {
                    branch_id: None,
                    taken: true,
                    target: Addr::new(0x3000),
                    link: Some(Addr::new(0x2004)),
                }),
            },
            DynInst::simple(
                Addr::new(0x3000),
                OpClass::Load,
                Some(Reg::fp(2)),
                [Some(Reg::int(4)), None],
            ),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let trace = sample();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).expect("write");
        let back = read_trace(buf.as_slice()).expect("read");
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).expect("write");
        assert_eq!(read_trace(buf.as_slice()).expect("read"), vec![]);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOPE\x01\x00\x00\x00"[..]).expect_err("must fail");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).expect("write");
        buf[4] = 99; // corrupt the version
        let err = read_trace(buf.as_slice()).expect_err("must fail");
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).expect("write");
        buf.truncate(buf.len() - 3);
        assert!(read_trace(buf.as_slice()).is_err());
    }

    #[test]
    fn bad_register_byte_is_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample()).expect("write");
        // Record layout: 16-byte header, then addr(8) op(1) dest(1)...
        buf[16 + 9] = 0x80;
        let err = read_trace(buf.as_slice()).expect_err("must fail");
        assert!(err.to_string().contains("register"));
    }
}
