//! Run-length fetch-block streams — the compact dynamic-trace representation.
//!
//! A flat `Vec<DynInst>` spends ~56 bytes per dynamic instruction even though
//! the fetch schemes of the paper only consume *fetch-block geometry*: run
//! lengths between control transfers, branch kind and direction, target
//! displacement, and the op-class mix the out-of-order core needs. A
//! [`BlockStream`] factors the trace into **branch-to-branch segments**: every
//! dynamic instruction run from a stream redirect (or the trace start) through
//! the next control transfer, inclusive, becomes one [`SegTemplate`]. Because
//! programs revisit the same static runs with the same dynamic outcome over
//! and over, templates are interned — the dynamic stream collapses to a
//! `u32` template id per segment, typically 15–60× smaller than the
//! per-instruction trace.
//!
//! Crucially the encoding is *lossless*: a template stores the exact
//! [`DynInst`] records of its segment (direction and target are part of the
//! interning key), so [`BlockStream::materialize`] reproduces the original
//! per-instruction trace byte for byte. That property is what lets the
//! simulator's fast block-level path be checked against the per-instruction
//! differential oracle with whole-result equality.
//!
//! # Examples
//!
//! ```
//! use fetchmech_isa::{Addr, BlockStream, DynCtrl, DynInst, OpClass};
//!
//! let branch = DynInst {
//!     addr: Addr::new(0x104),
//!     op: OpClass::CondBranch,
//!     dest: None,
//!     srcs: [None, None],
//!     next_pc: Addr::new(0x100),
//!     ctrl: Some(DynCtrl {
//!         branch_id: None,
//!         taken: true,
//!         target: Addr::new(0x100),
//!         link: None,
//!     }),
//! };
//! let body = DynInst::simple(Addr::new(0x100), OpClass::IntAlu, None, [None, None]);
//! // A two-instruction loop executed three times: six dynamic instructions,
//! // three records, one interned template.
//! let trace = vec![body, branch, body, branch, body, branch];
//! let stream = BlockStream::from_insts(&trace);
//! assert_eq!(stream.total_insts(), 6);
//! assert_eq!(stream.records().len(), 3);
//! assert_eq!(stream.templates().len(), 1);
//! assert_eq!(stream.materialize(), trace);
//! ```

use std::collections::HashMap;
use std::ops::Range;

use crate::addr::{Addr, WORD_BYTES};
use crate::op::OpClass;
use crate::trace::DynInst;

/// One interned branch-to-branch segment: a run of plain instructions ending
/// at a control transfer (or cut short by the end of the trace).
///
/// Invariants, enforced at construction:
///
/// * the segment is non-empty;
/// * only the **last** instruction may carry a control outcome (`ctrl`);
///   every earlier instruction is a straight-line instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegTemplate {
    insts: Box<[DynInst]>,
    counts: [u32; OpClass::ALL.len()],
    /// Prefix nop counts (`prefix[i]` = nops among `insts[..i]`), present only
    /// when the segment contains nops so partial-run nop counts stay O(1).
    nop_prefix: Option<Box<[u32]>>,
    /// True when every non-terminal instruction falls through contiguously
    /// (`insts[i+1].addr == insts[i].addr + 4`). Native traces always are;
    /// hand-built irregular traces fall back to per-instruction walking.
    sequential: bool,
}

impl SegTemplate {
    /// Builds a template from the exact dynamic instructions of one segment.
    ///
    /// # Panics
    ///
    /// Panics if `insts` is empty or a non-terminal instruction carries a
    /// control outcome.
    #[must_use]
    pub fn new(insts: Vec<DynInst>) -> Self {
        assert!(!insts.is_empty(), "segment template must be non-empty");
        assert!(
            insts[..insts.len() - 1].iter().all(|i| i.ctrl.is_none()),
            "only the terminal instruction of a segment may be a control transfer"
        );
        let mut counts = [0u32; OpClass::ALL.len()];
        for inst in &insts {
            counts[inst.op.index()] += 1;
        }
        let nop_prefix = if counts[OpClass::Nop.index()] > 0 {
            let mut prefix = Vec::with_capacity(insts.len() + 1);
            let mut n = 0u32;
            prefix.push(0);
            for inst in &insts {
                n += u32::from(inst.op == OpClass::Nop);
                prefix.push(n);
            }
            Some(prefix.into_boxed_slice())
        } else {
            None
        };
        let sequential = insts
            .windows(2)
            .all(|w| w[0].next_pc == w[0].addr.add_words(1) && w[1].addr == w[0].next_pc);
        Self {
            insts: insts.into_boxed_slice(),
            counts,
            nop_prefix,
            sequential,
        }
    }

    /// The exact dynamic instructions of this segment.
    #[must_use]
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Number of instructions in the segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Always false — segments are non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Per-[`OpClass`] instruction counts, indexed by [`OpClass::index`].
    #[must_use]
    pub fn counts(&self) -> &[u32; OpClass::ALL.len()] {
        &self.counts
    }

    /// Count of instructions of one op class.
    #[must_use]
    pub fn op_count(&self, op: OpClass) -> u32 {
        self.counts[op.index()]
    }

    /// Number of nops in the half-open instruction range `range`.
    #[must_use]
    pub fn nops_in(&self, range: Range<usize>) -> u32 {
        match &self.nop_prefix {
            Some(prefix) => prefix[range.end] - prefix[range.start],
            None => 0,
        }
    }

    /// The terminal control transfer, or `None` for a segment cut short by
    /// the end of the trace.
    #[must_use]
    pub fn terminal(&self) -> Option<&DynInst> {
        let last = self.insts.last().expect("non-empty");
        last.ctrl.is_some().then_some(last)
    }

    /// True when the segment has no terminal control transfer (the trace
    /// ended mid-run).
    #[must_use]
    pub fn is_cut(&self) -> bool {
        self.terminal().is_none()
    }

    /// True when every non-terminal instruction falls through contiguously.
    #[must_use]
    pub fn sequential(&self) -> bool {
        self.sequential
    }

    /// Address of the first instruction.
    #[must_use]
    pub fn start_addr(&self) -> Addr {
        self.insts[0].addr
    }

    /// Fetch-block id of the first instruction for the given block size.
    #[must_use]
    pub fn start_block(&self, block_bytes: u64) -> Addr {
        self.start_addr().block_base(block_bytes)
    }

    /// Address execution resumes at after this segment.
    #[must_use]
    pub fn next_pc(&self) -> Addr {
        self.insts.last().expect("non-empty").next_pc
    }

    /// Signed displacement, in instruction words, from a taken terminal to
    /// its destination. `None` for cut or not-taken terminals.
    #[must_use]
    pub fn target_displacement_words(&self) -> Option<i64> {
        let t = self.terminal()?;
        let c = t.ctrl.expect("terminal has ctrl");
        c.taken.then(|| {
            let from = t.addr.byte() as i64;
            let to = c.target.byte() as i64;
            (to - from) / WORD_BYTES as i64
        })
    }
}

/// Aggregate stream statistics — compression accounting for BENCH files and
/// the `/metrics` endpoint.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamStats {
    /// Total dynamic instructions represented.
    pub insts: u64,
    /// Dynamic segment records.
    pub records: u64,
    /// Interned unique templates.
    pub templates: u64,
    /// Instructions stored across all templates.
    pub template_insts: u64,
    /// Mean dynamic run length (instructions per record).
    pub mean_run_len: f64,
    /// Approximate bytes of the stream representation (records + template
    /// instruction storage).
    pub stream_bytes: u64,
    /// Bytes the same trace occupies as a flat `Vec<DynInst>`.
    pub inst_bytes: u64,
    /// `inst_bytes / stream_bytes`.
    pub compression: f64,
}

/// A complete dynamic trace in run-length fetch-block form: an interned
/// template table plus one `u32` record per executed segment.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockStream {
    templates: Box<[SegTemplate]>,
    records: Box<[u32]>,
    total_insts: u64,
}

impl BlockStream {
    /// Encodes a per-instruction trace. Lossless: `materialize()` returns
    /// exactly `insts`.
    #[must_use]
    pub fn from_insts(insts: &[DynInst]) -> Self {
        let mut b = BlockStreamBuilder::new();
        for inst in insts {
            b.push(*inst);
        }
        b.finish()
    }

    /// Assembles a stream directly from a template table and a record
    /// sequence **without checking cross-references** — support for
    /// validators and their tests (the `fetchmech-analysis` stream pass
    /// exists to find inconsistencies in exactly such hand-assembled
    /// streams). [`BlockStream::from_insts`] and [`BlockStreamBuilder`] are
    /// the checked construction paths; prefer them everywhere else.
    #[must_use]
    pub fn from_parts(templates: Vec<SegTemplate>, records: Vec<u32>, total_insts: u64) -> Self {
        Self {
            templates: templates.into_boxed_slice(),
            records: records.into_boxed_slice(),
            total_insts,
        }
    }

    /// The interned template table.
    #[must_use]
    pub fn templates(&self) -> &[SegTemplate] {
        &self.templates
    }

    /// The dynamic record sequence (template ids).
    #[must_use]
    pub fn records(&self) -> &[u32] {
        &self.records
    }

    /// Template for a given id.
    #[must_use]
    pub fn template(&self, id: u32) -> &SegTemplate {
        &self.templates[id as usize]
    }

    /// Template executed by record `rec`.
    #[must_use]
    pub fn record_template(&self, rec: usize) -> &SegTemplate {
        self.template(self.records[rec])
    }

    /// Total dynamic instructions represented.
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.total_insts
    }

    /// True when the stream holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_insts == 0
    }

    /// Iterates the dynamic instructions in trace order without
    /// materializing.
    pub fn iter(&self) -> impl Iterator<Item = &DynInst> + '_ {
        self.records
            .iter()
            .flat_map(|&id| self.template(id).insts().iter())
    }

    /// Expands the stream back to the exact per-instruction trace.
    #[must_use]
    pub fn materialize(&self) -> Vec<DynInst> {
        let mut out = Vec::with_capacity(self.total_insts as usize);
        for &id in self.records.iter() {
            out.extend_from_slice(self.template(id).insts());
        }
        out
    }

    /// Compression and shape statistics.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        let insts = self.total_insts;
        let records = self.records.len() as u64;
        let template_insts: u64 = self.templates.iter().map(|t| t.len() as u64).sum();
        let inst_size = std::mem::size_of::<DynInst>() as u64;
        let stream_bytes = records * 4 + template_insts * inst_size;
        let inst_bytes = insts * inst_size;
        StreamStats {
            insts,
            records,
            templates: self.templates.len() as u64,
            template_insts,
            mean_run_len: if records == 0 {
                0.0
            } else {
                insts as f64 / records as f64
            },
            stream_bytes,
            inst_bytes,
            compression: if stream_bytes == 0 {
                1.0
            } else {
                inst_bytes as f64 / stream_bytes as f64
            },
        }
    }
}

/// Interning key: segment identity up to the exact instruction contents.
/// Two segments share a key iff they start at the same address, have the same
/// length, and end with the same (op, direction, resume address) — candidates
/// are then compared in full, so interning never conflates distinct segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SegKey {
    start: Addr,
    len: u32,
    exit_op: OpClass,
    /// 0 = cut (no ctrl), 1 = not taken, 2 = taken.
    exit_dir: u8,
    exit_pc: Addr,
}

impl SegKey {
    fn of(insts: &[DynInst]) -> Self {
        let first = insts.first().expect("non-empty segment");
        let last = insts.last().expect("non-empty segment");
        Self {
            start: first.addr,
            len: insts.len() as u32,
            exit_op: last.op,
            exit_dir: match last.ctrl {
                None => 0,
                Some(c) if !c.taken => 1,
                Some(_) => 2,
            },
            exit_pc: last.next_pc,
        }
    }
}

/// Incremental [`BlockStream`] encoder with template interning.
///
/// Feed dynamic instructions with [`push`](Self::push); a segment seals after
/// every control transfer and at [`finish`](Self::finish) (a trailing cut
/// segment). Generators that know segment boundaries up front can intern a
/// whole segment at once with [`intern`](Self::intern) +
/// [`push_record`](Self::push_record).
#[derive(Debug, Default)]
pub struct BlockStreamBuilder {
    templates: Vec<SegTemplate>,
    index: HashMap<SegKey, Vec<u32>>,
    records: Vec<u32>,
    total_insts: u64,
    pending: Vec<DynInst>,
}

impl BlockStreamBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one dynamic instruction, sealing the current segment if it is
    /// a control transfer.
    pub fn push(&mut self, inst: DynInst) {
        let seal = inst.ctrl.is_some();
        self.pending.push(inst);
        if seal {
            let seg = std::mem::take(&mut self.pending);
            let id = self.intern(&seg);
            self.push_record(id);
        }
    }

    /// Interns a complete segment, returning its template id. Identical
    /// segments (same instructions, byte for byte) share one template.
    ///
    /// # Panics
    ///
    /// Panics if `insts` violates the [`SegTemplate`] invariants.
    pub fn intern(&mut self, insts: &[DynInst]) -> u32 {
        let key = SegKey::of(insts);
        if let Some(candidates) = self.index.get(&key) {
            for &id in candidates {
                if self.templates[id as usize].insts() == insts {
                    return id;
                }
            }
        }
        let id = u32::try_from(self.templates.len()).expect("more than u32::MAX templates");
        self.templates.push(SegTemplate::new(insts.to_vec()));
        self.index.entry(key).or_default().push(id);
        id
    }

    /// Appends a dynamic record executing template `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a template of this builder.
    pub fn push_record(&mut self, id: u32) {
        let len = self.templates[id as usize].len() as u64;
        self.records.push(id);
        self.total_insts += len;
    }

    /// Instructions encoded so far (including the unsealed pending run).
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.total_insts + self.pending.len() as u64
    }

    /// Seals any trailing cut segment and returns the finished stream.
    #[must_use]
    pub fn finish(mut self) -> BlockStream {
        if !self.pending.is_empty() {
            let seg = std::mem::take(&mut self.pending);
            let id = self.intern(&seg);
            self.push_record(id);
        }
        BlockStream {
            templates: self.templates.into_boxed_slice(),
            records: self.records.into_boxed_slice(),
            total_insts: self.total_insts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::BranchId;
    use crate::trace::DynCtrl;

    fn alu(addr: u64) -> DynInst {
        DynInst::simple(Addr::new(addr), OpClass::IntAlu, None, [None, None])
    }

    fn nop(addr: u64) -> DynInst {
        DynInst::simple(Addr::new(addr), OpClass::Nop, None, [None, None])
    }

    fn branch(addr: u64, taken: bool, target: u64) -> DynInst {
        DynInst {
            addr: Addr::new(addr),
            op: OpClass::CondBranch,
            dest: None,
            srcs: [None, None],
            next_pc: Addr::new(if taken { target } else { addr + 4 }),
            ctrl: Some(DynCtrl {
                branch_id: Some(BranchId(7)),
                taken,
                target: Addr::new(target),
                link: None,
            }),
        }
    }

    #[test]
    fn empty_trace_encodes_to_empty_stream() {
        let s = BlockStream::from_insts(&[]);
        assert!(s.is_empty());
        assert_eq!(s.total_insts(), 0);
        assert_eq!(s.records().len(), 0);
        assert_eq!(s.templates().len(), 0);
        assert!(s.materialize().is_empty());
        assert_eq!(s.stats().compression, 1.0);
    }

    #[test]
    fn taken_branch_boundaries_split_segments_exactly() {
        // run of 2 ending in taken branch, then run of 1 ending in not-taken
        // branch, then a straddling cut tail of 2 plain instructions.
        let trace = vec![
            alu(0x100),
            branch(0x104, true, 0x200),
            branch(0x200, false, 0x100),
            alu(0x204),
            alu(0x208),
        ];
        let s = BlockStream::from_insts(&trace);
        assert_eq!(s.records().len(), 3);
        assert_eq!(s.total_insts(), 5);
        let segs: Vec<_> = (0..3).map(|r| s.record_template(r)).collect();
        assert_eq!(segs[0].len(), 2);
        assert_eq!(segs[0].terminal().unwrap().addr, Addr::new(0x104));
        assert_eq!(segs[0].target_displacement_words(), Some(63)); // 0x104 -> 0x200
        assert_eq!(segs[1].len(), 1);
        assert_eq!(segs[1].target_displacement_words(), None); // not taken
        assert!(segs[2].is_cut());
        assert_eq!(segs[2].len(), 2);
        assert_eq!(s.materialize(), trace);
    }

    #[test]
    fn repeated_segments_intern_to_one_template() {
        let body = [alu(0x100), branch(0x104, true, 0x100)];
        let mut trace = Vec::new();
        for _ in 0..100 {
            trace.extend_from_slice(&body);
        }
        let s = BlockStream::from_insts(&trace);
        assert_eq!(s.records().len(), 100);
        assert_eq!(s.templates().len(), 1);
        assert!(s.records().iter().all(|&id| id == 0));
        assert_eq!(s.materialize(), trace);
        let st = s.stats();
        assert_eq!(st.insts, 200);
        assert!(st.compression > 10.0, "compression {}", st.compression);
    }

    #[test]
    fn direction_is_part_of_template_identity() {
        // Same static branch, different dynamic direction: two templates.
        let trace = vec![
            branch(0x104, true, 0x100),
            branch(0x104, false, 0x100),
            branch(0x104, true, 0x100),
        ];
        let s = BlockStream::from_insts(&trace);
        assert_eq!(s.templates().len(), 2);
        assert_eq!(s.records(), &[0, 1, 0]);
        assert_eq!(s.materialize(), trace);
    }

    #[test]
    fn per_op_class_counts_are_exact() {
        let trace = vec![
            alu(0x100),
            nop(0x104),
            DynInst::simple(Addr::new(0x108), OpClass::Load, None, [None, None]),
            nop(0x10c),
            branch(0x110, true, 0x100),
        ];
        let s = BlockStream::from_insts(&trace);
        let t = s.record_template(0);
        assert_eq!(t.op_count(OpClass::IntAlu), 1);
        assert_eq!(t.op_count(OpClass::Nop), 2);
        assert_eq!(t.op_count(OpClass::Load), 1);
        assert_eq!(t.op_count(OpClass::CondBranch), 1);
        assert_eq!(t.counts().iter().sum::<u32>(), 5);
        // Prefix nop counts over partial ranges.
        assert_eq!(t.nops_in(0..5), 2);
        assert_eq!(t.nops_in(0..2), 1);
        assert_eq!(t.nops_in(2..3), 0);
        assert_eq!(t.nops_in(3..5), 1);
        assert_eq!(t.nops_in(1..1), 0);
    }

    #[test]
    fn single_control_instruction_trace() {
        let trace = vec![branch(0x100, true, 0x300)];
        let s = BlockStream::from_insts(&trace);
        assert_eq!(s.records().len(), 1);
        let t = s.record_template(0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_cut());
        assert_eq!(t.start_addr(), Addr::new(0x100));
        assert_eq!(t.start_block(16), Addr::new(0x100));
        assert_eq!(t.next_pc(), Addr::new(0x300));
        assert!(t.sequential());
        assert_eq!(s.materialize(), trace);
    }

    #[test]
    fn irregular_trace_is_flagged_non_sequential_and_roundtrips() {
        // A run whose addresses do not fall through: legal input, preserved
        // verbatim, but marked non-sequential so the fast fetch path walks it
        // instruction by instruction.
        let trace = vec![alu(0x100), alu(0x500), branch(0x504, false, 0x100)];
        let s = BlockStream::from_insts(&trace);
        assert_eq!(s.records().len(), 1);
        assert!(!s.record_template(0).sequential());
        assert_eq!(s.materialize(), trace);
    }

    #[test]
    fn iter_matches_materialize() {
        let trace = vec![
            alu(0x100),
            branch(0x104, true, 0x100),
            alu(0x100),
            branch(0x104, false, 0x100),
            alu(0x108),
        ];
        let s = BlockStream::from_insts(&trace);
        let via_iter: Vec<DynInst> = s.iter().copied().collect();
        assert_eq!(via_iter, s.materialize());
        assert_eq!(via_iter, trace);
    }

    #[test]
    fn intern_then_push_record_matches_push_encoding() {
        let seg_a = vec![alu(0x100), branch(0x104, true, 0x100)];
        let seg_b = vec![branch(0x104, false, 0x100)];
        let mut b = BlockStreamBuilder::new();
        let a = b.intern(&seg_a);
        let a2 = b.intern(&seg_a);
        assert_eq!(a, a2);
        let bb = b.intern(&seg_b);
        assert_ne!(a, bb);
        b.push_record(a);
        b.push_record(bb);
        b.push_record(a);
        let s1 = b.finish();

        let mut flat = Vec::new();
        flat.extend_from_slice(&seg_a);
        flat.extend_from_slice(&seg_b);
        flat.extend_from_slice(&seg_a);
        let s2 = BlockStream::from_insts(&flat);
        assert_eq!(s1, s2);
    }
}
