//! Code layout: materializing a [`Program`] into an addressed instruction
//! stream.
//!
//! Layout is where the paper's compiler experiments live: the *same* program
//! laid out in different block orders produces different fall-through
//! elision, different taken-branch counts, and different cache-block
//! alignment. [`Layout::new`] takes an explicit block order plus a
//! [`PadMode`] (for the §4.1 pad-all / pad-trace study) and produces a flat
//! vector of [`LaidInst`]s with all branch targets resolved to addresses.

use std::collections::HashSet;
use std::fmt;

use crate::addr::{Addr, WORD_BYTES};
use crate::cfg::{Block, BlockId, BranchId, Program, Terminator};
use crate::op::OpClass;
use crate::reg::Reg;

/// Link register used by materialized `call` instructions.
const LINK_REG: Reg = Reg::Int(31);

/// Nop-padding policy applied during layout (§4.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum PadMode {
    /// No padding.
    #[default]
    None,
    /// Pad after *every* basic block so the next block starts at a cache
    /// block boundary (`pad-all`).
    PadAll,
    /// Pad only after blocks that end a compiler-selected trace
    /// (`pad-trace`); the set is produced by the trace-selection pass.
    PadTrace(HashSet<BlockId>),
}

/// Options controlling [`Layout::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayoutOptions {
    /// Address of the first instruction.
    pub base: Addr,
    /// Cache block size in bytes; used by the padding modes and recorded for
    /// downstream geometry queries. Must be a power of two.
    pub block_bytes: u64,
    /// Padding policy.
    pub pad: PadMode,
}

impl LayoutOptions {
    /// Conventional options: base `0x1_0000`, the given cache-block size,
    /// no padding.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two or smaller than one word.
    #[must_use]
    pub fn new(block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two() && block_bytes >= WORD_BYTES,
            "block size must be a power of two >= {WORD_BYTES}"
        );
        Self {
            base: Addr::new(0x1_0000),
            block_bytes,
            pad: PadMode::None,
        }
    }

    /// Sets the padding mode (builder style).
    #[must_use]
    pub fn with_pad(mut self, pad: PadMode) -> Self {
        self.pad = pad;
        self
    }
}

/// Control-flow attributes of a laid-out instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtrlAttr {
    /// Stable branch id for conditional branches.
    pub branch_id: Option<BranchId>,
    /// Whether a layout transform inverted this conditional branch's sense.
    pub inverted: bool,
    /// Static target address: the taken destination for branches/jumps/calls
    /// and the program entry for `halt`. `None` for `ret` (dynamic target).
    pub target: Option<Addr>,
}

/// One instruction in the laid-out stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaidInst {
    /// This instruction's address.
    pub addr: Addr,
    /// Operation class.
    pub op: OpClass,
    /// Destination register.
    pub dest: Option<Reg>,
    /// Source registers.
    pub srcs: [Option<Reg>; 2],
    /// Immediate field.
    pub imm: i8,
    /// Control attributes; `Some` exactly when `op.is_control()` or the
    /// instruction is a `halt`.
    pub ctrl: Option<CtrlAttr>,
    /// Basic block this instruction was emitted for (padding nops belong to
    /// the block they follow).
    pub block: BlockId,
}

impl LaidInst {
    /// The address of the next sequential instruction.
    #[must_use]
    pub fn fall_addr(&self) -> Addr {
        self.addr.add_words(1)
    }
}

/// Code-size statistics for a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayoutStats {
    /// Total instructions emitted, including padding nops.
    pub total_insts: usize,
    /// Padding nops inserted by the [`PadMode`].
    pub pad_nops: usize,
    /// Materialized unconditional jumps (fall-through edges that could not be
    /// elided). Reordering aims to shrink this.
    pub materialized_jumps: usize,
}

impl LayoutStats {
    /// Padding nops as a percentage of the *unpadded* code size — the metric
    /// Table 4 of the paper reports.
    #[must_use]
    pub fn pad_pct(&self) -> f64 {
        let orig = self.total_insts - self.pad_nops;
        if orig == 0 {
            0.0
        } else {
            100.0 * self.pad_nops as f64 / orig as f64
        }
    }
}

/// Errors from [`Layout::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The order is not a permutation of the program's blocks.
    NotAPermutation,
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NotAPermutation => {
                write!(
                    f,
                    "block order is not a permutation of the program's blocks"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// The raw, unvalidated parts of a [`Layout`].
///
/// Produced by [`Layout::into_raw`] and consumed by [`Layout::from_raw`];
/// every field is public so verification tests can corrupt exactly one
/// layout invariant at a time.
#[derive(Debug, Clone)]
pub struct RawLayout {
    /// The laid-out instruction stream.
    pub code: Vec<LaidInst>,
    /// Starting address of each block, indexed by block id.
    pub block_addr: Vec<Addr>,
    /// Block layout order.
    pub order: Vec<BlockId>,
    /// Address of the program entry block.
    pub entry_addr: Addr,
    /// The options the layout was produced with.
    pub options: LayoutOptions,
    /// Emission statistics.
    pub stats: LayoutStats,
}

/// A program laid out in memory: addressed instructions plus block-address
/// and index maps.
#[derive(Debug, Clone)]
pub struct Layout {
    code: Vec<LaidInst>,
    block_addr: Vec<Addr>,
    order: Vec<BlockId>,
    entry_addr: Addr,
    options: LayoutOptions,
    stats: LayoutStats,
}

impl Layout {
    /// Lays out `program` in the given block order.
    ///
    /// Materialization rules (this is where reordering pays off):
    ///
    /// * `FallThrough`/`Jump` edges to the next block in the order are elided;
    ///   otherwise a `jmp` is emitted.
    /// * A conditional branch emits `br <taken>`; if its fall-through block is
    ///   not next in the order, a compensating `jmp <fall>` follows.
    /// * `Call`/`Return`/`Halt` always emit one instruction.
    /// * Padding nops are appended per [`PadMode`].
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::NotAPermutation`] if `order` does not list each
    /// block exactly once.
    pub fn new(
        program: &Program,
        order: &[BlockId],
        options: LayoutOptions,
    ) -> Result<Self, LayoutError> {
        let n = program.num_blocks();
        if order.len() != n {
            return Err(LayoutError::NotAPermutation);
        }
        let mut seen = vec![false; n];
        for &b in order {
            let idx = b.0 as usize;
            if idx >= n || seen[idx] {
                return Err(LayoutError::NotAPermutation);
            }
            seen[idx] = true;
        }

        // Pass 1: sizes and addresses.
        let mut block_addr = vec![Addr::default(); n];
        let mut cursor = options.base;
        let mut pad_nops = 0usize;
        let mut materialized_jumps = 0usize;
        let sizes: Vec<(usize, usize)> = order
            .iter()
            .enumerate()
            .map(|(pos, &bid)| {
                let block = program.block(bid);
                let next = order.get(pos + 1).copied();
                let term_len = Self::terminator_len(block, next);
                (block.insts.len() + term_len.0, term_len.1)
            })
            .collect();
        for (pos, &bid) in order.iter().enumerate() {
            block_addr[bid.0 as usize] = cursor;
            let (len, jumps) = sizes[pos];
            materialized_jumps += jumps;
            cursor = cursor.add_words(len as u64);
            if Self::pads_after(&options.pad, bid) {
                let aligned = Self::align_up(cursor, options.block_bytes);
                pad_nops += ((aligned.byte() - cursor.byte()) / WORD_BYTES) as usize;
                cursor = aligned;
            }
        }

        // Pass 2: emit instructions with resolved targets.
        let mut code =
            Vec::with_capacity(((cursor.byte() - options.base.byte()) / WORD_BYTES) as usize);
        let entry_addr = block_addr[program.entry().0 as usize];
        let mut emit_cursor = options.base;
        for (pos, &bid) in order.iter().enumerate() {
            let block = program.block(bid);
            let next = order.get(pos + 1).copied();
            debug_assert_eq!(emit_cursor, block_addr[bid.0 as usize]);
            for inst in &block.insts {
                code.push(LaidInst {
                    addr: emit_cursor,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    imm: inst.imm,
                    ctrl: None,
                    block: bid,
                });
                emit_cursor = emit_cursor.add_words(1);
            }
            emit_cursor =
                Self::emit_terminator(block, next, &block_addr, entry_addr, emit_cursor, &mut code);
            if Self::pads_after(&options.pad, bid) {
                let aligned = Self::align_up(emit_cursor, options.block_bytes);
                while emit_cursor < aligned {
                    code.push(LaidInst {
                        addr: emit_cursor,
                        op: OpClass::Nop,
                        dest: None,
                        srcs: [None, None],
                        imm: 0,
                        ctrl: None,
                        block: bid,
                    });
                    emit_cursor = emit_cursor.add_words(1);
                }
            }
        }
        debug_assert_eq!(emit_cursor, cursor);

        let stats = LayoutStats {
            total_insts: code.len(),
            pad_nops,
            materialized_jumps,
        };
        let layout = Self {
            code,
            block_addr,
            order: order.to_vec(),
            entry_addr,
            options,
            stats,
        };
        crate::hooks::check_layout(program, &layout);
        Ok(layout)
    }

    /// Decomposes the layout into its raw parts (see [`RawLayout`]).
    #[must_use]
    pub fn into_raw(self) -> RawLayout {
        RawLayout {
            code: self.code,
            block_addr: self.block_addr,
            order: self.order,
            entry_addr: self.entry_addr,
            options: self.options,
            stats: self.stats,
        }
    }

    /// Reassembles a layout from raw parts **without validation** and
    /// without running verification hooks.
    ///
    /// The result may violate every invariant [`Layout::new`] establishes;
    /// intended for the analysis layer's mutation tests.
    #[must_use]
    pub fn from_raw(raw: RawLayout) -> Self {
        Self {
            code: raw.code,
            block_addr: raw.block_addr,
            order: raw.order,
            entry_addr: raw.entry_addr,
            options: raw.options,
            stats: raw.stats,
        }
    }

    /// Lays out `program` in block-id order ("as written" — the unoptimized
    /// baseline layout).
    ///
    /// # Errors
    ///
    /// Propagates [`LayoutError`] from [`Layout::new`] (cannot occur for the
    /// natural order of a valid program).
    pub fn natural(program: &Program, options: LayoutOptions) -> Result<Self, LayoutError> {
        let order: Vec<BlockId> = (0..program.num_blocks() as u32).map(BlockId).collect();
        Self::new(program, &order, options)
    }

    /// Returns `(instruction count, materialized jump count)` that `block`'s
    /// terminator contributes, given the next block in the order.
    fn terminator_len(block: &Block, next: Option<BlockId>) -> (usize, usize) {
        match block.terminator {
            Terminator::FallThrough { next: target } | Terminator::Jump { target } => {
                if Some(target) == next {
                    (0, 0)
                } else {
                    (1, 1)
                }
            }
            Terminator::CondBranch { fall, .. } => {
                if Some(fall) == next {
                    (1, 0)
                } else {
                    (2, 1)
                }
            }
            Terminator::Call { .. } | Terminator::Return | Terminator::Halt => (1, 0),
        }
    }

    fn emit_terminator(
        block: &Block,
        next: Option<BlockId>,
        block_addr: &[Addr],
        entry_addr: Addr,
        mut cursor: Addr,
        code: &mut Vec<LaidInst>,
    ) -> Addr {
        let addr_of = |b: BlockId| block_addr[b.0 as usize];
        let mut emit = |cursor: &mut Addr,
                        op: OpClass,
                        dest: Option<Reg>,
                        srcs: [Option<Reg>; 2],
                        ctrl: Option<CtrlAttr>| {
            code.push(LaidInst {
                addr: *cursor,
                op,
                dest,
                srcs,
                imm: 0,
                ctrl,
                block: block.id,
            });
            *cursor = cursor.add_words(1);
        };
        match block.terminator {
            Terminator::FallThrough { next: target } | Terminator::Jump { target } => {
                if Some(target) != next {
                    emit(
                        &mut cursor,
                        OpClass::Jump,
                        None,
                        [None, None],
                        Some(CtrlAttr {
                            branch_id: None,
                            inverted: false,
                            target: Some(addr_of(target)),
                        }),
                    );
                }
            }
            Terminator::CondBranch {
                id,
                srcs,
                taken,
                fall,
                inverted,
            } => {
                emit(
                    &mut cursor,
                    OpClass::CondBranch,
                    None,
                    srcs,
                    Some(CtrlAttr {
                        branch_id: Some(id),
                        inverted,
                        target: Some(addr_of(taken)),
                    }),
                );
                if Some(fall) != next {
                    emit(
                        &mut cursor,
                        OpClass::Jump,
                        None,
                        [None, None],
                        Some(CtrlAttr {
                            branch_id: None,
                            inverted: false,
                            target: Some(addr_of(fall)),
                        }),
                    );
                }
            }
            Terminator::Call { callee, .. } => {
                emit(
                    &mut cursor,
                    OpClass::Call,
                    Some(LINK_REG),
                    [None, None],
                    Some(CtrlAttr {
                        branch_id: None,
                        inverted: false,
                        target: Some(addr_of(callee)),
                    }),
                );
            }
            Terminator::Return => {
                emit(
                    &mut cursor,
                    OpClass::Return,
                    None,
                    [Some(LINK_REG), None],
                    Some(CtrlAttr {
                        branch_id: None,
                        inverted: false,
                        target: None,
                    }),
                );
            }
            Terminator::Halt => {
                emit(
                    &mut cursor,
                    OpClass::Halt,
                    None,
                    [None, None],
                    Some(CtrlAttr {
                        branch_id: None,
                        inverted: false,
                        target: Some(entry_addr),
                    }),
                );
            }
        }
        cursor
    }

    fn pads_after(pad: &PadMode, block: BlockId) -> bool {
        match pad {
            PadMode::None => false,
            PadMode::PadAll => true,
            PadMode::PadTrace(ends) => ends.contains(&block),
        }
    }

    fn align_up(addr: Addr, block_bytes: u64) -> Addr {
        let mask = block_bytes - 1;
        Addr::new((addr.byte() + mask) & !mask)
    }

    /// Returns the laid-out instruction stream.
    #[must_use]
    pub fn code(&self) -> &[LaidInst] {
        &self.code
    }

    /// Returns the address of the first instruction of `block` (equal to the
    /// next block's address when this block emitted no instructions).
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range for the laid-out program.
    #[must_use]
    pub fn block_addr(&self, block: BlockId) -> Addr {
        self.block_addr[block.0 as usize]
    }

    /// Returns the program entry address.
    #[must_use]
    pub fn entry_addr(&self) -> Addr {
        self.entry_addr
    }

    /// Returns the index into [`Layout::code`] of the instruction at `addr`,
    /// or `None` if `addr` is outside the laid-out image or unaligned.
    #[must_use]
    pub fn index_of(&self, addr: Addr) -> Option<usize> {
        let base = self.options.base.byte();
        let b = addr.byte();
        if b < base || !(b - base).is_multiple_of(WORD_BYTES) {
            return None;
        }
        let idx = ((b - base) / WORD_BYTES) as usize;
        if idx < self.code.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Returns the instruction at `addr`, if any.
    #[must_use]
    pub fn inst_at(&self, addr: Addr) -> Option<&LaidInst> {
        self.index_of(addr).map(|i| &self.code[i])
    }

    /// Returns the block order this layout used.
    #[must_use]
    pub fn order(&self) -> &[BlockId] {
        &self.order
    }

    /// Returns the layout options.
    #[must_use]
    pub fn options(&self) -> &LayoutOptions {
        &self.options
    }

    /// Returns code-size statistics.
    #[must_use]
    pub fn stats(&self) -> LayoutStats {
        self.stats
    }

    /// Total code size in bytes.
    #[must_use]
    pub fn code_bytes(&self) -> u64 {
        self.code.len() as u64 * WORD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Inst, ProgramBuilder};

    /// head -> (cond) body -> tail(halt), with body falling through to tail.
    fn diamondish() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let head = b.new_block(f);
        let body = b.new_block(f);
        let tail = b.new_block(f);
        for _ in 0..3 {
            b.push_inst(
                head,
                Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
            );
        }
        b.push_inst(
            body,
            Inst::new(OpClass::IntAlu, Some(Reg::int(2)), [None, None]),
        );
        // taken edge skips body (a hammock).
        b.set_cond_branch(head, [Some(Reg::int(1)), None], tail, body);
        b.set_terminator(body, Terminator::FallThrough { next: tail });
        b.set_terminator(tail, Terminator::Halt);
        b.set_entry(head);
        b.finish().expect("valid")
    }

    #[test]
    fn natural_layout_elides_fallthroughs() {
        let p = diamondish();
        let l = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        // head: 3 alu + 1 br (fall elided); body: 1 alu (+0, fallthrough to
        // next); tail: 1 halt => 6 instructions.
        assert_eq!(l.code().len(), 6);
        assert_eq!(l.stats().materialized_jumps, 0);
        assert_eq!(l.stats().pad_nops, 0);
    }

    #[test]
    fn branch_targets_resolve_to_block_addresses() {
        let p = diamondish();
        let l = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        let br = l
            .code()
            .iter()
            .find(|i| i.op == OpClass::CondBranch)
            .expect("branch");
        assert_eq!(
            br.ctrl.expect("ctrl").target,
            Some(l.block_addr(BlockId(2)))
        );
    }

    #[test]
    fn reversed_order_materializes_jumps() {
        let p = diamondish();
        let order = [BlockId(2), BlockId(1), BlockId(0)];
        let l = Layout::new(&p, &order, LayoutOptions::new(16)).expect("layout");
        // tail first: halt. body: alu + jmp tail. head: 3 alu + br + jmp body.
        assert_eq!(l.code().len(), 8);
        assert_eq!(l.stats().materialized_jumps, 2);
        let jumps: Vec<_> = l.code().iter().filter(|i| i.op == OpClass::Jump).collect();
        assert_eq!(jumps.len(), 2);
        assert_eq!(
            jumps[0].ctrl.expect("ctrl").target,
            Some(l.block_addr(BlockId(2)))
        );
    }

    #[test]
    fn pad_all_aligns_every_block() {
        let p = diamondish();
        let opts = LayoutOptions::new(16).with_pad(PadMode::PadAll);
        let l = Layout::natural(&p, opts).expect("layout");
        for &b in l.order() {
            assert_eq!(l.block_addr(b).byte() % 16, 0, "block {b} misaligned");
        }
        assert!(l.stats().pad_nops > 0);
        // Every emitted word is an instruction; nops fill the gaps.
        for (i, inst) in l.code().iter().enumerate() {
            assert_eq!(l.index_of(inst.addr), Some(i));
        }
    }

    #[test]
    fn pad_trace_aligns_only_marked_blocks() {
        let p = diamondish();
        let mut ends = HashSet::new();
        ends.insert(BlockId(0));
        let opts = LayoutOptions::new(16).with_pad(PadMode::PadTrace(ends));
        let l = Layout::natural(&p, opts).expect("layout");
        assert_eq!(l.block_addr(BlockId(1)).byte() % 16, 0);
        // Only one pad region: after head (3 alu + 1 br = 16 bytes, so 0 nops
        // needed here — adjust base so padding is non-trivial).
        assert_eq!(l.stats().pad_nops, 0);
    }

    #[test]
    fn halt_targets_entry() {
        let p = diamondish();
        let l = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        let halt = l
            .code()
            .iter()
            .find(|i| i.op == OpClass::Halt)
            .expect("halt");
        assert_eq!(halt.ctrl.expect("ctrl").target, Some(l.entry_addr()));
    }

    #[test]
    fn non_permutation_is_rejected() {
        let p = diamondish();
        let bad = [BlockId(0), BlockId(0), BlockId(1)];
        assert_eq!(
            Layout::new(&p, &bad, LayoutOptions::new(16)).unwrap_err(),
            LayoutError::NotAPermutation
        );
        let short = [BlockId(0)];
        assert_eq!(
            Layout::new(&p, &short, LayoutOptions::new(16)).unwrap_err(),
            LayoutError::NotAPermutation
        );
    }

    #[test]
    fn index_of_rejects_unaligned_and_out_of_range() {
        let p = diamondish();
        let l = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        assert_eq!(l.index_of(Addr::new(l.entry_addr().byte() + 1)), None);
        assert_eq!(l.index_of(Addr::new(0)), None);
        assert_eq!(l.index_of(l.entry_addr()), Some(0));
    }

    #[test]
    fn addresses_are_contiguous_words() {
        let p = diamondish();
        let l = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        for (i, inst) in l.code().iter().enumerate() {
            assert_eq!(inst.addr, l.options().base.add_words(i as u64));
        }
    }

    #[test]
    fn call_and_return_materialize() {
        let mut b = ProgramBuilder::new();
        let f0 = b.begin_func();
        let f1 = b.begin_func();
        let main = b.new_block(f0);
        let after = b.new_block(f0);
        let callee = b.new_block(f1);
        b.set_terminator(
            main,
            Terminator::Call {
                callee,
                return_to: after,
            },
        );
        b.set_terminator(after, Terminator::Halt);
        b.set_terminator(callee, Terminator::Return);
        b.set_entry(main);
        let p = b.finish().expect("valid");
        let l = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        let call = l
            .code()
            .iter()
            .find(|i| i.op == OpClass::Call)
            .expect("call");
        assert_eq!(call.ctrl.expect("ctrl").target, Some(l.block_addr(callee)));
        let ret = l
            .code()
            .iter()
            .find(|i| i.op == OpClass::Return)
            .expect("ret");
        assert_eq!(ret.ctrl.expect("ctrl").target, None);
    }

    #[test]
    fn pad_pct_matches_definition() {
        let stats = LayoutStats {
            total_insts: 120,
            pad_nops: 20,
            materialized_jumps: 0,
        };
        assert!((stats.pad_pct() - 20.0).abs() < 1e-9);
    }
}
