//! Virtual addresses and cache-block geometry helpers.

use std::fmt;

/// Size of one instruction word in bytes (fixed 32-bit encoding).
pub const WORD_BYTES: u64 = 4;

/// A byte-granular virtual address.
///
/// Instruction addresses in this simulator are always word-aligned
/// (multiples of [`WORD_BYTES`]); the constructors preserve that invariant
/// for word-indexed construction and `Addr::new` accepts arbitrary byte
/// addresses for cache arithmetic.
///
/// # Examples
///
/// ```
/// use fetchmech_isa::Addr;
///
/// let a = Addr::from_word_index(3);
/// assert_eq!(a.byte(), 12);
/// assert_eq!(a.word_index(), 3);
/// assert_eq!(a.offset_words(16), 3); // within a 16-byte block
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[must_use]
    pub const fn new(byte: u64) -> Self {
        Self(byte)
    }

    /// Creates a word-aligned address from an instruction-word index.
    #[must_use]
    pub const fn from_word_index(index: u64) -> Self {
        Self(index * WORD_BYTES)
    }

    /// Returns the raw byte address.
    #[must_use]
    pub const fn byte(self) -> u64 {
        self.0
    }

    /// Returns the instruction-word index (`byte / 4`).
    #[must_use]
    pub const fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// Returns the address advanced by `n` instruction words.
    #[must_use]
    pub const fn add_words(self, n: u64) -> Self {
        Self(self.0 + n * WORD_BYTES)
    }

    /// Returns the address of the cache block containing `self` for the
    /// given block size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    #[must_use]
    pub fn block_base(self, block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        Self(self.0 & !(block_bytes - 1))
    }

    /// Returns the block index (`byte / block_bytes`).
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    #[must_use]
    pub fn block_index(self, block_bytes: u64) -> u64 {
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        self.0 >> block_bytes.trailing_zeros()
    }

    /// Returns the word offset of this address within its cache block.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a power of two.
    #[must_use]
    pub fn offset_words(self, block_bytes: u64) -> u64 {
        (self.0 - self.block_base(block_bytes).0) / WORD_BYTES
    }

    /// Returns `true` if `self` and `other` lie in the same cache block.
    #[must_use]
    pub fn same_block(self, other: Addr, block_bytes: u64) -> bool {
        self.block_base(block_bytes) == other.block_base(block_bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_index_roundtrip() {
        for i in [0u64, 1, 7, 1000, 1 << 30] {
            assert_eq!(Addr::from_word_index(i).word_index(), i);
        }
    }

    #[test]
    fn block_base_masks_low_bits() {
        let a = Addr::new(0x1234);
        assert_eq!(a.block_base(16).byte(), 0x1230);
        assert_eq!(a.block_base(64).byte(), 0x1200);
    }

    #[test]
    fn offset_words_within_block() {
        let a = Addr::new(0x1238);
        assert_eq!(a.offset_words(16), 2);
        assert_eq!(a.offset_words(64), 14);
    }

    #[test]
    fn same_block_detection() {
        let a = Addr::new(0x100);
        assert!(a.same_block(Addr::new(0x10c), 16));
        assert!(!a.same_block(Addr::new(0x110), 16));
        assert!(a.same_block(Addr::new(0x13c), 64));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_block_panics() {
        let _ = Addr::new(0).block_base(24);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x1c).to_string(), "0x0000001c");
    }
}
