//! # fetchmech-isa
//!
//! The instruction-set substrate for the `fetchmech` reproduction of
//! *"Optimization of Instruction Fetch Mechanisms for High Issue Rates"*
//! (Conte, Menezes, Mills, Patel — ISCA 1995).
//!
//! This crate provides everything the fetch and pipeline simulators consume:
//!
//! * a small fixed-32-bit RISC instruction set ([`OpClass`], [`Reg`],
//!   [`encode()`](encode())/[`decode`]),
//! * control-flow graphs ([`Program`], [`Block`], [`Terminator`]) with stable
//!   branch identities ([`BranchId`]) that survive compiler transforms,
//! * code layout ([`Layout`]) — block ordering, jump materialization/elision,
//!   and the nop-padding modes of the paper's §4.1,
//! * dynamic-trace records ([`DynInst`]) and stream statistics
//!   ([`TraceStats`]), and
//! * a deterministic simulation RNG ([`rng::Pcg64`]).
//!
//! # Examples
//!
//! Build a two-block loop, lay it out, and inspect the branch target:
//!
//! ```
//! use fetchmech_isa::{
//!     Inst, Layout, LayoutOptions, OpClass, ProgramBuilder, Reg, Terminator,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::new();
//! let f = b.begin_func();
//! let head = b.new_block(f);
//! let exit = b.new_block(f);
//! b.push_inst(head, Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]));
//! b.set_cond_branch(head, [Some(Reg::int(1)), None], head, exit);
//! b.set_terminator(exit, Terminator::Halt);
//! b.set_entry(head);
//! let program = b.finish()?;
//!
//! let layout = Layout::natural(&program, LayoutOptions::new(16))?;
//! let branch = layout.code().iter().find(|i| i.op == OpClass::CondBranch).unwrap();
//! assert_eq!(branch.ctrl.unwrap().target, Some(layout.entry_addr()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod cfg;
pub mod dom;
pub mod encode;
pub mod hooks;
pub mod layout;
pub mod op;
pub mod reg;
pub mod rng;
pub mod stream;
pub mod trace;
pub mod trace_io;

pub use addr::{Addr, WORD_BYTES};
pub use cfg::{
    Block, BlockId, BranchId, CfgView, EdgeKind, FuncId, Inst, Program, ProgramBuilder,
    ProgramEdit, RawProgram, Terminator, ValidateError,
};
pub use dom::Dominators;
pub use encode::{decode, disasm, encode, encode_image, DecodeError, Decoded, EncodeError};
pub use layout::{
    CtrlAttr, LaidInst, Layout, LayoutError, LayoutOptions, LayoutStats, PadMode, RawLayout,
};
pub use op::{FuClass, OpClass};
pub use reg::{Reg, NUM_FP_REGS, NUM_INT_REGS};
pub use stream::{BlockStream, BlockStreamBuilder, SegTemplate, StreamStats};
pub use trace::{DynCtrl, DynInst, TraceStats};
pub use trace_io::{read_trace, write_trace};
