//! Dominator trees over [`Program`] control-flow graphs.
//!
//! The Cooper–Harvey–Kennedy iterative algorithm, computed per function over
//! a [`CfgView`]. This lives in the ISA crate (rather than the analysis
//! crate, where it originated) because the compiler's SSA construction needs
//! dominance and the analysis crate depends on the compiler; the analysis
//! crate re-exports [`Dominators`] from its `dataflow` module for
//! compatibility.

use crate::cfg::{BlockId, CfgView, Program};

/// The dominator forest of a program: one tree per function, over the
/// intra-procedural CFG (Cooper–Harvey–Kennedy iterative algorithm).
#[derive(Debug, Clone)]
pub struct Dominators {
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes immediate dominators for every block, per function.
    /// Function entries are their own immediate dominators; blocks
    /// unreachable from their function entry get `None`.
    #[must_use]
    pub fn compute(program: &Program, view: &CfgView) -> Self {
        let n = program.num_blocks();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let mut rpo_index = vec![usize::MAX; n];

        for &entry in program.func_entries() {
            let rpo = view.reverse_postorder(entry);
            for (i, &b) in rpo.iter().enumerate() {
                rpo_index[b.0 as usize] = i;
            }
            idom[entry.0 as usize] = Some(entry);
            let mut changed = true;
            while changed {
                changed = false;
                for &b in rpo.iter().skip(1) {
                    let mut new_idom: Option<BlockId> = None;
                    for &p in view.predecessors(b) {
                        if idom[p.0 as usize].is_none() {
                            continue; // predecessor not yet processed / unreachable
                        }
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                        });
                    }
                    if new_idom.is_some() && idom[b.0 as usize] != new_idom {
                        idom[b.0 as usize] = new_idom;
                        changed = true;
                    }
                }
            }
        }
        Self { idom, rpo_index }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_index: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                a = idom[a.0 as usize].expect("processed block has idom");
            }
            while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                b = idom[b.0 as usize].expect("processed block has idom");
            }
        }
        a
    }

    /// The immediate dominator of `block` (`Some(block)` itself for
    /// function entries, `None` for blocks unreachable from their entry).
    #[must_use]
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        self.idom[block.0 as usize]
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    #[must_use]
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.0 as usize] {
                Some(parent) if parent != cur => cur = parent,
                _ => return false,
            }
        }
    }

    /// Depth of `block` in its dominator tree (entries are depth 0;
    /// unreachable blocks report 0).
    #[must_use]
    pub fn depth(&self, block: BlockId) -> usize {
        let mut depth = 0;
        let mut cur = block;
        while let Some(parent) = self.idom[cur.0 as usize] {
            if parent == cur {
                break;
            }
            depth += 1;
            cur = parent;
        }
        depth
    }

    /// Reverse-postorder index assigned during construction (`usize::MAX`
    /// for blocks no function entry reaches).
    #[must_use]
    pub fn rpo_index(&self, block: BlockId) -> usize {
        self.rpo_index[block.0 as usize]
    }

    /// Dominance frontiers (Cytron et al.): `frontiers[b]` holds every block
    /// `j` with a predecessor dominated by `b` where `b`'s strict dominance
    /// stops. `view` must be the same local view the tree was computed from.
    ///
    /// Function entries are implicit merge points: control also arrives from
    /// the (virtual) caller edge, so an entry with any real predecessor — a
    /// loop whose backedge re-enters the function head — behaves as if a
    /// virtual root preceded it. This is exactly the frontier SSA phi
    /// placement needs.
    #[must_use]
    pub fn frontiers(&self, program: &Program, view: &CfgView) -> Vec<Vec<BlockId>> {
        let n = self.idom.len();
        let mut is_entry = vec![false; n];
        for &e in program.func_entries() {
            if (e.0 as usize) < n {
                is_entry[e.0 as usize] = true;
            }
        }
        let mut df: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)]
        for b in 0..n {
            let block = BlockId(b as u32);
            let preds = view.predecessors(block);
            let merge = preds.len() >= 2 || (is_entry[b] && !preds.is_empty());
            if !merge || self.idom[b].is_none() {
                continue;
            }
            let idom_b = self.idom[b].expect("checked above");
            for &p in preds {
                let mut runner = p;
                loop {
                    // With the virtual-root reading, an entry's strict
                    // dominators are exhausted only once the walk has pushed
                    // at the entry itself.
                    if !is_entry[b] && runner == idom_b {
                        break;
                    }
                    if !df[runner.0 as usize].contains(&block) {
                        df[runner.0 as usize].push(block);
                    }
                    if is_entry[b] && runner == block {
                        break;
                    }
                    match self.idom[runner.0 as usize] {
                        Some(parent) if parent != runner => runner = parent,
                        _ => break,
                    }
                }
            }
        }
        df
    }

    /// Dominator-tree children, per block (entries are roots; their
    /// self-idom does not make them their own child).
    #[must_use]
    pub fn children(&self) -> Vec<Vec<BlockId>> {
        let n = self.idom.len();
        let mut kids: Vec<Vec<BlockId>> = vec![Vec::new(); n];
        for b in 0..n {
            if let Some(parent) = self.idom[b] {
                if parent.0 as usize != b {
                    kids[parent.0 as usize].push(BlockId(b as u32));
                }
            }
        }
        kids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{Inst, ProgramBuilder, Terminator};
    use crate::op::OpClass;
    use crate::reg::Reg;

    /// entry → {left, right} → join → exit, with a backedge join → entry.
    fn diamond() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let top = b.new_block(f);
        let left = b.new_block(f);
        let right = b.new_block(f);
        let join = b.new_block(f);
        let exit = b.new_block(f);
        b.push_inst(
            top,
            Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
        );
        b.set_cond_branch(top, [Some(Reg::int(1)), None], left, right);
        b.set_terminator(left, Terminator::Jump { target: join });
        b.set_terminator(right, Terminator::Jump { target: join });
        b.set_cond_branch(join, [Some(Reg::int(1)), None], top, exit);
        b.set_terminator(exit, Terminator::Halt);
        b.set_entry(top);
        b.finish().expect("valid diamond")
    }

    #[test]
    fn frontier_of_diamond_arms_is_the_join() {
        let p = diamond();
        let view = CfgView::local(&p);
        let dom = Dominators::compute(&p, &view);
        let df = dom.frontiers(&p, &view);
        // left and right each stop dominating at the join.
        assert_eq!(df[1], vec![BlockId(3)]);
        assert_eq!(df[2], vec![BlockId(3)]);
        // The join→top backedge makes the loop-header entry a merge point
        // (virtual caller edge + backedge): both join and top itself carry
        // top in their frontier, so defs anywhere in the loop get header phis.
        assert_eq!(df[3], vec![BlockId(0)]);
        assert_eq!(df[0], vec![BlockId(0)]);
    }

    #[test]
    fn children_mirror_idoms() {
        let p = diamond();
        let view = CfgView::local(&p);
        let dom = Dominators::compute(&p, &view);
        let kids = dom.children();
        // top immediately dominates left, right, and the join.
        assert_eq!(kids[0], vec![BlockId(1), BlockId(2), BlockId(3)]);
        for (parent, children) in kids.iter().enumerate() {
            for c in children {
                assert_eq!(dom.idom(*c), Some(BlockId(parent as u32)));
            }
        }
    }
}
