//! Operation classes and functional-unit mapping.

use std::fmt;

/// The class of a functional unit in the execution core.
///
/// The paper's machine models (Table 1) provision fixed-point units, floating-
/// point units, branch units, and a data-cache interface (load units plus a
/// store buffer); result-bus count equals the total unit count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FuClass {
    /// Fixed-point (integer) unit.
    Fxu,
    /// Floating-point unit.
    Fpu,
    /// Branch unit.
    Branch,
    /// Data-cache interface (load units and the store buffer).
    Mem,
}

impl FuClass {
    /// All functional-unit classes, in display order.
    pub const ALL: [FuClass; 4] = [FuClass::Fxu, FuClass::Fpu, FuClass::Branch, FuClass::Mem];
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::Fxu => "FXU",
            FuClass::Fpu => "FPU",
            FuClass::Branch => "BR",
            FuClass::Mem => "MEM",
        };
        f.write_str(s)
    }
}

/// The operation class of an instruction.
///
/// This is deliberately coarse: the simulator models timing and dataflow, not
/// semantics, so one class per (functional unit, latency) pair suffices, plus
/// the control-flow shapes the fetch unit must distinguish.
///
/// # Examples
///
/// ```
/// use fetchmech_isa::{FuClass, OpClass};
///
/// assert_eq!(OpClass::FpMul.fu_class(), FuClass::Fpu);
/// assert_eq!(OpClass::FpMul.latency(), 2);
/// assert!(OpClass::CondBranch.is_control());
/// assert!(!OpClass::IntAlu.is_control());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpClass {
    /// Integer ALU operation (add, compare, logical, shift), 1-cycle FXU.
    IntAlu,
    /// Integer multiply, 1-cycle FXU (the paper models all FXU ops at 1 cycle).
    IntMul,
    /// Floating-point add/sub/convert, 2-cycle FPU.
    FpAdd,
    /// Floating-point multiply/divide, 2-cycle FPU.
    FpMul,
    /// Memory load through the data-cache interface (hit latency; misses are
    /// not modeled, as in the paper).
    Load,
    /// Memory store via the store buffer.
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Direct call (pushes a return address).
    Call,
    /// Indirect return.
    Return,
    /// No-operation (used by the padding optimizations of §4.1).
    Nop,
    /// Program halt; the trace executor restarts from the entry point.
    Halt,
}

impl OpClass {
    /// All operation classes.
    pub const ALL: [OpClass; 12] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::CondBranch,
        OpClass::Jump,
        OpClass::Call,
        OpClass::Return,
        OpClass::Nop,
        OpClass::Halt,
    ];

    /// Index of this class within [`OpClass::ALL`] — a stable dense key for
    /// per-class count arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 3,
            OpClass::Load => 4,
            OpClass::Store => 5,
            OpClass::CondBranch => 6,
            OpClass::Jump => 7,
            OpClass::Call => 8,
            OpClass::Return => 9,
            OpClass::Nop => 10,
            OpClass::Halt => 11,
        }
    }

    /// Returns the functional unit that executes this operation.
    ///
    /// `Nop` and `Halt` are dispatched to the FXU (they occupy an issue slot
    /// but do no work), matching how padding nops consume decoder bandwidth
    /// in the paper's pad-all/pad-trace study.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        match self {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Nop | OpClass::Halt => FuClass::Fxu,
            OpClass::FpAdd | OpClass::FpMul => FuClass::Fpu,
            OpClass::Load | OpClass::Store => FuClass::Mem,
            OpClass::CondBranch | OpClass::Jump | OpClass::Call | OpClass::Return => {
                FuClass::Branch
            }
        }
    }

    /// Returns the execution latency in cycles (Table 1 plus DESIGN.md §1 for
    /// the parameters the paper leaves unspecified).
    #[must_use]
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu
            | OpClass::IntMul
            | OpClass::Store
            | OpClass::CondBranch
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Return
            | OpClass::Nop
            | OpClass::Halt => 1,
            OpClass::FpAdd | OpClass::FpMul => 2,
            OpClass::Load => 2,
        }
    }

    /// Returns `true` for control-transfer instructions (anything the fetch
    /// unit must treat as a potential redirect).
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            OpClass::CondBranch | OpClass::Jump | OpClass::Call | OpClass::Return
        )
    }

    /// Returns `true` for control transfers that are *always* taken.
    #[must_use]
    pub fn is_unconditional(self) -> bool {
        matches!(self, OpClass::Jump | OpClass::Call | OpClass::Return)
    }

    /// Returns `true` if the instruction reads or writes memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Returns `true` for floating-point arithmetic.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul)
    }

    /// Short mnemonic used by the disassembler and trace dumps.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::CondBranch => "br",
            OpClass::Jump => "jmp",
            OpClass::Call => "call",
            OpClass::Return => "ret",
            OpClass::Nop => "nop",
            OpClass::Halt => "halt",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_ops_map_to_branch_unit() {
        for op in OpClass::ALL {
            if op.is_control() {
                assert_eq!(op.fu_class(), FuClass::Branch, "{op}");
            }
        }
    }

    #[test]
    fn fp_latency_is_two() {
        assert_eq!(OpClass::FpAdd.latency(), 2);
        assert_eq!(OpClass::FpMul.latency(), 2);
    }

    #[test]
    fn fxu_latency_is_one() {
        assert_eq!(OpClass::IntAlu.latency(), 1);
        assert_eq!(OpClass::IntMul.latency(), 1);
    }

    #[test]
    fn unconditional_implies_control() {
        for op in OpClass::ALL {
            if op.is_unconditional() {
                assert!(op.is_control(), "{op}");
            }
        }
    }

    #[test]
    fn cond_branch_is_not_unconditional() {
        assert!(OpClass::CondBranch.is_control());
        assert!(!OpClass::CondBranch.is_unconditional());
    }

    #[test]
    fn index_matches_all_order() {
        for (i, op) in OpClass::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{op}");
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }
}
