//! Small, deterministic pseudo-random number generators.
//!
//! Every stochastic decision in the reproduction (workload generation, branch
//! behaviour, input perturbation) flows through [`Pcg64`], a permuted
//! congruential generator with an explicit 64-bit seed. Keeping the RNG in the
//! repository (rather than depending on `rand`) pins the generated workloads
//! bit-for-bit across toolchain upgrades, which the experiment golden tests
//! rely on.
//!
//! # Examples
//!
//! ```
//! use fetchmech_isa::rng::Pcg64;
//!
//! let mut a = Pcg64::new(42);
//! let mut b = Pcg64::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 step, used for seeding and as a one-shot hash.
///
/// # Examples
///
/// ```
/// let h = fetchmech_isa::rng::splitmix64(1);
/// assert_ne!(h, fetchmech_isa::rng::splitmix64(2));
/// ```
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic 64-bit PRNG (xoshiro256** core seeded via SplitMix64).
///
/// The name reflects the role (a fast, statistically-solid simulation RNG),
/// not a promise of the PCG family algorithm; the core is xoshiro256**.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg64 {
    s: [u64; 4],
}

impl Pcg64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = splitmix64(x);
            *slot = x;
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
        }
        Self { s }
    }

    /// Derives an independent child generator from this seed and a stream id.
    ///
    /// Used to give each workload component (block sizes, branch biases,
    /// register assignment, …) its own stream so that changing one component
    /// does not perturb the others.
    #[must_use]
    pub fn stream(seed: u64, stream: u64) -> Self {
        Self::new(splitmix64(seed ^ splitmix64(stream)))
    }

    /// Returns the next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small spans used by the generators (< 2^32).
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// Returns a uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Picks one element of `choices` uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty.
    pub fn pick<'a, T>(&mut self, choices: &'a [T]) -> &'a T {
        assert!(!choices.is_empty(), "pick from empty slice");
        &choices[self.range_usize(0, choices.len())]
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to the weight. Zero-weight entries are never picked unless all weights
    /// are zero, in which case index 0 is returned.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or any weight is negative or non-finite.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "pick_weighted from empty slice");
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
                w
            })
            .sum();
        if total <= 0.0 {
            return 0;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }

    /// Samples a geometric-like trip count with the given mean (>= 1).
    ///
    /// Loop trip counts in the workload generators use this shape: mostly
    /// near the mean, occasionally longer, never zero.
    pub fn trip_count(&mut self, mean: f64) -> u64 {
        let mean = mean.max(1.0);
        if mean <= 1.0 {
            return 1;
        }
        // Geometric with success probability 1/mean, shifted to start at 1.
        let p = 1.0 / mean;
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let g = (u.ln() / (1.0 - p).ln()).floor() as u64;
        1 + g.min(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Pcg64::new(7);
        let mut b = Pcg64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "seeds 1 and 2 produced overlapping streams");
    }

    #[test]
    fn streams_are_independent() {
        let mut a = Pcg64::stream(9, 0);
        let mut b = Pcg64::stream(9, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = Pcg64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Pcg64::new(4);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_panics_on_empty() {
        Pcg64::new(0).range_u64(5, 5);
    }

    #[test]
    fn chance_matches_probability_roughly() {
        let mut r = Pcg64::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn pick_weighted_obeys_weights() {
        let mut r = Pcg64::new(6);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 3.0])] += 1;
        }
        assert!(counts[0] < counts[1] && counts[1] < counts[2]);
    }

    #[test]
    fn pick_weighted_all_zero_returns_first() {
        let mut r = Pcg64::new(6);
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), 0);
    }

    #[test]
    fn trip_count_mean_is_close() {
        let mut r = Pcg64::new(8);
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| r.trip_count(10.0)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean = {mean}");
    }

    #[test]
    fn trip_count_is_at_least_one() {
        let mut r = Pcg64::new(9);
        for _ in 0..1000 {
            assert!(r.trip_count(1.0) >= 1);
            assert!(r.trip_count(0.0) >= 1);
        }
    }
}
