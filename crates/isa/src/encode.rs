//! Fixed 32-bit instruction encoding.
//!
//! The paper's instruction set is "a simplified version of GCC's intermediate
//! code … encoded using a fixed, 32-bit format". This module provides that
//! format so laid-out programs can be rendered to a binary image (the cache
//! model operates on addresses, but the encoder pins down the geometry and
//! gives the test suite a strong roundtrip invariant).
//!
//! Formats (bit 31 = most significant):
//!
//! ```text
//! ALU/mem : [op:5][rd:6][rs1:6][rs2:6][mask:3][imm:6]
//! cond br : [op:5][rs1:6][rs2:6][mask:2][disp:13]   (word displacement)
//! jmp/call: [op:5][disp:27]                         (word displacement)
//! ret     : [op:5][rs1:6][0:21]
//! nop/halt: [op:5][0:27]
//! ```
//!
//! Register fields hold [`Reg::file_index`]; the `mask` bits record which of
//! rd/rs1/rs2 are present (body ops) or which sources are present (branches).

use std::fmt;

use crate::addr::Addr;
use crate::layout::{CtrlAttr, LaidInst};
use crate::op::OpClass;
use crate::reg::Reg;

const OPC_BITS: u32 = 5;
const BR_DISP_BITS: u32 = 13;
const JMP_DISP_BITS: u32 = 27;
const IMM_BITS: u32 = 6;

fn opcode(op: OpClass) -> u32 {
    match op {
        OpClass::IntAlu => 0,
        OpClass::IntMul => 1,
        OpClass::FpAdd => 2,
        OpClass::FpMul => 3,
        OpClass::Load => 4,
        OpClass::Store => 5,
        OpClass::CondBranch => 6,
        OpClass::Jump => 7,
        OpClass::Call => 8,
        OpClass::Return => 9,
        OpClass::Nop => 10,
        OpClass::Halt => 11,
    }
}

fn op_from_code(code: u32) -> Option<OpClass> {
    OpClass::ALL.into_iter().find(|&op| opcode(op) == code)
}

/// Errors from [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodeError {
    /// A branch displacement does not fit its field.
    DispOverflow {
        /// Instruction address.
        addr: Addr,
        /// Word displacement that overflowed.
        disp: i64,
        /// Field width in bits.
        bits: u32,
    },
    /// An immediate does not fit the 6-bit field.
    ImmOverflow {
        /// Instruction address.
        addr: Addr,
        /// The immediate.
        imm: i8,
    },
    /// A control instruction is missing its resolved target.
    MissingTarget(Addr),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::DispOverflow { addr, disp, bits } => {
                write!(f, "displacement {disp} at {addr} exceeds {bits} bits")
            }
            EncodeError::ImmOverflow { addr, imm } => {
                write!(f, "immediate {imm} at {addr} exceeds {IMM_BITS} bits")
            }
            EncodeError::MissingTarget(addr) => {
                write!(f, "control instruction at {addr} has no resolved target")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode field holds an unassigned value.
    BadOpcode(u32),
    /// A register field holds an out-of-range index.
    BadRegister(u32),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(c) => write!(f, "unassigned opcode {c}"),
            DecodeError::BadRegister(r) => write!(f, "register index {r} out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn fit_signed(value: i64, bits: u32) -> Option<u32> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if (min..=max).contains(&value) {
        Some((value as u32) & ((1u32 << bits) - 1))
    } else {
        None
    }
}

fn sign_extend(value: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((u64::from(value)) << shift) as i64) >> shift
}

fn reg_field(reg: Option<Reg>) -> u32 {
    reg.map_or(0, |r| r.file_index() as u32)
}

fn reg_from_field(field: u32) -> Result<Reg, DecodeError> {
    if field < 64 {
        Ok(Reg::from_file_index(field as usize))
    } else {
        Err(DecodeError::BadRegister(field))
    }
}

/// Encodes one laid-out instruction to its 32-bit machine word.
///
/// # Errors
///
/// Returns an [`EncodeError`] if a displacement or immediate overflows its
/// field, or a control instruction other than `ret` lacks a resolved target.
pub fn encode(inst: &LaidInst) -> Result<u32, EncodeError> {
    let op = opcode(inst.op) << (32 - OPC_BITS);
    match inst.op {
        OpClass::IntAlu
        | OpClass::IntMul
        | OpClass::FpAdd
        | OpClass::FpMul
        | OpClass::Load
        | OpClass::Store => {
            let mask = (u32::from(inst.dest.is_some()) << 2)
                | (u32::from(inst.srcs[0].is_some()) << 1)
                | u32::from(inst.srcs[1].is_some());
            let imm =
                fit_signed(i64::from(inst.imm), IMM_BITS).ok_or(EncodeError::ImmOverflow {
                    addr: inst.addr,
                    imm: inst.imm,
                })?;
            Ok(op
                | (reg_field(inst.dest) << 21)
                | (reg_field(inst.srcs[0]) << 15)
                | (reg_field(inst.srcs[1]) << 9)
                | (mask << IMM_BITS)
                | imm)
        }
        OpClass::CondBranch => {
            let target = ctrl_target(inst)?;
            let disp = target.word_index() as i64 - inst.addr.word_index() as i64;
            let disp_field = fit_signed(disp, BR_DISP_BITS).ok_or(EncodeError::DispOverflow {
                addr: inst.addr,
                disp,
                bits: BR_DISP_BITS,
            })?;
            let mask = (u32::from(inst.srcs[0].is_some()) << 1) | u32::from(inst.srcs[1].is_some());
            Ok(op
                | (reg_field(inst.srcs[0]) << 21)
                | (reg_field(inst.srcs[1]) << 15)
                | (mask << BR_DISP_BITS)
                | disp_field)
        }
        OpClass::Jump | OpClass::Call => {
            let target = ctrl_target(inst)?;
            let disp = target.word_index() as i64 - inst.addr.word_index() as i64;
            let disp_field = fit_signed(disp, JMP_DISP_BITS).ok_or(EncodeError::DispOverflow {
                addr: inst.addr,
                disp,
                bits: JMP_DISP_BITS,
            })?;
            Ok(op | disp_field)
        }
        OpClass::Return => Ok(op | (reg_field(inst.srcs[0]) << 21)),
        OpClass::Nop | OpClass::Halt => Ok(op),
    }
}

fn ctrl_target(inst: &LaidInst) -> Result<Addr, EncodeError> {
    inst.ctrl
        .and_then(|c| c.target)
        .ok_or(EncodeError::MissingTarget(inst.addr))
}

/// A decoded machine word: the fields recoverable from the binary alone.
///
/// Branch identity (`BranchId`), block membership, and the `halt` restart
/// target are layout/program-level metadata and are *not* present in the
/// encoding; [`decode`] leaves them `None`/default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decoded {
    /// Operation class.
    pub op: OpClass,
    /// Destination register.
    pub dest: Option<Reg>,
    /// Source registers.
    pub srcs: [Option<Reg>; 2],
    /// Immediate field (body ops only).
    pub imm: i8,
    /// Resolved control target (PC-relative displacements are applied against
    /// the provided instruction address).
    pub target: Option<Addr>,
}

/// Decodes a 32-bit machine word located at `addr`.
///
/// # Errors
///
/// Returns a [`DecodeError`] for unassigned opcodes or bad register fields.
pub fn decode(word: u32, addr: Addr) -> Result<Decoded, DecodeError> {
    let code = word >> (32 - OPC_BITS);
    let op = op_from_code(code).ok_or(DecodeError::BadOpcode(code))?;
    match op {
        OpClass::IntAlu
        | OpClass::IntMul
        | OpClass::FpAdd
        | OpClass::FpMul
        | OpClass::Load
        | OpClass::Store => {
            let mask = (word >> IMM_BITS) & 0b111;
            let dest = if mask & 0b100 != 0 {
                Some(reg_from_field((word >> 21) & 0x3f)?)
            } else {
                None
            };
            let s0 = if mask & 0b010 != 0 {
                Some(reg_from_field((word >> 15) & 0x3f)?)
            } else {
                None
            };
            let s1 = if mask & 0b001 != 0 {
                Some(reg_from_field((word >> 9) & 0x3f)?)
            } else {
                None
            };
            let imm = sign_extend(word & ((1 << IMM_BITS) - 1), IMM_BITS) as i8;
            Ok(Decoded {
                op,
                dest,
                srcs: [s0, s1],
                imm,
                target: None,
            })
        }
        OpClass::CondBranch => {
            let mask = (word >> BR_DISP_BITS) & 0b11;
            let s0 = if mask & 0b10 != 0 {
                Some(reg_from_field((word >> 21) & 0x3f)?)
            } else {
                None
            };
            let s1 = if mask & 0b01 != 0 {
                Some(reg_from_field((word >> 15) & 0x3f)?)
            } else {
                None
            };
            let disp = sign_extend(word & ((1 << BR_DISP_BITS) - 1), BR_DISP_BITS);
            let target = Addr::from_word_index((addr.word_index() as i64 + disp) as u64);
            Ok(Decoded {
                op,
                dest: None,
                srcs: [s0, s1],
                imm: 0,
                target: Some(target),
            })
        }
        OpClass::Jump | OpClass::Call => {
            let disp = sign_extend(word & ((1 << JMP_DISP_BITS) - 1), JMP_DISP_BITS);
            let target = Addr::from_word_index((addr.word_index() as i64 + disp) as u64);
            let dest = if op == OpClass::Call {
                Some(Reg::Int(31))
            } else {
                None
            };
            Ok(Decoded {
                op,
                dest,
                srcs: [None, None],
                imm: 0,
                target: Some(target),
            })
        }
        OpClass::Return => {
            let s0 = Some(reg_from_field((word >> 21) & 0x3f)?);
            Ok(Decoded {
                op,
                dest: None,
                srcs: [s0, None],
                imm: 0,
                target: None,
            })
        }
        OpClass::Nop | OpClass::Halt => Ok(Decoded {
            op,
            dest: None,
            srcs: [None, None],
            imm: 0,
            target: None,
        }),
    }
}

/// Encodes an entire laid-out code stream to machine words.
///
/// # Errors
///
/// Propagates the first [`EncodeError`] encountered.
pub fn encode_image(code: &[LaidInst]) -> Result<Vec<u32>, EncodeError> {
    code.iter().map(encode).collect()
}

/// Renders a laid-out instruction as assembly-like text (for debugging and
/// the example binaries).
#[must_use]
pub fn disasm(inst: &LaidInst) -> String {
    let mut s = format!("{}: {}", inst.addr, inst.op.mnemonic());
    if let Some(d) = inst.dest {
        s.push_str(&format!(" {d}"));
    }
    for src in inst.srcs.iter().flatten() {
        s.push_str(&format!(" {src}"));
    }
    if let Some(CtrlAttr {
        target: Some(t), ..
    }) = inst.ctrl
    {
        s.push_str(&format!(" -> {t}"));
    }
    if inst.imm != 0 {
        s.push_str(&format!(" #{}", inst.imm));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{BlockId, BranchId};

    fn laid(op: OpClass, addr: u64, target: Option<u64>) -> LaidInst {
        LaidInst {
            addr: Addr::new(addr),
            op,
            dest: None,
            srcs: [None, None],
            imm: 0,
            ctrl: if op.is_control() || op == OpClass::Halt {
                Some(CtrlAttr {
                    branch_id: (op == OpClass::CondBranch).then_some(BranchId(0)),
                    inverted: false,
                    target: target.map(Addr::new),
                })
            } else {
                None
            },
            block: BlockId(0),
        }
    }

    #[test]
    fn alu_roundtrip_with_regs_and_imm() {
        let mut i = laid(OpClass::IntAlu, 0x1000, None);
        i.dest = Some(Reg::int(5));
        i.srcs = [Some(Reg::int(6)), Some(Reg::fp(7))];
        i.imm = -3;
        let d = decode(encode(&i).expect("encode"), i.addr).expect("decode");
        assert_eq!(d.op, OpClass::IntAlu);
        assert_eq!(d.dest, i.dest);
        assert_eq!(d.srcs, i.srcs);
        assert_eq!(d.imm, -3);
    }

    #[test]
    fn branch_roundtrip_forward_and_backward() {
        for target in [0x1040u64, 0x0fc0] {
            let mut i = laid(OpClass::CondBranch, 0x1000, Some(target));
            i.srcs = [Some(Reg::int(1)), None];
            let d = decode(encode(&i).expect("encode"), i.addr).expect("decode");
            assert_eq!(d.target, Some(Addr::new(target)), "target {target:#x}");
            assert_eq!(d.srcs, i.srcs);
        }
    }

    #[test]
    fn jump_and_call_roundtrip() {
        for op in [OpClass::Jump, OpClass::Call] {
            let i = laid(op, 0x2000, Some(0x8000));
            let d = decode(encode(&i).expect("encode"), i.addr).expect("decode");
            assert_eq!(d.op, op);
            assert_eq!(d.target, Some(Addr::new(0x8000)));
        }
    }

    #[test]
    fn return_nop_halt_roundtrip() {
        let mut ret = laid(OpClass::Return, 0x100, None);
        ret.srcs = [Some(Reg::int(31)), None];
        let d = decode(encode(&ret).expect("encode"), ret.addr).expect("decode");
        assert_eq!(d.op, OpClass::Return);
        assert_eq!(d.srcs[0], Some(Reg::int(31)));
        for op in [OpClass::Nop, OpClass::Halt] {
            let i = laid(op, 0x100, (op == OpClass::Halt).then_some(0x0));
            let d = decode(encode(&i).expect("encode"), i.addr).expect("decode");
            assert_eq!(d.op, op);
        }
    }

    #[test]
    fn branch_disp_overflow_errors() {
        let i = laid(OpClass::CondBranch, 0x1000, Some(0x1000 + 4 * (1 << 13)));
        assert!(matches!(encode(&i), Err(EncodeError::DispOverflow { .. })));
    }

    #[test]
    fn missing_target_errors() {
        let i = laid(OpClass::Jump, 0x1000, None);
        assert_eq!(
            encode(&i),
            Err(EncodeError::MissingTarget(Addr::new(0x1000)))
        );
    }

    #[test]
    fn bad_opcode_errors() {
        let word = 31u32 << 27;
        assert_eq!(decode(word, Addr::new(0)), Err(DecodeError::BadOpcode(31)));
    }

    #[test]
    fn disasm_is_nonempty_and_shows_target() {
        let i = laid(OpClass::Jump, 0x1000, Some(0x2000));
        let s = disasm(&i);
        assert!(s.contains("jmp"));
        assert!(s.contains("0x00002000"));
    }
}
