//! Property tests for code layout over randomly-generated programs: address
//! assignment, target resolution, padding alignment, jump elision, and
//! whole-image encoding roundtrips.

use std::collections::HashSet;

use fetchmech_isa::{
    decode, encode_image, Addr, BlockId, Inst, Layout, LayoutOptions, OpClass, PadMode, Program,
    ProgramBuilder, Reg, Terminator, WORD_BYTES,
};
use proptest::prelude::*;

/// Builds a random (but always valid) single-function program: a chain of
/// blocks with random bodies, whose terminators reference random blocks in
/// the same function.
fn arb_program() -> impl Strategy<Value = Program> {
    (
        2usize..24,                                                     // blocks
        proptest::collection::vec(0usize..6, 2..24),                    // body lengths
        proptest::collection::vec((0u8..5, 0u32..24, 0u32..24), 2..24), // terminators
    )
        .prop_map(|(n, lens, terms)| {
            let mut b = ProgramBuilder::new();
            let f = b.begin_func();
            let blocks: Vec<BlockId> = (0..n).map(|_| b.new_block(f)).collect();
            for (i, &blk) in blocks.iter().enumerate() {
                let len = lens[i % lens.len()];
                for j in 0..len {
                    let op = if j % 3 == 0 {
                        OpClass::Load
                    } else {
                        OpClass::IntAlu
                    };
                    b.push_inst(
                        blk,
                        Inst::new(op, Some(Reg::int(1)), [Some(Reg::int(2)), None]),
                    );
                }
                let (kind, x, y) = terms[i % terms.len()];
                let pick = |v: u32| blocks[(v as usize) % n];
                if i + 1 == n {
                    // Last block always halts so the program terminates.
                    b.set_terminator(blk, Terminator::Halt);
                    continue;
                }
                match kind {
                    0 => b.set_terminator(blk, Terminator::FallThrough { next: pick(x) }),
                    1 => {
                        b.set_cond_branch(blk, [Some(Reg::int(1)), None], pick(x), pick(y));
                    }
                    2 => b.set_terminator(blk, Terminator::Jump { target: pick(x) }),
                    3 => b.set_terminator(blk, Terminator::Halt),
                    _ => b.set_terminator(blk, Terminator::FallThrough { next: pick(y) }),
                }
            }
            b.set_entry(blocks[0]);
            b.finish().expect("constructed program is valid")
        })
}

/// A random permutation order for a program with `n` blocks.
fn arb_order(n: usize) -> impl Strategy<Value = Vec<BlockId>> {
    Just((0..n as u32).map(BlockId).collect::<Vec<_>>()).prop_shuffle()
}

proptest! {
    /// Layout addresses are contiguous words starting at the base, in every
    /// order and padding mode.
    #[test]
    fn addresses_are_contiguous(
        program in arb_program(),
        pad_all in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let orders = {
            let n = program.num_blocks();
            let mut order: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
            // Cheap deterministic shuffle from the seed.
            let mut s = seed;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (s % (i as u64 + 1)) as usize);
            }
            order
        };
        let mut opts = LayoutOptions::new(16);
        if pad_all {
            opts = opts.with_pad(PadMode::PadAll);
        }
        let layout = Layout::new(&program, &orders, opts).expect("valid order");
        for (i, inst) in layout.code().iter().enumerate() {
            prop_assert_eq!(inst.addr, layout.options().base.add_words(i as u64));
            prop_assert_eq!(layout.index_of(inst.addr), Some(i));
        }
    }

    /// Every control target resolves to the laid-out address of its block,
    /// regardless of block order.
    #[test]
    fn targets_resolve_to_block_addresses(program in arb_program(), seed in any::<u64>()) {
        let n = program.num_blocks();
        let mut order: Vec<BlockId> = (0..n as u32).map(BlockId).collect();
        let mut s = seed | 1;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let layout = Layout::new(&program, &order, LayoutOptions::new(16)).expect("valid order");
        for inst in layout.code() {
            if inst.op == OpClass::CondBranch {
                let target = inst.ctrl.expect("ctrl").target.expect("target");
                let block = match program.block(inst.block).terminator {
                    Terminator::CondBranch { taken, .. } => taken,
                    _ => unreachable!("cond branch from non-branch terminator"),
                };
                prop_assert_eq!(target, layout.block_addr(block));
            }
            if inst.op == OpClass::Halt {
                prop_assert_eq!(inst.ctrl.expect("ctrl").target, Some(layout.entry_addr()));
            }
        }
    }

    /// Pad-all aligns every block to a cache-block boundary, and the nop
    /// count matches the alignment gaps exactly.
    #[test]
    fn pad_all_alignment_is_exact(program in arb_program()) {
        let bs = 32u64;
        let opts = LayoutOptions::new(bs).with_pad(PadMode::PadAll);
        let layout = Layout::natural(&program, opts).expect("layout");
        for b in 0..program.num_blocks() as u32 {
            prop_assert_eq!(layout.block_addr(BlockId(b)).byte() % bs, 0);
        }
        let nops = layout.code().iter().filter(|i| i.op == OpClass::Nop).count();
        prop_assert_eq!(nops, layout.stats().pad_nops);
    }

    /// Pad-trace pads exactly the marked blocks (the following block starts
    /// aligned) and no nops appear anywhere else.
    #[test]
    fn pad_trace_pads_only_marked_blocks(program in arb_program(), mask in any::<u32>()) {
        let bs = 16u64;
        let ends: HashSet<BlockId> = (0..program.num_blocks() as u32)
            .filter(|b| mask & (1 << (b % 32)) != 0)
            .map(BlockId)
            .collect();
        let opts = LayoutOptions::new(bs).with_pad(PadMode::PadTrace(ends.clone()));
        let layout = Layout::natural(&program, opts).expect("layout");
        let order = layout.order().to_vec();
        for w in order.windows(2) {
            if ends.contains(&w[0]) {
                prop_assert_eq!(
                    layout.block_addr(w[1]).byte() % bs,
                    0,
                    "block after marked {} must be aligned",
                    w[0]
                );
            }
        }
        // Nops belong only to marked blocks.
        for inst in layout.code() {
            if inst.op == OpClass::Nop {
                prop_assert!(ends.contains(&inst.block), "stray nop after {}", inst.block);
            }
        }
    }

    /// The whole laid-out image encodes, and decoding every word recovers
    /// the op, operands, and control targets.
    #[test]
    fn whole_image_encoding_roundtrips(program in arb_program()) {
        let layout = Layout::natural(&program, LayoutOptions::new(16)).expect("layout");
        let words = encode_image(layout.code()).expect("encodable image");
        prop_assert_eq!(words.len(), layout.code().len());
        for (inst, word) in layout.code().iter().zip(&words) {
            let d = decode(*word, inst.addr).expect("decodable");
            prop_assert_eq!(d.op, inst.op);
            if !inst.op.is_control() && inst.op != OpClass::Halt {
                prop_assert_eq!(d.dest, inst.dest);
                prop_assert_eq!(d.srcs, inst.srcs);
            }
            if matches!(inst.op, OpClass::CondBranch | OpClass::Jump | OpClass::Call) {
                prop_assert_eq!(d.target, inst.ctrl.expect("ctrl").target);
            }
        }
    }

    /// Elision accounting: total laid instructions equal body instructions
    /// plus materialized terminators plus padding.
    #[test]
    fn size_accounting_is_exact(program in arb_program()) {
        let layout = Layout::natural(&program, LayoutOptions::new(16)).expect("layout");
        let bodies: usize = program.blocks().iter().map(|b| b.insts.len()).sum();
        let ctrl = layout
            .code()
            .iter()
            .filter(|i| i.op.is_control() || i.op == OpClass::Halt)
            .count();
        prop_assert_eq!(layout.code().len(), bodies + ctrl + layout.stats().pad_nops);
        // Word-size identity.
        prop_assert_eq!(layout.code_bytes(), layout.code().len() as u64 * WORD_BYTES);
        // The upper bound from the program is indeed an upper bound.
        prop_assert!(layout.code().len() <= program.static_inst_upper_bound());
    }

    /// `index_of` is the exact inverse of instruction addresses and rejects
    /// everything else.
    #[test]
    fn index_of_is_partial_inverse(program in arb_program(), probe in 0u64..(1 << 18)) {
        let layout = Layout::natural(&program, LayoutOptions::new(16)).expect("layout");
        let addr = Addr::new(probe);
        match layout.index_of(addr) {
            Some(i) => prop_assert_eq!(layout.code()[i].addr, addr),
            None => {
                let in_range = addr >= layout.options().base
                    && addr.byte() < layout.options().base.byte() + layout.code_bytes();
                let aligned = addr.byte().is_multiple_of(WORD_BYTES);
                prop_assert!(!(in_range && aligned), "in-range aligned {addr} must map");
            }
        }
    }
}

#[test]
fn arb_order_strategy_is_exercised() {
    // Keep the helper honest (and used) with a single plain test.
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    let tree = arb_order(5).new_tree(&mut runner).expect("tree");
    let order = tree.current();
    let set: HashSet<u32> = order.iter().map(|b| b.0).collect();
    assert_eq!(set.len(), 5);
}
