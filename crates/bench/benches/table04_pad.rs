//! Table 4 bench: pad-all / pad-trace layout expansion (pure layout work).

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::compiler::{expansion, layout_pad_all, reorder, Profile, TraceSelectConfig};
use fetchmech::workloads::{suite, InputId};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table04_pad");
    let w = suite::benchmark("bison").expect("known benchmark");
    let profile = Profile::collect(&w, &InputId::PROFILE, 5_000);
    let r = reorder(&w.program, &profile, &TraceSelectConfig::default());
    for bs in [16u64, 64] {
        g.bench_function(format!("pad-all/{bs}B"), |b| {
            b.iter(|| layout_pad_all(&w.program, bs).expect("layout").stats().pad_pct())
        });
        g.bench_function(format!("expansion/{bs}B"), |b| {
            b.iter(|| expansion(&w.program, &r, bs).expect("layouts"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
