//! Figure 13 bench: the sequential scheme under the padding layouts.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::compiler::{layout_pad_all, reorder, Profile, TraceSelectConfig};
use fetchmech::pipeline::{MachineModel, TraceCursor};
use fetchmech::workloads::{suite, InputId, Workload};
use fetchmech::{simulate, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_padding");
    g.sample_size(10);
    let machine = MachineModel::p14();
    let w = suite::benchmark("flex").expect("known benchmark");
    let profile = Profile::collect(&w, &InputId::PROFILE, 5_000);
    let r = reorder(&w.program, &profile, &TraceSelectConfig::default());

    let pad_all = layout_pad_all(&w.program, machine.block_bytes).expect("layout");
    let trace_all: TraceCursor = w.executor(&pad_all, InputId::TEST, 10_000).collect();
    g.bench_function("sequential/pad-all", |b| {
        b.iter(|| simulate(&machine, SchemeKind::Sequential, trace_all.clone()).ipc())
    });

    let pad_trace = r.layout_pad_trace(machine.block_bytes).expect("layout");
    let rw = Workload { spec: w.spec.clone(), program: r.program.clone(), behaviors: w.behaviors.clone() };
    let trace_tr: TraceCursor = rw.executor(&pad_trace, InputId::TEST, 10_000).collect();
    g.bench_function("sequential/pad-trace", |b| {
        b.iter(|| simulate(&machine, SchemeKind::Sequential, trace_tr.clone()).ipc())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
