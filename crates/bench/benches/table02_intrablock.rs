//! Table 2 bench: dynamic intra-block branch classification across the
//! three block geometries.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::isa::{Layout, LayoutOptions, TraceStats};
use fetchmech::workloads::{suite, InputId};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table02_intrablock");
    let w = suite::benchmark("eqntott").expect("known benchmark");
    for bs in [16u64, 32, 64] {
        let layout = Layout::natural(&w.program, LayoutOptions::new(bs)).expect("layout");
        g.bench_function(format!("eqntott/{bs}B"), |b| {
            b.iter(|| {
                let mut stats = TraceStats::new();
                for i in w.executor(&layout, InputId::TEST, 10_000) {
                    stats.observe(&i, bs);
                }
                stats.intra_block_pct()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
