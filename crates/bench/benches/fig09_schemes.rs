//! Figure 9 bench: one full pipeline simulation per fetch scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::{MachineModel, TraceCursor};
use fetchmech::workloads::{suite, InputId};
use fetchmech::{simulate, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_schemes");
    g.sample_size(10);
    for machine in [MachineModel::p14(), MachineModel::p112()] {
        let w = suite::benchmark("espresso").expect("known benchmark");
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
        let trace: TraceCursor = w.executor(&layout, InputId::TEST, 10_000).collect();
        for scheme in SchemeKind::ALL {
            g.bench_function(format!("{}/{scheme}", machine.name), |b| {
                b.iter(|| simulate(&machine, scheme, trace.clone()).ipc())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
