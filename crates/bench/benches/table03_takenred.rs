//! Table 3 bench: taken-branch accounting on natural vs reordered layouts.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::compiler::{reorder, Profile, TraceSelectConfig};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::workloads::{suite, InputId, Workload};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table03_takenred");
    let w = suite::benchmark("sc").expect("known benchmark");
    let natural = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
    let profile = Profile::collect(&w, &InputId::PROFILE, 5_000);
    let r = reorder(&w.program, &profile, &TraceSelectConfig::default());
    let reordered = r.layout(16).expect("layout");
    let rw = Workload { spec: w.spec.clone(), program: r.program.clone(), behaviors: w.behaviors.clone() };
    g.bench_function("natural", |b| {
        b.iter(|| {
            w.executor(&natural, InputId::TEST, 10_000)
                .filter(fetchmech::isa::DynInst::is_taken_control)
                .count()
        })
    });
    g.bench_function("reordered", |b| {
        b.iter(|| {
            rw.executor(&reordered, InputId::TEST, 10_000)
                .filter(fetchmech::isa::DynInst::is_taken_control)
                .count()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
