//! Figure 11 bench: the collapsing buffer at two- versus three-cycle fetch
//! misprediction penalties.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::{MachineModel, TraceCursor};
use fetchmech::workloads::{suite, InputId};
use fetchmech::{simulate, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_shifter");
    g.sample_size(10);
    let w = suite::benchmark("li").expect("known benchmark");
    for penalty in [2u32, 3] {
        let machine = MachineModel::p112().with_fetch_penalty(penalty);
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
        let trace: TraceCursor = w.executor(&layout, InputId::TEST, 10_000).collect();
        g.bench_function(format!("collapsing/penalty{penalty}"), |b| {
            b.iter(|| {
                simulate(&machine, SchemeKind::CollapsingBuffer, trace.clone()).ipc()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
