//! Figure 3 bench: the sequential lower bound and perfect upper bound —
//! one simulation per scheme per class representative.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::{MachineModel, TraceCursor};
use fetchmech::workloads::{suite, InputId};
use fetchmech::{simulate, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_bounds");
    g.sample_size(10);
    let machine = MachineModel::p14();
    for name in ["compress", "tomcatv"] {
        let w = suite::benchmark(name).expect("known benchmark");
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
        let trace: TraceCursor = w.executor(&layout, InputId::TEST, 10_000).collect();
        for scheme in [SchemeKind::Sequential, SchemeKind::Perfect] {
            g.bench_function(format!("{name}/{scheme}"), |b| {
                b.iter(|| simulate(&machine, scheme, trace.clone()).ipc())
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
