//! Figure 12 bench: the profile -> trace-select -> reorder pipeline and a
//! simulation on the reordered layout.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::compiler::{reorder, Profile, TraceSelectConfig};
use fetchmech::pipeline::{MachineModel, TraceCursor};
use fetchmech::workloads::{suite, InputId, Workload};
use fetchmech::{simulate, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_reorder");
    g.sample_size(10);
    let w = suite::benchmark("compress").expect("known benchmark");
    g.bench_function("profile", |b| {
        b.iter(|| Profile::collect(&w, &InputId::PROFILE, 2_000))
    });
    let profile = Profile::collect(&w, &InputId::PROFILE, 5_000);
    g.bench_function("reorder", |b| {
        b.iter(|| reorder(&w.program, &profile, &TraceSelectConfig::default()))
    });
    let r = reorder(&w.program, &profile, &TraceSelectConfig::default());
    let machine = MachineModel::p14();
    let layout = r.layout(machine.block_bytes).expect("layout");
    let rw = Workload { spec: w.spec.clone(), program: r.program.clone(), behaviors: w.behaviors.clone() };
    let trace: TraceCursor = rw.executor(&layout, InputId::TEST, 10_000).collect();
    g.bench_function("simulate-reordered", |b| {
        b.iter(|| simulate(&machine, SchemeKind::InterleavedSequential, trace.clone()).ipc())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
