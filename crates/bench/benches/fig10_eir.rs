//! Figure 10 bench: fetch-only EIR measurement per scheme.

use criterion::{criterion_group, criterion_main, Criterion};
use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::{MachineModel, TraceCursor};
use fetchmech::sim::measure_eir;
use fetchmech::workloads::{suite, InputId};
use fetchmech::SchemeKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_eir");
    let machine = MachineModel::p112();
    let w = suite::benchmark("gcc").expect("known benchmark");
    let layout =
        Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
    let trace: TraceCursor = w.executor(&layout, InputId::TEST, 10_000).collect();
    for scheme in SchemeKind::ALL {
        g.bench_function(scheme.name(), |b| {
            b.iter(|| measure_eir(&machine, scheme, trace.clone()).eir())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
