//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p fetchmech-bench --bin report -- [--quick] [EXPERIMENT...]
//! ```
//!
//! With no experiment names, everything runs in paper order. Valid names:
//! `machines`, `fig3`, `table2`, `fig9`, `fig10`, `fig11`, `fig12`,
//! `table3`, `table4`, `fig13`.

use std::process::ExitCode;

use fetchmech::experiments::{
    Ablations, ExpConfig, ExtPredictors, Fig10, Fig11, Fig12, Fig13, Fig3, Fig9, Lab, Table2,
    Table3, Table4,
};
use fetchmech::pipeline::MachineModel;

const ALL: [&str; 12] = [
    "machines", "fig3", "table2", "fig9", "fig10", "fig11", "fig12", "table3", "table4", "fig13",
    "predictors", "ablations",
];

fn main() -> ExitCode {
    let mut quick = false;
    let mut wanted: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            "--help" | "-h" => {
                eprintln!("usage: report [--quick] [{}]", ALL.join("|"));
                return ExitCode::SUCCESS;
            }
            name if ALL.contains(&name) => wanted.push(name.to_owned()),
            other => {
                eprintln!("unknown experiment {other:?}; valid: {}", ALL.join(", "));
                return ExitCode::FAILURE;
            }
        }
    }
    if wanted.is_empty() {
        wanted = ALL.iter().map(|s| (*s).to_owned()).collect();
    }
    let cfg = if quick { ExpConfig::quick() } else { ExpConfig::full() };
    let lab = Lab::new(cfg);
    eprintln!(
        "# fetchmech report ({} mode: {} insts/run, {} insts/profile-input, {} worker threads)",
        if quick { "quick" } else { "full" },
        cfg.trace_len,
        cfg.profile_len,
        lab.runner().threads()
    );
    for name in wanted {
        eprintln!("# running {name} ...");
        match name.as_str() {
            "machines" => {
                println!("Table 1: machine models");
                for m in MachineModel::paper_models() {
                    println!("  {m}");
                }
                println!("\nFigure 6/8 hardware costs (per machine's instructions-per-block):");
                for m in MachineModel::paper_models() {
                    println!("  {} (k = {}):", m.name, m.insts_per_block());
                    for s in fetchmech::all_structures(m.insts_per_block()) {
                        println!("    {s}");
                    }
                }
                println!();
            }
            "fig3" => println!("{}", Fig3::run(&lab)),
            "table2" => println!("{}", Table2::run(&lab)),
            "fig9" => println!("{}", Fig9::run(&lab)),
            "fig10" => println!("{}", Fig10::run(&lab)),
            "fig11" => println!("{}", Fig11::run(&lab)),
            "fig12" => println!("{}", Fig12::run(&lab)),
            "table3" => println!("{}", Table3::run(&lab)),
            "table4" => println!("{}", Table4::run(&lab)),
            "fig13" => println!("{}", Fig13::run(&lab)),
            "predictors" => println!("{}", ExtPredictors::run(&lab)),
            "ablations" => println!("{}", Ablations::run(&lab)),
            _ => unreachable!("validated above"),
        }
    }
    let stats = lab.cache_stats();
    eprintln!(
        "# shared caches: {} streams built / {} hits, {} traces generated / {} hits, \
         {} layouts built / {} hits, {} profiles collected, {} reorderings",
        stats.stream_builds,
        stats.stream_hits,
        stats.trace_generations,
        stats.trace_hits,
        stats.layout_builds,
        stats.layout_hits,
        stats.profile_collections,
        stats.reorder_builds
    );
    ExitCode::SUCCESS
}
