//! # fetchmech-bench
//!
//! The benchmark harness for the fetchmech reproduction:
//!
//! * the [`report`](../report/index.html) binary (`cargo run -p
//!   fetchmech-bench --bin report`) regenerates every table and figure of
//!   the paper as text, and
//! * the criterion benches (`cargo bench -p fetchmech-bench`) time each
//!   experiment's building blocks on reduced configurations — one bench
//!   group per table/figure.

#![warn(missing_docs)]

use fetchmech::experiments::{ExpConfig, Lab};

/// A reduced configuration for criterion benches: long enough to exercise
/// every code path, short enough to keep `cargo bench` minutes-scale.
#[must_use]
pub fn bench_config() -> ExpConfig {
    ExpConfig { trace_len: 10_000, profile_len: 5_000 }
}

/// A lab on the bench configuration.
#[must_use]
pub fn bench_lab() -> Lab {
    Lab::new(bench_config())
}
