//! The block-stream differential oracle at grid scale.
//!
//! The fast path ([`simulate`]/[`measure_eir`] over an `Arc<BlockStream>`)
//! must be *bit-identical* to the per-instruction reference path on every
//! cell the experiment drivers run. In debug builds the simulator already
//! self-checks each block-stream run against the sanitized oracle; this test
//! additionally pins the equivalence in release builds (where the internal
//! check compiles out and the perf gate runs) by comparing whole
//! `SimResult`s and `EirResult`s across the full fifteen-benchmark suite on
//! all five schemes.
//!
//! The streams are generated *natively* (`Workload::block_stream`, the
//! production path the [`Lab`](fetchmech::experiments::Lab) cache uses), not
//! re-encoded from the materialized trace, so this also exercises the
//! generator's template interning end to end.

use std::sync::Arc;

use fetchmech::isa::{BlockStream, Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{suite, InputId, Workload};
use fetchmech::{measure_eir, simulate, SchemeKind};

const LEN: u64 = 2_000;

fn check_bench(machine: &MachineModel, w: &Workload) {
    let layout = Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes))
        .unwrap_or_else(|e| panic!("{}: layout failed: {e:?}", w.spec.name));
    let trace: Vec<_> = w.executor(&layout, InputId::TEST, LEN).collect();
    let stream = Arc::new(w.block_stream(&layout, InputId::TEST, LEN));
    assert_eq!(
        stream.total_insts(),
        LEN,
        "{}: stream length mismatch",
        w.spec.name
    );
    // The native generator must intern exactly the instructions the
    // executor emits — byte-identical materialization.
    assert_eq!(
        stream.materialize(),
        trace,
        "{}: native stream materializes differently from the executor",
        w.spec.name
    );
    let from_trace = BlockStream::from_insts(&trace);
    for scheme in SchemeKind::ALL {
        let reference = simulate(machine, scheme, trace.clone());
        let fast = simulate(machine, scheme, Arc::clone(&stream));
        assert_eq!(
            reference, fast,
            "{}/{scheme}/{}: block-stream simulate diverged",
            w.spec.name, machine.name
        );
        let reencoded = simulate(machine, scheme, from_trace.clone());
        assert_eq!(
            reference, reencoded,
            "{}/{scheme}/{}: re-encoded stream simulate diverged",
            w.spec.name, machine.name
        );
        let eir_reference = measure_eir(machine, scheme, trace.clone());
        let eir_fast = measure_eir(machine, scheme, Arc::clone(&stream));
        assert_eq!(
            eir_reference, eir_fast,
            "{}/{scheme}/{}: block-stream EIR diverged",
            w.spec.name, machine.name
        );
    }
}

/// Every benchmark, every scheme, on the narrow machine.
#[test]
fn full_suite_grid_is_bit_identical_on_p14() {
    let machine = MachineModel::p14();
    for w in suite::full_suite() {
        check_bench(&machine, &w);
    }
}

/// A representative subset on the widest machine (64 B blocks, 12-issue),
/// where packets span more blocks and the run-length walk takes its longest
/// chunks.
#[test]
fn wide_machine_cells_are_bit_identical_on_p112() {
    let machine = MachineModel::p112();
    for name in ["compress", "gcc", "tomcatv"] {
        let w = suite::benchmark(name).expect("known benchmark");
        check_bench(&machine, &w);
    }
}
