//! Differential oracle for the static fetch-geometry EIR bound: for every
//! (workload, scheme, layout) cell of the EXPERIMENTS.md grid, the EIR the
//! cycle simulator measures must never exceed the bound
//! `fetchmech_analysis::geometry` derives from the program + layout +
//! machine alone (`sanitize.static_bound`).
//!
//! The companion mutation tests corrupt the geometry model and check the
//! rule actually fires — the oracle would be vacuous if the bound were
//! simply "infinite".

use fetchmech::experiments::{ExpConfig, Lab, LayoutVariant};
use fetchmech::sanitize::{measure_eir_checked, verify_static_bound};
use fetchmech::sim::EirResult;
use fetchmech::SchemeKind;
use fetchmech_analysis::analyze_geometry;
use fetchmech_analysis::sanitize::{check_static_bound, RULE_STATIC_BOUND};
use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::suite;

/// Short traces keep the debug-build sanitizer affordable; the bound is
/// sound for any length, so short traces lose no checking power.
fn lab() -> Lab {
    Lab::new(ExpConfig {
        trace_len: 6_000,
        profile_len: 10_000,
    })
}

fn measure_cells(
    lab: &Lab,
    machine: &MachineModel,
    bench: &'static str,
    variant: LayoutVariant,
) -> Vec<EirResult> {
    let trace = lab.test_trace(bench, variant, machine.block_bytes);
    SchemeKind::ALL
        .into_iter()
        .map(|scheme| {
            let (r, diags) = measure_eir_checked(machine, scheme, &trace);
            assert!(
                !fetchmech_analysis::has_errors(&diags),
                "{bench}/{variant:?}/{scheme}: sanitizer errors:\n{}",
                fetchmech_analysis::report_human(&diags)
            );
            r
        })
        .collect()
}

/// Every cell of the full grid at P14: measured EIR <= static bound.
#[test]
fn p14_full_grid_respects_static_bound() {
    let lab = lab();
    let machine = MachineModel::p14();
    for &bench in suite::INT_NAMES.iter().chain(suite::FP_NAMES.iter()) {
        for variant in LayoutVariant::ALL {
            let workload = lab.workload(bench, variant);
            let layout = lab.layout(bench, variant, machine.block_bytes);
            let eirs = measure_cells(&lab, &machine, bench, variant);
            let diags = verify_static_bound(
                &machine,
                &format!("{bench}/{variant:?}"),
                &workload.program,
                &layout,
                &eirs,
            );
            assert!(
                diags.is_empty(),
                "{bench}/{variant:?}: static bound violated:\n{}",
                fetchmech_analysis::report_human(&diags)
            );
        }
    }
}

/// Spot checks at the wider machines: the bound scales with issue rate,
/// block size, and speculation depth.
#[test]
fn wider_machines_respect_static_bound() {
    let lab = lab();
    for machine in [MachineModel::p18(), MachineModel::p112()] {
        for bench in ["compress", "gcc", "tomcatv"] {
            for variant in [LayoutVariant::Natural, LayoutVariant::PadTrace] {
                let workload = lab.workload(bench, variant);
                let layout = lab.layout(bench, variant, machine.block_bytes);
                let eirs = measure_cells(&lab, &machine, bench, variant);
                let diags = verify_static_bound(
                    &machine,
                    &format!("{bench}/{variant:?}"),
                    &workload.program,
                    &layout,
                    &eirs,
                );
                assert!(
                    diags.is_empty(),
                    "{}/{bench}/{variant:?}: static bound violated:\n{}",
                    machine.name,
                    fetchmech_analysis::report_human(&diags)
                );
            }
        }
    }
}

/// Mutation: a geometry model that under-reports the bound (here: scaled to
/// a quarter) must be caught by `sanitize.static_bound` for every scheme
/// that actually delivers — the oracle is not vacuous.
#[test]
fn mutation_scaled_down_bound_fires_static_bound_rule() {
    let lab = lab();
    let machine = MachineModel::p14();
    let layout = lab.layout("compress", LayoutVariant::Natural, machine.block_bytes);
    let workload = lab.workload("compress", LayoutVariant::Natural);
    let eirs = measure_cells(&lab, &machine, "compress", LayoutVariant::Natural);

    let report = analyze_geometry(&workload.program, &layout, &machine);
    let cells: Vec<(SchemeKind, f64, f64)> = eirs
        .iter()
        .map(|r| {
            let bound = report.scheme(r.scheme).eir_bound / 4.0;
            (r.scheme, r.eir(), bound)
        })
        .collect();
    let diags = check_static_bound("compress[mutated]", &cells, 1e-9);
    // Every scheme sustains EIR > bound/4 = 1.0 on this workload.
    assert_eq!(
        diags.len(),
        SchemeKind::ALL.len(),
        "expected every scheme to trip the scaled-down bound:\n{}",
        fetchmech_analysis::report_human(&diags)
    );
    assert!(diags.iter().all(|d| d.rule_id == RULE_STATIC_BOUND));
}

/// Mutation: a fetch unit that over-delivers (here: measured EIRs inflated
/// past the bound) is caught, and only by the static-bound rule.
#[test]
fn mutation_inflated_measurement_fires_static_bound_rule() {
    let lab = lab();
    let machine = MachineModel::p14();
    let layout = lab.layout("eqntott", LayoutVariant::Natural, machine.block_bytes);
    let workload = lab.workload("eqntott", LayoutVariant::Natural);
    let report = analyze_geometry(&workload.program, &layout, &machine);

    let cells: Vec<(SchemeKind, f64, f64)> = SchemeKind::ALL
        .into_iter()
        .map(|s| {
            let bound = report.scheme(s).eir_bound;
            (s, bound + 0.5, bound) // "delivered half an instruction per
                                    // cycle more than physically possible"
        })
        .collect();
    let diags = check_static_bound("eqntott[mutated]", &cells, 1e-9);
    assert_eq!(diags.len(), SchemeKind::ALL.len());
    assert!(diags.iter().all(|d| d.rule_id == RULE_STATIC_BOUND));

    // And the unmutated cells stay clean (negative control).
    let clean: Vec<(SchemeKind, f64, f64)> = SchemeKind::ALL
        .into_iter()
        .map(|s| {
            let bound = report.scheme(s).eir_bound;
            (s, bound, bound)
        })
        .collect();
    assert!(check_static_bound("eqntott[clean]", &clean, 1e-9).is_empty());
}
