//! Property tests for the block-stream fast path: on *randomized* control-
//! flow graphs (not just the calibrated suite), the run-length stream
//! representation must simulate bit-identically to the per-instruction
//! trace it encodes.
//!
//! Each case perturbs a workload spec across the structural knobs that
//! stress packet formation — block lengths, hammock/diamond/loop mix, call
//! density — generates the program, and runs one (machine, scheme) cell
//! both ways. The grid test (`block_stream_oracle.rs`) covers the curated
//! suite exhaustively; this one hunts for CFG shapes the suite does not
//! contain.

use std::sync::Arc;

use fetchmech::isa::{Layout, LayoutOptions};
use fetchmech::pipeline::MachineModel;
use fetchmech::workloads::{InputId, Workload, WorkloadSpec};
use fetchmech::{measure_eir, simulate, SchemeKind};
use proptest::prelude::*;

const LEN: u64 = 1_200;

#[allow(clippy::too_many_arguments)]
fn build_spec(
    seed: u64,
    fp: bool,
    funcs: usize,
    block_hi: usize,
    hammock_prob: f64,
    diamond_prob: f64,
    loop_prob: f64,
    call_prob: f64,
) -> WorkloadSpec {
    let mut spec = if fp {
        WorkloadSpec::base_fp("prop-fp", seed)
    } else {
        WorkloadSpec::base_int("prop-int", seed)
    };
    spec.funcs = funcs;
    spec.block_len = (1, block_hi);
    spec.hammock_prob = hammock_prob;
    spec.diamond_prob = diamond_prob;
    spec.loop_prob = loop_prob;
    spec.call_prob = call_prob;
    spec
}

fn arb_spec() -> impl Strategy<Value = WorkloadSpec> {
    (
        1u64..1_000_000,
        any::<bool>(),
        1usize..6,
        2usize..15,
        // Raw segment-kind weights, normalized below so the probabilities
        // sum to `total` (the generator requires a sum <= 1).
        (0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0, 0.01f64..1.0),
        0.2f64..0.9,
    )
        .prop_map(|(seed, fp, funcs, block_hi, (ham, dia, lp, call), total)| {
            let sum = ham + dia + lp + call;
            let scale = total / sum;
            build_spec(
                seed,
                fp,
                funcs,
                block_hi,
                ham * scale,
                dia * scale,
                lp * scale,
                call * scale,
            )
        })
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(48))]

    /// `simulate` and `measure_eir` agree between the per-instruction and
    /// block-stream paths on randomized CFGs, field for field.
    #[test]
    fn random_cfgs_simulate_identically(
        spec in arb_spec(),
        machine_idx in 0usize..3,
        scheme_idx in 0usize..5,
        input in 0u32..4,
    ) {
        let machine = [MachineModel::p14, MachineModel::p18, MachineModel::p112][machine_idx]();
        let scheme = SchemeKind::ALL[scheme_idx];
        let w = Workload::generate(spec);
        let layout = Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes))
            .expect("generated programs lay out at all paper block sizes");
        let input = InputId(input);
        let trace: Vec<_> = w.executor(&layout, input, LEN).collect();
        let stream = Arc::new(w.block_stream(&layout, input, LEN));
        prop_assert_eq!(stream.materialize(), trace.clone());

        let reference = simulate(&machine, scheme, trace.clone());
        let fast = simulate(&machine, scheme, Arc::clone(&stream));
        prop_assert_eq!(&reference, &fast);

        let eir_reference = measure_eir(&machine, scheme, trace);
        let eir_fast = measure_eir(&machine, scheme, stream);
        prop_assert_eq!(&eir_reference, &eir_fast);
    }
}
