//! Exactness of the [`Lab`] shared-cache counters under thread contention.
//!
//! The lab promises every expensive artifact (layout, trace, block stream)
//! is computed *exactly once per process* no matter how many worker threads
//! request it concurrently, and that repeat requesters share the same
//! allocation. The counters in [`LabCacheStats`] make that auditable, so this
//! test drives a known request mix from many threads and asserts the exact
//! hit/miss split — any double compute or lost hit shifts a counter.

use std::sync::Arc;

use fetchmech::experiments::{ExpConfig, Lab, LabCacheStats, LayoutVariant, TraceKey};
use fetchmech::isa::DynInst;
use fetchmech::workloads::InputId;

const THREADS: usize = 8;
const REPEATS: usize = 4;
const BLOCK_BYTES: u64 = 64;
const LIMIT: u64 = 2_000;

fn key(bench: &'static str) -> TraceKey {
    TraceKey {
        bench,
        variant: LayoutVariant::Natural,
        block_bytes: BLOCK_BYTES,
        input: InputId::TEST,
        limit: LIMIT,
    }
}

#[test]
fn cache_counters_are_exact_under_contention() {
    let lab = Lab::with_threads(ExpConfig::quick(), 1);
    let (key_a, key_b) = (key("compress"), key("bison"));

    // Every thread hammers the same two trace keys, one block-stream key,
    // and one layout key directly, collecting the Arcs it was handed.
    let per_thread: Vec<Vec<Arc<[DynInst]>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    let mut got = Vec::with_capacity(REPEATS * 2);
                    for _ in 0..REPEATS {
                        got.push(lab.trace(key_a));
                        got.push(lab.trace(key_b));
                        let _ = lab.layout(key_a.bench, key_a.variant, key_a.block_bytes);
                        let s = lab.stream(key_a);
                        assert_eq!(s.total_insts(), LIMIT);
                    }
                    got
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("lab lookup thread panicked"))
            .collect()
    });

    // Zero-copy sharing: every thread's every repeat got the *same*
    // allocation per key, and each trace has the requested length.
    let first = &per_thread[0];
    for got in &per_thread {
        for (i, trace) in got.iter().enumerate() {
            assert_eq!(trace.len() as u64, LIMIT);
            assert!(
                Arc::ptr_eq(trace, &first[i % 2]),
                "thread returned a distinct allocation for a cached trace"
            );
        }
    }

    // Exact counter accounting for the mix above:
    // * traces: 8 threads x 4 repeats x 2 keys = 64 lookups, 2 distinct keys
    //   => exactly 2 generations, 62 hits. The stream cache never touches
    //   the trace cache — streams are generated natively.
    // * streams: 8 x 4 = 32 lookups of one key => 1 build, 31 hits.
    // * layouts: the 2 trace generations and the 1 stream build each look up
    //   their layout once, plus 8 x 4 = 32 direct lookups of the compress
    //   key => 35 lookups, 2 builds, 33 hits. Which thread wins a build race
    //   varies; the totals may not.
    // * profiles/reorderings: Natural layouts never touch them.
    let lookups = (THREADS * REPEATS) as u64;
    assert_eq!(
        lab.cache_stats(),
        LabCacheStats {
            trace_hits: lookups * 2 - 2,
            trace_generations: 2,
            stream_hits: lookups - 1,
            stream_builds: 1,
            layout_hits: lookups + 3 - 2,
            layout_builds: 2,
            profile_hits: 0,
            profile_collections: 0,
            reorder_hits: 0,
            reorder_builds: 0,
        }
    );

    // A second serial pass is pure hits.
    let again = lab.trace(key_a);
    assert!(Arc::ptr_eq(&again, &first[0]));
    let stream_again = lab.stream(key_a);
    assert_eq!(stream_again.total_insts(), LIMIT);
    let stats = lab.cache_stats();
    assert_eq!(stats.trace_generations, 2);
    assert_eq!(stats.trace_hits, lookups * 2 - 1);
    assert_eq!(stats.stream_builds, 1);
    assert_eq!(stats.stream_hits, lookups);
}
