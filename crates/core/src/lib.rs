//! # fetchmech
//!
//! Instruction-fetch alignment mechanisms for high issue rates — a
//! production-quality reproduction of Conte, Menezes, Mills & Patel,
//! *"Optimization of Instruction Fetch Mechanisms for High Issue Rates"*
//! (ISCA 1995).
//!
//! The crate implements the paper's contribution — the **sequential**,
//! **interleaved-sequential**, **banked-sequential**, and **collapsing
//! buffer** fetch mechanisms, plus the **perfect** upper bound — on top of
//! the reproduction's substrates (ISA, synthetic workloads, I-cache, BTB,
//! out-of-order core, and profile-driven compiler optimizations), and
//! provides experiment drivers that regenerate every table and figure in the
//! paper's evaluation.
//!
//! # Quick start
//!
//! ```
//! use fetchmech::{simulate, SchemeKind};
//! use fetchmech::isa::{Layout, LayoutOptions};
//! use fetchmech::pipeline::MachineModel;
//! use fetchmech::workloads::{suite, InputId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let machine = MachineModel::p14();
//! let bench = suite::benchmark("compress").expect("known benchmark");
//! let layout = Layout::natural(&bench.program, LayoutOptions::new(machine.block_bytes))?;
//! let trace: Vec<_> = bench.executor(&layout, InputId::TEST, 10_000).collect();
//!
//! let result = simulate(&machine, SchemeKind::CollapsingBuffer, trace);
//! assert!(result.ipc() > 0.5);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cost;
pub mod experiments;
pub mod json;
pub mod metrics;
pub mod runner;
pub mod sanitize;
pub mod sim;
pub mod unit;

/// The five fetch schemes (re-exported from `fetchmech-pipeline`, where the
/// type lives so the analysis layer can name schemes without depending on
/// the simulator).
pub use fetchmech_pipeline::scheme;

pub use cost::{all_structures, StructureCost};
pub use fetchmech_pipeline::scheme::{ParseSchemeError, SchemeKind};
pub use runner::{JobQueue, QueueJob, Runner, SubmitError};
pub use sanitize::{check_dominance, measure_eir_checked, simulate_checked, verify_static_bound};
pub use sim::{
    build_block_fetch_unit, build_fetch_unit, measure_eir, simulate, EirResult, SimResult,
    SimSource,
};
pub use unit::{
    AlignedFetchUnit, BlockFetchUnit, BlockPacket, BreakdownStats, FetchConfig, FetchOutcome,
    FetchStats,
};

// Re-export the substrate crates under stable names so downstream users (and
// the examples/benches) need only one dependency.
pub use fetchmech_bpred as bpred;
pub use fetchmech_cache as cache;
pub use fetchmech_compiler as compiler;
pub use fetchmech_isa as isa;
pub use fetchmech_pipeline as pipeline;
pub use fetchmech_workloads as workloads;
