//! Aggregation helpers: the paper reports harmonic-mean IPC across
//! benchmarks (the correct mean for rates over equal instruction counts).

/// Harmonic mean of a set of positive rates.
///
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if any value is non-positive or non-finite (a rate of zero means a
/// simulation produced no work, which is a bug upstream).
///
/// # Examples
///
/// ```
/// let hm = fetchmech::metrics::harmonic_mean(&[2.0, 4.0]);
/// assert!((hm - 8.0 / 3.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let recip_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(
                v.is_finite() && v > 0.0,
                "harmonic mean of non-positive rate {v}"
            );
            1.0 / v
        })
        .sum();
    values.len() as f64 / recip_sum
}

/// Arithmetic mean (used for percentage aggregates).
///
/// Returns `0.0` for an empty slice.
#[must_use]
pub fn arithmetic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_of_equal_values_is_the_value() {
        assert!((harmonic_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_is_dominated_by_small_values() {
        let hm = harmonic_mean(&[1.0, 100.0]);
        assert!(hm < 2.0, "hm = {hm}");
    }

    #[test]
    fn empty_means_are_zero() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(arithmetic_mean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_rate_panics() {
        let _ = harmonic_mean(&[1.0, 0.0]);
    }

    #[test]
    fn arithmetic_mean_basic() {
        assert!((arithmetic_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
