//! The trace-driven fetch unit implementing all five alignment schemes.
//!
//! Two drivers share one mechanism model:
//!
//! * [`AlignedFetchUnit`] — the per-instruction oracle, walking a
//!   [`TraceCursor`] one instruction at a time. This is the reference
//!   implementation every optimization is checked against.
//! * [`BlockFetchUnit`] — the block-stream fast path, walking a
//!   [`BlockCursor`] over run-length fetch-block segments and admitting
//!   straight-line spans a cache block at a time. It emits packets in
//!   run-length form ([`BlockPacket`]) and reports *why* idle cycles were
//!   idle ([`FetchOutcome`]), which is what lets the simulator loop skip
//!   provably-quiet stretches of cycles.
//!
//! Both drivers delegate every prediction, admission, and continuation
//! decision to the shared `FrontEnd`, so each mechanism's geometric
//! constraints are enforced identically:
//!
//! * which cache blocks are readable this cycle (one block, the next
//!   sequential block, or the BTB-predicted successor block subject to bank
//!   conflicts),
//! * whether delivery may continue past a correctly-predicted taken branch
//!   (never / inter-block only / also forward intra-block via collapsing),
//! * the BTB's predictions and 2-cycle redirect penalty on mispredicts, and
//! * the machine's branch-speculation depth.
//!
//! Because the simulation is trace-driven on the correct path, a mispredicted
//! control transfer ends the packet and stalls the unit until the pipeline
//! reports resolution; the bad-path fetch itself is not simulated (its cost
//! is the stall, exactly the paper's penalty model).

use fetchmech_bpred::{Btb, Gshare, PredictorKind, Tournament};
use fetchmech_cache::ICache;
use fetchmech_isa::{Addr, DynInst, OpClass};
use fetchmech_pipeline::{BlockCursor, FetchPacket, FetchUnit, FetchedInst, TraceCursor};

use crate::scheme::SchemeKind;

/// Static configuration of a fetch unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchConfig {
    /// Which alignment scheme to model.
    pub scheme: SchemeKind,
    /// Maximum instructions delivered per cycle.
    pub issue_rate: u32,
    /// Cache-block size in bytes.
    pub block_bytes: u64,
    /// Fetch-pipeline misprediction penalty in cycles (2 for the crossbar
    /// collapsing buffer and all other schemes; 3 models the shifter
    /// implementation of Figure 11).
    pub fetch_penalty: u32,
    /// Instruction-cache miss penalty in cycles.
    pub miss_penalty: u32,
    /// Maximum unresolved predicted conditional branches fetch may run past.
    pub spec_depth: u32,
    /// Direction predictor for conditional branches.
    pub predictor: PredictorKind,
    /// Return-address-stack entries (0 disables the RAS).
    pub ras_entries: u32,
}

/// Why packets ended, for analysis (sums to the packet count).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BreakdownStats {
    /// Hit the issue-rate bandwidth limit.
    pub bandwidth: u64,
    /// Ran off the end of the readable block region.
    pub region_end: u64,
    /// Ended at a correctly-predicted taken branch the scheme could not
    /// fetch across.
    pub taken_break: u64,
    /// Ended at a mispredicted control transfer.
    pub mispredict: u64,
    /// Stopped by the branch-speculation depth limit.
    pub spec_limit: u64,
    /// Trace exhausted.
    pub trace_end: u64,
}

/// Fetch-unit statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchStats {
    /// Non-empty packets produced.
    pub packets: u64,
    /// Cycles that delivered nothing while stalled for an I-cache miss.
    pub miss_stall_cycles: u64,
    /// Cycles that delivered nothing while waiting on a mispredict redirect.
    pub redirect_stall_cycles: u64,
    /// Mispredicted control transfers encountered.
    pub mispredicts: u64,
    /// Control transfers predicted.
    pub predicted_controls: u64,
    /// Conditional branches predicted.
    pub cond_predictions: u64,
    /// Conditional branches whose *direction* was mispredicted (excludes
    /// correct-direction target misses, which no direction predictor fixes).
    pub cond_dir_mispredicts: u64,
    /// Successor-block fetches lost to bank conflicts (banked/collapsing).
    pub bank_conflicts: u64,
    /// Taken branches fetched across within a single cycle (inter-block).
    pub crossed_taken: u64,
    /// Intra-block forward branches collapsed (collapsing buffer only).
    pub collapsed: u64,
    /// Return-address-stack predictions used.
    pub ras_predictions: u64,
    /// RAS predictions whose target matched the actual return address.
    pub ras_correct: u64,
    /// Why packets ended.
    pub breaks: BreakdownStats,
}

impl FetchStats {
    /// Branch misprediction rate over all predicted control transfers.
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.predicted_controls == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.predicted_controls as f64
        }
    }

    /// Direction misprediction rate over conditional branches only.
    #[must_use]
    pub fn cond_dir_mispredict_rate(&self) -> f64 {
        if self.cond_predictions == 0 {
            0.0
        } else {
            self.cond_dir_mispredicts as f64 / self.cond_predictions as f64
        }
    }
}

/// What the walk decided about one candidate instruction.
enum Step {
    /// Deliver and keep walking.
    Take,
    /// Deliver, then end the packet (records the break reason).
    TakeAndBreak(Break),
}

/// The auxiliary direction-predictor state.
#[derive(Debug)]
enum DirPredictor {
    /// The paper's baseline: directions from the BTB's own 2-bit counters.
    BtbCounters,
    /// A gshare two-level predictor.
    Gshare(Gshare),
    /// McFarling's combining predictor.
    Tournament(Tournament),
}

#[derive(Debug, Clone, Copy)]
enum Break {
    Bandwidth,
    RegionEnd,
    AtTaken,
    Mispredict,
    SpecLimit,
}

/// Per-cycle walk state: which blocks are readable and where the walk is.
struct Region {
    fetch_block: Addr,
    /// Second readable block (sequential-next or predicted successor).
    second: Option<Addr>,
    /// Set once delivery has moved into the second block (no going back).
    in_second: bool,
    /// An inter-block taken branch has been crossed this cycle.
    crossed: bool,
}

/// Predictor, cache, and statistics state shared by the per-instruction
/// oracle and the block-stream fast path. Every prediction, block-admission,
/// and taken-branch-continuation decision lives here, so the two fetch
/// drivers cannot drift apart — the differential-oracle tests assert their
/// entire statistics blocks stay bit-identical.
#[derive(Debug)]
struct FrontEnd {
    cfg: FetchConfig,
    icache: ICache,
    btb: Btb,
    /// Earliest cycle at which the unit may deliver again (miss or redirect).
    resume_at: u64,
    /// Auxiliary direction predictor, when configured.
    dir: DirPredictor,
    /// Return-address stack (youngest last); empty when disabled.
    ras: Vec<Addr>,
    /// Set after delivering a mispredicted control transfer; cleared by
    /// `on_mispredict_resolved`.
    waiting_resolve: bool,
    delivered: u64,
    delivered_useful: u64,
    stats: FetchStats,
}

impl FrontEnd {
    fn new(cfg: FetchConfig, icache: ICache, btb: Btb) -> Self {
        let dir = match cfg.predictor {
            PredictorKind::TwoBitBtb => DirPredictor::BtbCounters,
            PredictorKind::Gshare(gcfg) => DirPredictor::Gshare(Gshare::new(gcfg)),
            PredictorKind::Tournament(gcfg) => DirPredictor::Tournament(Tournament::new(gcfg)),
        };
        Self {
            cfg,
            icache,
            btb,
            dir,
            ras: Vec::new(),
            resume_at: 0,
            waiting_resolve: false,
            delivered: 0,
            delivered_useful: 0,
            stats: FetchStats::default(),
        }
    }

    /// Determines the successor block the banked/collapsing hardware would
    /// fetch alongside `fetch_block`: the predicted target block of the first
    /// BTB-predicted-taken slot at or after the fetch offset, else the next
    /// sequential block. `peek` looks ahead in the undelivered trace without
    /// consuming it (both cursor kinds provide this).
    ///
    /// The walk follows the actual trace, which matches the hardware's BTB
    /// query whenever the predictions are correct; when they are wrong the
    /// packet ends at the mispredicted branch and the successor block is
    /// irrelevant to delivered instructions.
    fn predicted_successor(
        &mut self,
        fetch_block: Addr,
        peek: &mut impl FnMut(usize) -> Option<DynInst>,
    ) -> Addr {
        let bs = self.cfg.block_bytes;
        let mut i = 0usize;
        loop {
            let Some(inst) = peek(i) else {
                return fetch_block.add_words(bs / fetchmech_isa::WORD_BYTES);
            };
            if inst.addr.block_base(bs) != fetch_block {
                return fetch_block.add_words(bs / fetchmech_isa::WORD_BYTES);
            }
            if let Some(ctrl) = inst.ctrl {
                let is_cond = inst.op == OpClass::CondBranch;
                let pred = self.btb.peek(inst.addr, is_cond);
                if inst.op == OpClass::Return && self.cfg.ras_entries > 0 {
                    if let Some(&rt) = self.ras.last() {
                        return rt.block_base(bs);
                    }
                }
                let taken_pred = if is_cond {
                    match &self.dir {
                        DirPredictor::BtbCounters => pred.taken,
                        DirPredictor::Gshare(g) => g.predict(inst.addr) && pred.hit,
                        DirPredictor::Tournament(t) => t.predict(inst.addr) && pred.hit,
                    }
                } else {
                    pred.taken
                };
                if taken_pred {
                    if let Some(target) = pred.target {
                        return target.block_base(bs);
                    }
                }
                // Predicted not-taken: the hardware continues scanning the
                // block sequentially. If the branch is actually taken we
                // stop delivering there anyway (mispredict), so following
                // the trace beyond it cannot affect delivered instructions.
                let _ = ctrl;
            }
            i += 1;
            if i as u32 > self.cfg.issue_rate * 2 {
                return fetch_block.add_words(bs / fetchmech_isa::WORD_BYTES);
            }
        }
    }

    /// Predicts + trains the predictor state for one control transfer;
    /// returns `true` if the prediction was correct.
    fn predict_and_train(&mut self, inst: &DynInst) -> bool {
        let ctrl = inst.ctrl.expect("control instruction has ctrl info");
        let is_cond = inst.op == OpClass::CondBranch;
        let pred = self.btb.predict(inst.addr, is_cond);
        // Return-address stack: calls push their link address; returns pop
        // their predicted target, overriding the BTB.
        let ras_on = self.cfg.ras_entries > 0;
        if ras_on && inst.op == OpClass::Call {
            if let Some(link) = ctrl.link {
                if self.ras.len() as u32 >= self.cfg.ras_entries {
                    self.ras.remove(0);
                }
                self.ras.push(link);
            }
        }
        let ras_target = if ras_on && inst.op == OpClass::Return {
            let t = self.ras.pop();
            if t.is_some() {
                self.stats.ras_predictions += 1;
                if t == Some(inst.next_pc) {
                    self.stats.ras_correct += 1;
                }
            }
            t
        } else {
            None
        };
        // With an auxiliary predictor, the direction comes from it; a taken
        // prediction is still only actionable with a BTB-cached target.
        let (taken_pred, target_pred) = if let Some(rt) = ras_target {
            (true, Some(rt))
        } else if is_cond {
            let dir = match &self.dir {
                DirPredictor::BtbCounters => pred.taken,
                DirPredictor::Gshare(g) => g.predict(inst.addr) && pred.hit,
                DirPredictor::Tournament(t) => t.predict(inst.addr) && pred.hit,
            };
            (dir, pred.target)
        } else {
            (pred.taken, pred.target)
        };
        self.stats.predicted_controls += 1;
        if is_cond {
            self.stats.cond_predictions += 1;
            if taken_pred != ctrl.taken {
                self.stats.cond_dir_mispredicts += 1;
            }
        }
        let correct = if ctrl.taken {
            taken_pred && target_pred == Some(inst.next_pc)
        } else {
            !taken_pred
        };
        // Train with the resolved outcome. The update is applied at fetch
        // time: along the correct path this equals an in-order update at
        // resolution, the standard trace-driven-simulation treatment.
        self.btb
            .update(inst.addr, is_cond, ctrl.taken, inst.next_pc);
        if is_cond {
            match &mut self.dir {
                DirPredictor::BtbCounters => {}
                DirPredictor::Gshare(g) => g.update(inst.addr, ctrl.taken, taken_pred),
                DirPredictor::Tournament(t) => t.update(inst.addr, ctrl.taken, taken_pred),
            }
        }
        if !correct {
            self.stats.mispredicts += 1;
        }
        correct
    }

    /// Opens the cycle's readable-block region: demand-accesses the fetch
    /// block (recording a miss stall and returning `None` on a miss), runs
    /// the perfect scheme's prefetches, and selects the second readable
    /// block per scheme.
    fn open_region(
        &mut self,
        cycle: u64,
        pc: Addr,
        mut peek: impl FnMut(usize) -> Option<DynInst>,
    ) -> Option<Region> {
        let scheme = self.cfg.scheme;
        let bs = self.cfg.block_bytes;
        let fetch_block = pc.block_base(bs);

        // Demand access for the fetch block (perfect accesses lazily in
        // `admit`, but its first block is a demand access too).
        if !self.icache.access(fetch_block).is_hit() {
            self.resume_at = cycle + u64::from(self.cfg.miss_penalty);
            self.stats.miss_stall_cycles += 1;
            return None;
        }

        // Second readable block, per scheme.
        if scheme == SchemeKind::Perfect {
            // Unlimited-bandwidth front end: prefetch the next sequential
            // block *and* the BTB-predicted successor block (fill only),
            // matching the banked schemes' prefetching, so the upper bound
            // is never penalized for lacking a prefetcher. Without the
            // successor prefetch, collapsing can beat perfect on cold
            // caches by warming branch targets a cycle early.
            let next = fetch_block.add_words(bs / fetchmech_isa::WORD_BYTES);
            let _ = self.icache.access(next);
            let succ = self.predicted_successor(fetch_block, &mut peek);
            if succ != fetch_block && succ != next {
                let _ = self.icache.access(succ);
            }
        }
        let second = match scheme {
            SchemeKind::Sequential | SchemeKind::Perfect => None,
            SchemeKind::InterleavedSequential => {
                Some(fetch_block.add_words(bs / fetchmech_isa::WORD_BYTES))
            }
            SchemeKind::BankedSequential | SchemeKind::CollapsingBuffer => {
                let succ = self.predicted_successor(fetch_block, &mut peek);
                if succ == fetch_block {
                    // Predicted intra-block target: no second block to fetch
                    // (the collapsing buffer reuses the fetch block itself).
                    None
                } else if self.icache.config().bank_of(succ)
                    == self.icache.config().bank_of(fetch_block)
                {
                    self.stats.bank_conflicts += 1;
                    None
                } else {
                    Some(succ)
                }
            }
        };
        // Prefetch/partner access: a miss fills the block for next cycle but
        // makes it unusable now; it does not stall the demand fetch.
        let second = second.filter(|&s| self.icache.access(s).is_hit());

        Some(Region {
            fetch_block,
            second,
            in_second: false,
            crossed: false,
        })
    }

    /// Geometry: is an instruction in cache block `blk` readable this cycle?
    /// Updates the region (second-block entry; the perfect scheme's lazy
    /// accesses and chained prefetch) and records the break reason on
    /// rejection. Idempotent for consecutive instructions in one block,
    /// which is what lets the block-stream walk admit whole spans at once.
    fn admit(&mut self, region: &mut Region, blk: Addr, ended: &mut Option<Break>) -> bool {
        match self.cfg.scheme {
            SchemeKind::Perfect => {
                // Unlimited alignment and bandwidth: further blocks are
                // accessed as the packet grows; a miss ends the packet
                // and fills the block without a stall (the unlimited-
                // bandwidth front end prefetches as well as the banked
                // schemes do). Only the demand miss on the fetch block
                // itself stalls, like every other scheme.
                if blk != region.fetch_block && Some(blk) != region.second {
                    if self.icache.access(blk).is_hit() {
                        region.second = Some(blk); // remember most recent
                                                   // Chain the prefetch: a multi-block packet outruns
                                                   // the packet-start prefetches, so each block the
                                                   // walk enters prefetches its sequential successor
                                                   // (fill only) — otherwise the *next* cycle's
                                                   // demand fetch lands on a cold block and perfect
                                                   // stalls where the one-pair-per-cycle schemes,
                                                   // whose partner prefetch keeps pace, would not.
                        let next = blk.add_words(self.cfg.block_bytes / fetchmech_isa::WORD_BYTES);
                        let _ = self.icache.access(next);
                        true
                    } else {
                        *ended = Some(Break::RegionEnd);
                        false
                    }
                } else {
                    true
                }
            }
            _ => {
                if blk == region.fetch_block && !region.in_second {
                    true
                } else if Some(blk) == region.second {
                    region.in_second = true;
                    true
                } else {
                    *ended = Some(Break::RegionEnd);
                    false
                }
            }
        }
    }

    /// Continuation decision at a correctly-predicted taken branch: may the
    /// scheme keep delivering at the target within this same cycle?
    fn taken_step(&mut self, region: &mut Region, inst_addr: Addr, target: Addr) -> Step {
        let bs = self.cfg.block_bytes;
        let tblk = target.block_base(bs);
        match self.cfg.scheme {
            SchemeKind::Perfect => Step::Take,
            SchemeKind::Sequential | SchemeKind::InterleavedSequential => {
                Step::TakeAndBreak(Break::AtTaken)
            }
            SchemeKind::BankedSequential => {
                let current = if region.in_second {
                    region.second
                } else {
                    Some(region.fetch_block)
                };
                if !region.crossed && Some(tblk) != current && Some(tblk) == region.second {
                    region.crossed = true;
                    region.in_second = true;
                    self.stats.crossed_taken += 1;
                    Step::Take
                } else {
                    Step::TakeAndBreak(Break::AtTaken)
                }
            }
            SchemeKind::CollapsingBuffer => {
                let current_blk = if region.in_second {
                    region.second
                } else {
                    Some(region.fetch_block)
                };
                if Some(tblk) == current_blk && target > inst_addr {
                    // Forward intra-block: collapse the gap.
                    self.stats.collapsed += 1;
                    Step::Take
                } else if !region.crossed
                    && Some(tblk) != current_blk
                    && Some(tblk) == region.second
                {
                    region.crossed = true;
                    region.in_second = true;
                    self.stats.crossed_taken += 1;
                    Step::Take
                } else {
                    // Backward intra-block targets and second
                    // inter-block transfers are unsupported.
                    Step::TakeAndBreak(Break::AtTaken)
                }
            }
        }
    }

    fn note_break(&mut self, b: Break) {
        match b {
            Break::Bandwidth => self.stats.breaks.bandwidth += 1,
            Break::RegionEnd => self.stats.breaks.region_end += 1,
            Break::AtTaken => self.stats.breaks.taken_break += 1,
            Break::Mispredict => self.stats.breaks.mispredict += 1,
            Break::SpecLimit => self.stats.breaks.spec_limit += 1,
        }
    }

    fn on_mispredict_resolved(&mut self, cycle: u64) {
        debug_assert!(
            self.waiting_resolve,
            "resolution without an outstanding mispredict"
        );
        self.waiting_resolve = false;
        self.resume_at = cycle + u64::from(self.cfg.fetch_penalty);
    }
}

/// The per-instruction fetch unit — the reference oracle. Construct with
/// [`AlignedFetchUnit::new`] and drive through the [`FetchUnit`] trait.
#[derive(Debug)]
pub struct AlignedFetchUnit {
    fe: FrontEnd,
    cursor: TraceCursor,
}

impl AlignedFetchUnit {
    /// Creates a fetch unit over `trace` with fresh cache and BTB state.
    #[must_use]
    pub fn new(cfg: FetchConfig, icache: ICache, btb: Btb, trace: TraceCursor) -> Self {
        Self {
            fe: FrontEnd::new(cfg, icache, btb),
            cursor: trace,
        }
    }

    /// Returns fetch statistics.
    #[must_use]
    pub fn stats(&self) -> &FetchStats {
        &self.fe.stats
    }

    /// Returns the instruction cache (for hit/miss statistics).
    #[must_use]
    pub fn icache(&self) -> &ICache {
        &self.fe.icache
    }

    /// Returns the branch-target buffer (for predictor statistics).
    #[must_use]
    pub fn btb(&self) -> &Btb {
        &self.fe.btb
    }

    /// Instructions delivered excluding nops (the useful-work numerator for
    /// IPC under the padding optimizations).
    #[must_use]
    pub fn delivered_useful(&self) -> u64 {
        self.fe.delivered_useful
    }
}

impl FetchUnit for AlignedFetchUnit {
    fn cycle(&mut self, cycle: u64, unresolved_branches: u32) -> FetchPacket {
        if self.fe.waiting_resolve {
            self.fe.stats.redirect_stall_cycles += 1;
            return FetchPacket::empty();
        }
        if cycle < self.fe.resume_at {
            return FetchPacket::empty();
        }
        let Some(&first) = self.cursor.peek(0) else {
            return FetchPacket::empty();
        };
        let bs = self.fe.cfg.block_bytes;
        let cursor = &self.cursor;
        let Some(mut region) = self
            .fe
            .open_region(cycle, first.addr, |i| cursor.peek(i).copied())
        else {
            return FetchPacket::empty();
        };

        let mut packet = FetchPacket::empty();
        let mut conds_in_packet = 0u32;
        let mut ended: Option<Break> = None;

        loop {
            let n = packet.len();
            let Some(&inst) = self.cursor.peek(n) else {
                self.fe.stats.breaks.trace_end += u64::from(n > 0);
                break;
            };
            if n as u32 >= self.fe.cfg.issue_rate {
                ended = Some(Break::Bandwidth);
                break;
            }
            // Speculation depth: no instruction may be fetched once the
            // unresolved-branch count (older in-flight + in this packet)
            // exceeds the machine's limit.
            if unresolved_branches + conds_in_packet > self.fe.cfg.spec_depth {
                ended = Some(Break::SpecLimit);
                break;
            }
            // Geometry: is this instruction readable this cycle?
            let blk = inst.addr.block_base(bs);
            if !self.fe.admit(&mut region, blk, &mut ended) {
                break;
            }

            // Control transfers: predict, train, and decide continuation.
            let step = if let Some(ictrl) = inst.ctrl {
                let correct = self.fe.predict_and_train(&inst);
                if inst.op == OpClass::CondBranch {
                    conds_in_packet += 1;
                }
                if !correct {
                    Step::TakeAndBreak(Break::Mispredict)
                } else if !ictrl.taken {
                    Step::Take
                } else {
                    // Correctly-predicted taken: may the scheme continue at
                    // the target within this same cycle?
                    self.fe.taken_step(&mut region, inst.addr, inst.next_pc)
                }
            } else {
                Step::Take
            };

            match step {
                Step::Take => {
                    packet.insts.push(FetchedInst {
                        inst,
                        mispredicted: false,
                    });
                }
                Step::TakeAndBreak(b) => {
                    let mispredicted = matches!(b, Break::Mispredict);
                    packet.insts.push(FetchedInst { inst, mispredicted });
                    ended = Some(b);
                    if mispredicted {
                        self.fe.waiting_resolve = true;
                    }
                    break;
                }
            }
        }

        if let Some(b) = ended {
            self.fe.note_break(b);
        }
        let n = packet.len();
        if n > 0 {
            self.fe.stats.packets += 1;
            self.fe.delivered += n as u64;
            self.fe.delivered_useful += packet
                .insts
                .iter()
                .filter(|f| f.inst.op != OpClass::Nop)
                .count() as u64;
            self.cursor.consume(n);
        }
        packet
    }

    fn on_mispredict_resolved(&mut self, cycle: u64) {
        self.fe.on_mispredict_resolved(cycle);
    }

    fn done(&mut self) -> bool {
        self.cursor.is_done()
    }

    fn delivered(&self) -> u64 {
        self.fe.delivered
    }

    fn name(&self) -> &'static str {
        self.fe.cfg.scheme.name()
    }
}

/// A fetch packet in run-length form: spans of consecutive instructions
/// inside interned segment templates instead of materialized
/// [`FetchedInst`]s. The simulator loop resolves spans against its own
/// handle to the shared [`BlockStream`](fetchmech_isa::BlockStream).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockPacket {
    /// `(template id, start offset, length)` spans in delivery order.
    pub runs: Vec<(u32, u32, u32)>,
    /// Total instructions delivered.
    pub len: u32,
    /// Padding nops among them.
    pub nops: u32,
    /// Conditional branches among them.
    pub conds: u32,
    /// The final instruction is a mispredicted control transfer.
    pub mispredicted: bool,
}

impl BlockPacket {
    /// Resets the packet for reuse (the simulator loop recycles one buffer).
    pub fn clear(&mut self) {
        self.runs.clear();
        self.len = 0;
        self.nops = 0;
        self.conds = 0;
        self.mispredicted = false;
    }

    /// `true` if no instructions were delivered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push_run(&mut self, id: u32, off: u32, len: u32) {
        if let Some(last) = self.runs.last_mut() {
            if last.0 == id && last.1 + last.2 == off {
                last.2 += len;
                return;
            }
        }
        self.runs.push((id, off, len));
    }
}

/// What a [`BlockFetchUnit`] cycle produced — and, when it produced nothing,
/// *why*, so the simulator loop can decide whether the idle stretch is
/// skippable (stalls with a known end) or must be simulated cycle by cycle
/// (speculation-depth blocking performs real cache accesses every cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// A non-empty packet was delivered.
    Delivered,
    /// Waiting for the pipeline to resolve a mispredicted control transfer
    /// (each such cycle records a redirect stall).
    AwaitResolve,
    /// Stalled on an I-cache miss or post-redirect penalty; the unit
    /// delivers nothing before the given cycle.
    Stalled {
        /// First cycle at which delivery may resume.
        until: u64,
    },
    /// The speculation-depth limit blocked the packet's first instruction.
    SpecBlocked,
    /// The stream is exhausted.
    Done,
}

/// The block-stream fetch unit — the fast path. Behaviourally identical to
/// [`AlignedFetchUnit`] over the same dynamic instruction sequence (both
/// drive the shared `FrontEnd`; the differential-oracle tests enforce
/// equality), but it walks run-length segment records and admits
/// straight-line spans up to a cache-block boundary in one step instead of
/// re-deciding geometry per instruction.
#[derive(Debug)]
pub struct BlockFetchUnit {
    fe: FrontEnd,
    cursor: BlockCursor,
}

impl BlockFetchUnit {
    /// Creates a fetch unit over a block stream with fresh cache and BTB
    /// state.
    #[must_use]
    pub fn new(cfg: FetchConfig, icache: ICache, btb: Btb, cursor: BlockCursor) -> Self {
        Self {
            fe: FrontEnd::new(cfg, icache, btb),
            cursor,
        }
    }

    /// Returns fetch statistics.
    #[must_use]
    pub fn stats(&self) -> &FetchStats {
        &self.fe.stats
    }

    /// Returns the instruction cache (for hit/miss statistics).
    #[must_use]
    pub fn icache(&self) -> &ICache {
        &self.fe.icache
    }

    /// Returns the branch-target buffer (for predictor statistics).
    #[must_use]
    pub fn btb(&self) -> &Btb {
        &self.fe.btb
    }

    /// Instructions delivered so far (including nops).
    #[must_use]
    pub fn delivered(&self) -> u64 {
        self.fe.delivered
    }

    /// Instructions delivered excluding nops.
    #[must_use]
    pub fn delivered_useful(&self) -> u64 {
        self.fe.delivered_useful
    }

    /// `true` when the stream is exhausted.
    #[must_use]
    pub fn done(&self) -> bool {
        self.cursor.is_done()
    }

    /// Reports resolution of the outstanding mispredicted control transfer;
    /// delivery resumes after the fetch-pipeline penalty.
    pub fn on_mispredict_resolved(&mut self, cycle: u64) {
        self.fe.on_mispredict_resolved(cycle);
    }

    /// Accounts `n` skipped redirect-wait cycles at once. The simulator's
    /// idle-cycle skip must keep the per-cycle stall counters exact: the
    /// oracle records one redirect stall per empty waiting cycle, so a loop
    /// that jumps over `n` such cycles adds them here.
    pub fn add_redirect_stalls(&mut self, n: u64) {
        debug_assert!(self.fe.waiting_resolve);
        self.fe.stats.redirect_stall_cycles += n;
    }

    /// Runs one fetch cycle, filling `out` with the delivered packet in
    /// run-length form (the packet is cleared first). Returns what happened,
    /// including the reason when nothing was delivered.
    pub fn cycle_into(
        &mut self,
        cycle: u64,
        unresolved_branches: u32,
        out: &mut BlockPacket,
    ) -> FetchOutcome {
        out.clear();
        if self.fe.waiting_resolve {
            self.fe.stats.redirect_stall_cycles += 1;
            return FetchOutcome::AwaitResolve;
        }
        if cycle < self.fe.resume_at {
            return FetchOutcome::Stalled {
                until: self.fe.resume_at,
            };
        }
        let stream = self.cursor.stream();
        let records = stream.records();
        let mut rec = self.cursor.record_index();
        let mut off = self.cursor.offset();
        if rec >= records.len() {
            return FetchOutcome::Done;
        }
        let bs = self.fe.cfg.block_bytes;
        let issue_rate = self.fe.cfg.issue_rate;
        let spec_depth = self.fe.cfg.spec_depth;
        let first_addr = stream.template(records[rec]).insts()[off].addr;
        // `open_region` peeks at monotonically increasing offsets, so drive
        // it from an incremental walk instead of `BlockCursor::peek` (which
        // rescans the record list from the cursor on every call).
        let cursor = &self.cursor;
        let mut ahead = cursor.iter_ahead();
        let mut ahead_next = 0usize;
        let peek_seq = move |i: usize| -> Option<DynInst> {
            debug_assert!(i >= ahead_next, "open_region peeks must be monotonic");
            while ahead_next < i {
                ahead.next()?;
                ahead_next += 1;
            }
            ahead_next = i + 1;
            ahead.next().copied()
        };
        let Some(mut region) = self.fe.open_region(cycle, first_addr, peek_seq) else {
            return FetchOutcome::Stalled {
                until: self.fe.resume_at,
            };
        };

        let mut n = 0u32;
        // Conditional branches that went through the predictor this packet —
        // the speculation-depth count. Mirrors the oracle, which only counts
        // control-annotated conditionals toward the limit.
        let mut conds_pred = 0u32;
        let mut ended: Option<Break> = None;

        loop {
            if rec >= records.len() {
                self.fe.stats.breaks.trace_end += u64::from(n > 0);
                break;
            }
            if n >= issue_rate {
                ended = Some(Break::Bandwidth);
                break;
            }
            if unresolved_branches + conds_pred > spec_depth {
                ended = Some(Break::SpecLimit);
                break;
            }
            let tid = records[rec];
            let tpl = stream.template(tid);
            let inst = &tpl.insts()[off];
            let blk = inst.addr.block_base(bs);
            if !self.fe.admit(&mut region, blk, &mut ended) {
                break;
            }

            if let Some(ictrl) = inst.ctrl {
                // The segment terminal (only the last instruction of a
                // template may carry control info): predict, train, decide.
                debug_assert_eq!(off + 1, tpl.len(), "ctrl only on the terminal");
                let correct = self.fe.predict_and_train(inst);
                if inst.op == OpClass::CondBranch {
                    conds_pred += 1;
                    out.conds += 1;
                }
                if inst.op == OpClass::Nop {
                    out.nops += 1;
                }
                let step = if !correct {
                    Step::TakeAndBreak(Break::Mispredict)
                } else if !ictrl.taken {
                    Step::Take
                } else {
                    self.fe.taken_step(&mut region, inst.addr, inst.next_pc)
                };
                out.push_run(tid, off as u32, 1);
                n += 1;
                rec += 1;
                off = 0;
                if let Step::TakeAndBreak(b) = step {
                    out.mispredicted = matches!(b, Break::Mispredict);
                    if out.mispredicted {
                        self.fe.waiting_resolve = true;
                    }
                    ended = Some(b);
                    break;
                }
            } else {
                // A straight-line span: bandwidth, speculation state, and
                // (within one cache block) geometry are constant across it,
                // so admit a whole chunk at once. `admit` is idempotent for
                // instructions sharing a block, making one call per chunk
                // exactly equivalent to the oracle's per-instruction calls.
                let plain_end = tpl.len() - usize::from(tpl.terminal().is_some());
                let mut chunk = (plain_end - off).min((issue_rate - n) as usize);
                if tpl.sequential() {
                    let to_block_end = ((bs - (inst.addr.byte() - blk.byte()))
                        / fetchmech_isa::WORD_BYTES)
                        as usize;
                    chunk = chunk.min(to_block_end);
                } else {
                    // Irregular addresses (hand-built traces): fall back to
                    // per-instruction geometry.
                    chunk = 1;
                }
                debug_assert!(chunk >= 1);
                out.nops += tpl.nops_in(off..off + chunk);
                let term_cond = matches!(tpl.terminal(), Some(t) if t.op == OpClass::CondBranch);
                if tpl.op_count(OpClass::CondBranch) > u32::from(term_cond) {
                    // Control-less conditional branches (possible only in
                    // hand-built traces) count for the dispatch queue but
                    // not the speculation limit — same as the oracle.
                    out.conds += tpl.insts()[off..off + chunk]
                        .iter()
                        .filter(|i| i.op == OpClass::CondBranch)
                        .count() as u32;
                }
                out.push_run(tid, off as u32, chunk as u32);
                n += chunk as u32;
                off += chunk;
                if off == tpl.len() {
                    rec += 1;
                    off = 0;
                }
            }
        }

        if let Some(b) = ended {
            self.fe.note_break(b);
        }
        if n > 0 {
            self.fe.stats.packets += 1;
            self.fe.delivered += u64::from(n);
            self.fe.delivered_useful += u64::from(n - out.nops);
            self.cursor.consume(n as usize);
            out.len = n;
            FetchOutcome::Delivered
        } else {
            debug_assert!(
                matches!(ended, Some(Break::SpecLimit)),
                "only the speculation limit can empty a packet whose first \
                 instruction exists and whose fetch block hit"
            );
            FetchOutcome::SpecBlocked
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_bpred::BtbConfig;
    use fetchmech_cache::CacheConfig;
    use fetchmech_isa::DynCtrl;

    const BS: u64 = 16; // 4 instructions per block

    fn unit(scheme: SchemeKind, trace: Vec<DynInst>) -> AlignedFetchUnit {
        let cfg = FetchConfig {
            scheme,
            issue_rate: 4,
            block_bytes: BS,
            fetch_penalty: 2,
            miss_penalty: 10,
            spec_depth: 2,
            predictor: PredictorKind::TwoBitBtb,
            ras_entries: 0,
        };
        let icache = ICache::new(CacheConfig::new(32 * 1024, BS, 2));
        let btb = Btb::new(BtbConfig::for_block_bytes(BS));
        AlignedFetchUnit::new(cfg, icache, btb, TraceCursor::new(trace))
    }

    fn alu(addr: u64) -> DynInst {
        DynInst::simple(Addr::new(addr), OpClass::IntAlu, None, [None, None])
    }

    fn br(addr: u64, taken: bool, target: u64) -> DynInst {
        DynInst {
            addr: Addr::new(addr),
            op: OpClass::CondBranch,
            dest: None,
            srcs: [None, None],
            next_pc: if taken {
                Addr::new(target)
            } else {
                Addr::new(addr + 4)
            },
            ctrl: Some(DynCtrl {
                branch_id: Some(fetchmech_isa::BranchId(0)),
                taken,
                target: Addr::new(target),
                link: None,
            }),
        }
    }

    fn jmp(addr: u64, target: u64) -> DynInst {
        DynInst {
            addr: Addr::new(addr),
            op: OpClass::Jump,
            dest: None,
            srcs: [None, None],
            next_pc: Addr::new(target),
            ctrl: Some(DynCtrl {
                branch_id: None,
                taken: true,
                target: Addr::new(target),
                link: None,
            }),
        }
    }

    /// Straight-line run at addresses `start..start+n` words.
    fn run(start: u64, n: u64) -> Vec<DynInst> {
        (0..n).map(|i| alu(start + 4 * i)).collect()
    }

    /// Repeats a physically-cyclic body `n` times. The body must loop: the
    /// last instruction's `next_pc` equals the first instruction's address,
    /// so the repeated stream is a legal dynamic trace.
    fn cycle_trace(body: Vec<DynInst>, n: usize) -> Vec<DynInst> {
        let first = body.first().expect("nonempty body").addr;
        let last = body.last().expect("nonempty body");
        assert_eq!(last.next_pc, first, "body must be physically cyclic");
        let mut v = Vec::with_capacity(body.len() * n);
        for _ in 0..n {
            v.extend(body.iter().copied());
        }
        v
    }

    /// Drives the unit until the trace is exhausted; returns packet sizes.
    fn drain(unit: &mut AlignedFetchUnit) -> Vec<usize> {
        let mut sizes = Vec::new();
        let mut cycle = 0;
        while !unit.done() {
            let p = unit.cycle(cycle, 0);
            if p.ends_mispredicted() {
                unit.on_mispredict_resolved(cycle + 2);
            }
            if !p.is_empty() {
                sizes.push(p.len());
            }
            cycle += 1;
            assert!(cycle < 10_000, "runaway fetch test");
        }
        sizes
    }

    /// Trains the unit by consuming at least `skip` instructions (resolving
    /// mispredicts immediately), then returns the next non-empty packet —
    /// the steady-state behaviour of the mechanism on the cyclic trace.
    fn steady_packet(u: &mut AlignedFetchUnit, skip: usize) -> FetchPacket {
        let mut consumed = 0usize;
        let mut cycle = 0u64;
        while consumed < skip {
            let p = u.cycle(cycle, 0);
            if p.ends_mispredicted() {
                u.on_mispredict_resolved(cycle);
            }
            consumed += p.len();
            cycle += 1;
            assert!(cycle < 10_000, "training stuck at {consumed}/{skip}");
        }
        loop {
            cycle += 1;
            let p = u.cycle(cycle, 0);
            if !p.is_empty() {
                return p;
            }
            assert!(cycle < 20_000, "no steady packet");
        }
    }

    #[test]
    fn sequential_delivers_one_block_per_cycle() {
        // 8 sequential instructions starting at a block boundary.
        let mut u = unit(SchemeKind::Sequential, run(0x1000, 8));
        let sizes = drain(&mut u);
        assert_eq!(sizes, vec![4, 4]);
    }

    #[test]
    fn sequential_misaligned_start_delivers_partial_block() {
        // Start mid-block: only 2 instructions remain in the first block.
        let mut u = unit(SchemeKind::Sequential, run(0x1008, 6));
        let sizes = drain(&mut u);
        assert_eq!(sizes, vec![2, 4]);
    }

    #[test]
    fn interleaved_crosses_block_boundary() {
        let mut u = unit(SchemeKind::InterleavedSequential, run(0x1008, 6));
        let sizes = drain(&mut u);
        // The cold prefetch of the second block misses (fill, no stall), so
        // the first packet covers only the fetch block's tail; once warm the
        // next packet spans the boundary.
        assert_eq!(sizes, vec![2, 4]);
    }

    #[test]
    fn interleaved_spans_boundary_when_warm() {
        // Loop body crossing a block boundary: ..., 0x1008..0x1014, jmp back.
        let body = vec![alu(0x1008), alu(0x100c), alu(0x1010), jmp(0x1014, 0x1008)];
        let mut u = unit(SchemeKind::InterleavedSequential, cycle_trace(body, 6));
        let p = steady_packet(&mut u, 8);
        // All four instructions, spanning blocks 0x1000 and 0x1010.
        assert_eq!(p.len(), 4, "{p:?}");
    }

    #[test]
    fn sequential_stops_at_taken_branch() {
        // Note 0x3008, not 0x3004: word 0x3004/4 = 3073 maps to the same
        // 1024-entry BTB slot as the branch at 0x1004 and would alias it.
        let body = vec![
            alu(0x1000),
            br(0x1004, true, 0x3000),
            alu(0x3000),
            alu(0x3004),
            jmp(0x3008, 0x1000),
        ];
        let mut u = unit(SchemeKind::Sequential, cycle_trace(body, 6));
        let p = steady_packet(&mut u, 10);
        // Even correctly predicted, sequential cannot pass the taken branch.
        assert_eq!(p.len(), 2, "{p:?}");
        assert!(
            !p.ends_mispredicted(),
            "steady-state prediction must be correct"
        );
    }

    #[test]
    fn banked_crosses_predicted_inter_block_branch() {
        // Branch in block 0x1000 (bank 0) to block 0x2010 (bank 1).
        let body = vec![
            alu(0x1000),
            br(0x1004, true, 0x2010),
            alu(0x2010),
            jmp(0x2014, 0x1000),
        ];
        let mut u = unit(SchemeKind::BankedSequential, cycle_trace(body, 6));
        let p = steady_packet(&mut u, 8);
        assert_eq!(p.len(), 4, "expected branch crossing, got {p:?}");
        assert!(u.stats().crossed_taken >= 1);
    }

    #[test]
    fn banked_bank_conflict_prevents_crossing() {
        // Target block 0x2000 has the same bank parity as 0x1000.
        // (jmp placed at 0x2008 to avoid aliasing the 0x1004 BTB slot.)
        let body = vec![
            alu(0x1000),
            br(0x1004, true, 0x2000),
            alu(0x2000),
            alu(0x2004),
            jmp(0x2008, 0x1000),
        ];
        let mut u = unit(SchemeKind::BankedSequential, cycle_trace(body, 6));
        let p = steady_packet(&mut u, 10);
        assert_eq!(
            p.len(),
            2,
            "bank conflict must stop delivery at the branch: {p:?}"
        );
        assert!(u.stats().bank_conflicts >= 1);
    }

    #[test]
    fn banked_cannot_align_intra_block_target() {
        // Forward branch within one block: banked stops, collapsing continues.
        let body = vec![
            alu(0x1000),
            br(0x1004, true, 0x100c),
            alu(0x100c),
            jmp(0x1010, 0x1000),
        ];
        let mut u = unit(SchemeKind::BankedSequential, cycle_trace(body.clone(), 6));
        let p = steady_packet(&mut u, 8);
        assert_eq!(p.len(), 2, "{p:?}");

        let mut c = unit(SchemeKind::CollapsingBuffer, cycle_trace(body, 6));
        let p = steady_packet(&mut c, 8);
        assert!(
            p.len() >= 3,
            "collapsing buffer must collapse the gap: {p:?}"
        );
        assert!(c.stats().collapsed >= 1);
    }

    #[test]
    fn collapsing_rejects_backward_intra_block_branch() {
        // Tight backward loop inside one block.
        let body = vec![alu(0x1000), br(0x1004, true, 0x1000)];
        let mut u = unit(SchemeKind::CollapsingBuffer, cycle_trace(body, 8));
        let p = steady_packet(&mut u, 6);
        assert_eq!(
            p.len(),
            2,
            "backward intra-block branches are unsupported: {p:?}"
        );
    }

    #[test]
    fn collapsing_handles_intra_then_inter_block() {
        // Collapse a forward hammock, then cross to the target block of a
        // second taken branch in the other bank.
        let body = vec![
            br(0x1000, true, 0x1008), // forward intra-block skip
            br(0x1008, true, 0x2010), // inter-block to bank 1
            alu(0x2010),
            jmp(0x2014, 0x1000),
        ];
        let mut u = unit(SchemeKind::CollapsingBuffer, cycle_trace(body, 8));
        let p = steady_packet(&mut u, 12);
        assert_eq!(p.len(), 4, "{p:?}");
        assert!(u.stats().collapsed >= 1);
        assert!(u.stats().crossed_taken >= 1);
    }

    #[test]
    fn perfect_ignores_alignment() {
        let body = vec![
            alu(0x1000),
            br(0x1004, true, 0x2010),
            alu(0x2010),
            jmp(0x2014, 0x1000),
        ];
        let mut u = unit(SchemeKind::Perfect, cycle_trace(body, 6));
        let p = steady_packet(&mut u, 8);
        assert_eq!(p.len(), 4, "{p:?}");
    }

    #[test]
    fn mispredict_stalls_until_resolved_plus_penalty() {
        let mut trace = vec![alu(0x1000), br(0x1004, true, 0x2000)];
        trace.extend(run(0x2000, 2));
        let mut u = unit(SchemeKind::Sequential, trace);
        // Cold I-cache miss at cycle 0; the block is filled.
        assert!(u.cycle(0, 0).is_empty());
        let p = u.cycle(10, 0);
        assert_eq!(p.len(), 2);
        assert!(
            p.ends_mispredicted(),
            "cold BTB must mispredict the first taken branch"
        );
        // Stalled until resolution...
        assert!(u.cycle(11, 0).is_empty());
        assert!(u.cycle(12, 0).is_empty());
        u.on_mispredict_resolved(15);
        // ...and for fetch_penalty cycles after it.
        assert!(u.cycle(15, 0).is_empty());
        assert!(u.cycle(16, 0).is_empty());
        // Cycle 17 would deliver, but the redirect target block cold-misses;
        // delivery happens after the miss penalty.
        assert!(u.cycle(17, 0).is_empty());
        let p = u.cycle(27, 0);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn icache_miss_stalls_then_delivers() {
        let mut u = unit(SchemeKind::Sequential, run(0x1000, 4));
        assert!(u.cycle(0, 0).is_empty());
        assert_eq!(u.stats().miss_stall_cycles, 1);
        for c in 1..10 {
            assert!(u.cycle(c, 0).is_empty(), "cycle {c} should still stall");
        }
        assert_eq!(u.cycle(10, 0).len(), 4);
    }

    #[test]
    fn spec_depth_blocks_fetch_past_branches() {
        let trace = vec![br(0x1000, false, 0x2000), alu(0x1004)];
        let mut u = unit(SchemeKind::Sequential, trace);
        // First touch cold-misses the cache.
        assert!(u.cycle(0, 0).is_empty());
        // unresolved = 3 > spec_depth 2: deliver nothing at all.
        let p = u.cycle(10, 3);
        assert!(p.is_empty());
        // unresolved = 2: the branch itself may be fetched, nothing beyond.
        let p = u.cycle(11, 2);
        assert_eq!(p.len(), 1);
        assert!(p.insts[0].inst.is_cond_branch());
    }

    #[test]
    fn correctly_predicted_taken_branch_has_no_bubble() {
        let body = vec![alu(0x1000), br(0x1004, true, 0x1000)];
        let mut u = unit(SchemeKind::Sequential, cycle_trace(body, 8));
        // Cold I-cache miss, then the first iteration mispredicts (cold BTB).
        assert!(u.cycle(0, 0).is_empty());
        let p = u.cycle(10, 0);
        assert!(p.ends_mispredicted());
        u.on_mispredict_resolved(10);
        // After warmup every cycle delivers 2 instructions back-to-back (the
        // correctly-predicted taken branch costs no bubble).
        let mut sizes = Vec::new();
        for c in 12..15 {
            sizes.push(u.cycle(c, 0).len());
        }
        assert_eq!(
            sizes,
            vec![2, 2, 2],
            "expected seamless taken-branch fetch: {sizes:?}"
        );
    }

    #[test]
    fn delivered_counts_match() {
        let mut u = unit(SchemeKind::Sequential, run(0x1000, 8));
        let _ = drain(&mut u);
        assert_eq!(u.delivered(), 8);
        assert_eq!(u.delivered_useful(), 8);
    }

    #[test]
    fn nops_are_excluded_from_useful_count() {
        let mut trace = run(0x1000, 2);
        trace.push(DynInst::simple(
            Addr::new(0x1008),
            OpClass::Nop,
            None,
            [None, None],
        ));
        trace.push(alu(0x100c));
        let mut u = unit(SchemeKind::Sequential, trace);
        let _ = drain(&mut u);
        assert_eq!(u.delivered(), 4);
        assert_eq!(u.delivered_useful(), 3);
    }

    /// Drives an [`AlignedFetchUnit`] and a [`BlockFetchUnit`] over the same
    /// dynamic instruction sequence and asserts their packets, statistics,
    /// cache state, and BTB state stay identical, cycle by cycle.
    fn assert_units_match(scheme: SchemeKind, trace: Vec<DynInst>) {
        use fetchmech_isa::BlockStream;
        let cfg = FetchConfig {
            scheme,
            issue_rate: 4,
            block_bytes: BS,
            fetch_penalty: 2,
            miss_penalty: 10,
            spec_depth: 2,
            predictor: PredictorKind::TwoBitBtb,
            ras_entries: 4,
        };
        let make_cache = || ICache::new(CacheConfig::new(32 * 1024, BS, 2));
        let make_btb = || Btb::new(BtbConfig::for_block_bytes(BS));
        let stream = std::sync::Arc::new(BlockStream::from_insts(&trace));
        let mut oracle =
            AlignedFetchUnit::new(cfg, make_cache(), make_btb(), TraceCursor::new(trace));
        let mut fast = BlockFetchUnit::new(
            cfg,
            make_cache(),
            make_btb(),
            BlockCursor::new(std::sync::Arc::clone(&stream)),
        );
        let mut pkt = BlockPacket::default();
        let mut cycle = 0u64;
        while !oracle.done() {
            let p = oracle.cycle(cycle, 0);
            let outcome = fast.cycle_into(cycle, 0, &mut pkt);
            assert_eq!(p.len() as u32, pkt.len, "cycle {cycle}: packet size");
            assert_eq!(
                p.ends_mispredicted(),
                pkt.mispredicted,
                "cycle {cycle}: mispredict flag"
            );
            assert_eq!(outcome == FetchOutcome::Delivered, !p.is_empty());
            // The run-length spans must materialize to the oracle's packet.
            let insts: Vec<DynInst> = pkt
                .runs
                .iter()
                .flat_map(|&(tid, off, len)| {
                    stream.template(tid).insts()[off as usize..(off + len) as usize]
                        .iter()
                        .copied()
                })
                .collect();
            let oracle_insts: Vec<DynInst> = p.insts.iter().map(|f| f.inst).collect();
            assert_eq!(insts, oracle_insts, "cycle {cycle}: packet contents");
            if p.ends_mispredicted() {
                oracle.on_mispredict_resolved(cycle + 1);
                fast.on_mispredict_resolved(cycle + 1);
            }
            cycle += 1;
            assert!(cycle < 100_000, "runaway");
        }
        assert!(fast.done());
        assert_eq!(oracle.stats(), fast.stats());
        assert_eq!(oracle.delivered(), fast.delivered());
        assert_eq!(oracle.delivered_useful(), fast.delivered_useful());
        assert_eq!(oracle.icache().stats(), fast.icache().stats());
        assert_eq!(oracle.btb().stats(), fast.btb().stats());
    }

    #[test]
    fn block_unit_matches_oracle_on_mixed_traces() {
        for scheme in SchemeKind::ALL {
            // A taken loop crossing blocks and banks, misaligned start.
            let body = vec![
                alu(0x1008),
                alu(0x100c),
                br(0x1010, true, 0x2010),
                alu(0x2010),
                jmp(0x2014, 0x1008),
            ];
            assert_units_match(scheme, cycle_trace(body, 24));
            // Straight-line code with nop padding.
            let mut t = run(0x1000, 7);
            t.push(DynInst::simple(
                Addr::new(0x101c),
                OpClass::Nop,
                None,
                [None, None],
            ));
            t.extend(run(0x1020, 5));
            assert_units_match(scheme, t);
            // Alternating conditional inside one block (mispredict-heavy).
            let alt: Vec<DynInst> = (0..64)
                .flat_map(|i| vec![alu(0x1000), br(0x1004, i % 3 == 0, 0x1000)])
                .collect();
            assert_units_match(scheme, alt);
        }
    }
}

#[cfg(test)]
mod predictor_tests {
    use super::*;
    use fetchmech_bpred::{BtbConfig, GshareConfig};
    use fetchmech_cache::CacheConfig;
    use fetchmech_isa::DynCtrl;

    const BS: u64 = 16;

    fn unit_with(predictor: PredictorKind, ras: u32, trace: Vec<DynInst>) -> AlignedFetchUnit {
        let cfg = FetchConfig {
            scheme: SchemeKind::Perfect,
            issue_rate: 4,
            block_bytes: BS,
            fetch_penalty: 2,
            miss_penalty: 10,
            spec_depth: 8,
            predictor,
            ras_entries: ras,
        };
        let icache = ICache::new(CacheConfig::new(32 * 1024, BS, 2));
        let btb = Btb::new(BtbConfig::for_block_bytes(BS));
        AlignedFetchUnit::new(cfg, icache, btb, TraceCursor::new(trace))
    }

    fn br(addr: u64, taken: bool, target: u64) -> DynInst {
        DynInst {
            addr: Addr::new(addr),
            op: OpClass::CondBranch,
            dest: None,
            srcs: [None, None],
            next_pc: if taken {
                Addr::new(target)
            } else {
                Addr::new(addr + 4)
            },
            ctrl: Some(DynCtrl {
                branch_id: None,
                taken,
                target: Addr::new(target),
                link: None,
            }),
        }
    }

    fn drain_stats(mut u: AlignedFetchUnit) -> FetchStats {
        let mut cycle = 0;
        while !u.done() {
            let p = u.cycle(cycle, 0);
            if p.ends_mispredicted() {
                u.on_mispredict_resolved(cycle);
            }
            cycle += 1;
            assert!(cycle < 200_000, "runaway");
        }
        *u.stats()
    }

    /// A strict alternation at one PC: 2-bit counters stay near 50% while a
    /// tournament learns it almost perfectly.
    #[test]
    fn tournament_beats_two_bit_in_the_fetch_unit() {
        let trace: Vec<DynInst> = (0..4000)
            .map(|i| br(0x1000, i % 2 == 0, 0x1000 + 64))
            .collect();
        let twobit = drain_stats(unit_with(PredictorKind::TwoBitBtb, 0, trace.clone()));
        let tourney = drain_stats(unit_with(
            PredictorKind::Tournament(GshareConfig::default_4k()),
            0,
            trace,
        ));
        assert!(
            tourney.cond_dir_mispredicts * 3 < twobit.cond_dir_mispredicts,
            "tournament {} vs 2-bit {} direction misses on an alternating branch",
            tourney.cond_dir_mispredicts,
            twobit.cond_dir_mispredicts
        );
    }

    fn call(addr: u64, target: u64, link: u64) -> DynInst {
        DynInst {
            addr: Addr::new(addr),
            op: OpClass::Call,
            dest: Some(fetchmech_isa::Reg::int(31)),
            srcs: [None, None],
            next_pc: Addr::new(target),
            ctrl: Some(DynCtrl {
                branch_id: None,
                taken: true,
                target: Addr::new(target),
                link: Some(Addr::new(link)),
            }),
        }
    }

    fn ret(addr: u64, target: u64) -> DynInst {
        DynInst {
            addr: Addr::new(addr),
            op: OpClass::Return,
            dest: None,
            srcs: [Some(fetchmech_isa::Reg::int(31)), None],
            next_pc: Addr::new(target),
            ctrl: Some(DynCtrl {
                branch_id: None,
                taken: true,
                target: Addr::new(target),
                link: None,
            }),
        }
    }

    /// Two call sites into one function: the BTB's single cached target
    /// mispredicts half the returns; a RAS predicts them all.
    #[test]
    fn ras_predicts_alternating_call_sites() {
        let mut trace = Vec::new();
        for _ in 0..200 {
            // Site A at 0x1000 and site B at 0x1100 both call 0x5000.
            // (0x1000 and 0x3000 would alias in a 1024-entry BTB and turn
            // the calls themselves into perpetual mispredicts.)
            trace.push(call(0x1000, 0x5000, 0x1004));
            trace.push(ret(0x5000, 0x1004));
            trace.push(call(0x1100, 0x5000, 0x1104));
            trace.push(ret(0x5000, 0x1104));
        }
        // Physically link the stream: ret -> next call sites.
        // (addresses above are already consistent: 0x1004/0x3004 are not
        // fetched as instructions because the next record's addr differs;
        // the fetch unit only checks geometry per packet, and Perfect has
        // none. For this test the prediction path is what matters.)
        let without = drain_stats(unit_with(PredictorKind::TwoBitBtb, 0, trace.clone()));
        let with = drain_stats(unit_with(PredictorKind::TwoBitBtb, 8, trace));
        assert!(with.ras_predictions > 0);
        assert_eq!(
            with.ras_correct, with.ras_predictions,
            "every return is RAS-predictable here"
        );
        assert!(
            with.mispredicts < without.mispredicts / 2,
            "RAS {} vs BTB-only {} mispredicts",
            with.mispredicts,
            without.mispredicts
        );
    }

    /// RAS overflow drops the oldest entry; deep call chains past the
    /// capacity mispredict only the overflowed frames.
    #[test]
    fn ras_overflow_drops_oldest() {
        let mut trace = Vec::new();
        // 4 nested calls with a 2-entry RAS; return in LIFO order.
        let depth = 4u64;
        for d in 0..depth {
            trace.push(call(
                0x1000 + d * 0x100,
                0x1000 + (d + 1) * 0x100,
                0x2000 + d * 0x100,
            ));
        }
        for d in (0..depth).rev() {
            trace.push(ret(0x5000 + d * 4, 0x2000 + d * 0x100));
        }
        let stats = drain_stats(unit_with(PredictorKind::TwoBitBtb, 2, trace));
        // Only the two youngest frames fit; exactly those two predict.
        assert_eq!(stats.ras_predictions, 2);
        assert_eq!(stats.ras_correct, 2);
    }
}
