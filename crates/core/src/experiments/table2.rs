//! Table 2: the percentage of taken branches whose target lies in the same
//! cache block (*intra-block branches*), per benchmark, for the three block
//! sizes — the phenomenon motivating the collapsing buffer.

use std::fmt;

use fetchmech_isa::TraceStats;
use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{Lab, LayoutVariant};

/// One benchmark row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Benchmark class.
    pub class: WorkloadClass,
    /// Intra-block percentage per block size, in the order 16 B / 32 B / 64 B
    /// (P14 / P18 / P112).
    pub pct: [f64; 3],
}

/// The full Table 2 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2 {
    /// One row per benchmark, integer benchmarks first.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Runs the experiment. One trace per benchmark per block size (block
    /// size changes the layout geometry, so each is a distinct trace-cache
    /// key) — but the traces are the same ones the simulation drivers use,
    /// so across a full report they are generated only once.
    pub fn run(lab: &Lab) -> Self {
        let block_sizes: Vec<u64> = MachineModel::paper_models()
            .iter()
            .map(|m| m.block_bytes)
            .collect();
        let classes = [WorkloadClass::Int, WorkloadClass::Fp];
        let mut jobs = Vec::new();
        for class in classes {
            for bench in lab.class_names(class) {
                for &bs in &block_sizes {
                    jobs.push((bench, bs));
                }
            }
        }
        let pcts = lab.runner().run(&jobs, |&(bench, bs)| {
            let trace = lab.test_trace(bench, LayoutVariant::Natural, bs);
            let mut stats = TraceStats::new();
            for inst in trace.iter() {
                stats.observe(inst, bs);
            }
            stats.intra_block_pct()
        });

        let mut rows = Vec::new();
        let mut idx = 0;
        for class in classes {
            for bench in lab.class_names(class) {
                let mut pct = [0.0; 3];
                for slot in &mut pct {
                    *slot = pcts[idx];
                    idx += 1;
                }
                rows.push(Table2Row { bench, class, pct });
            }
        }
        Table2 { rows }
    }

    /// Row for one benchmark.
    #[must_use]
    pub fn row(&self, bench: &str) -> Option<&Table2Row> {
        self.rows.iter().find(|r| r.bench == bench)
    }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table 2: % taken branches with intra-block targets")?;
        writeln!(
            f,
            "{:<6} {:<10} {:>8} {:>8} {:>8}",
            "class", "benchmark", "P14/16B", "P18/32B", "P112/64B"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<6} {:<10} {:>7.2}% {:>7.2}% {:>7.2}%",
                r.class, r.bench, r.pct[0], r.pct[1], r.pct[2]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn table2_trends_match_paper() {
        let lab = Lab::new(ExpConfig::quick());
        let t = Table2::run(&lab);
        assert_eq!(t.rows.len(), 15);

        // The fraction is non-decreasing in block size for every benchmark
        // (allowing small sampling noise).
        for r in &t.rows {
            assert!(r.pct[1] >= r.pct[0] - 2.0, "{}: {:?}", r.bench, r.pct);
            assert!(r.pct[2] >= r.pct[1] - 2.0, "{}: {:?}", r.bench, r.pct);
        }
        // nasa7 (pure loop nests) has essentially none.
        let nasa = t.row("nasa7").expect("nasa7 present");
        assert!(nasa.pct[2] < 2.0, "nasa7: {:?}", nasa.pct);
        // compress has a visible fraction even at 16 B blocks.
        let compress = t.row("compress").expect("compress present");
        assert!(compress.pct[0] > 4.0, "compress: {:?}", compress.pct);
        // The branchiest integer codes reach tens of percent at 64 B.
        let eqntott = t.row("eqntott").expect("eqntott present");
        assert!(eqntott.pct[2] > 25.0, "eqntott: {:?}", eqntott.pct);
    }
}
