//! Figure 10: `EIR / EIR(perfect)` — each scheme's ability to align
//! instructions, independent of the execution core. The collapsing buffer's
//! claim to fame is holding ≥ ~90% from P14 through P112 while the other
//! schemes decay.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{class_label, Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One (machine, class) group of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10Row {
    /// Machine model name.
    pub machine: String,
    /// Benchmark class.
    pub class: WorkloadClass,
    /// `100 × EIR(scheme)/EIR(perfect)` for the four hardware schemes,
    /// indexed in [`SchemeKind::HARDWARE`] order.
    pub pct: [f64; 4],
}

impl Fig10Row {
    /// Ratio for one hardware scheme.
    #[must_use]
    pub fn pct_of(&self, scheme: SchemeKind) -> f64 {
        let idx = SchemeKind::HARDWARE
            .iter()
            .position(|&s| s == scheme)
            .expect("hardware scheme");
        self.pct[idx]
    }
}

/// The full Figure 10 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig10 {
    /// One row per (machine, class).
    pub rows: Vec<Fig10Row>,
}

impl Fig10 {
    /// Runs the experiment: fetch-only EIR per scheme, aggregated with the
    /// harmonic mean across benchmarks, then expressed relative to perfect.
    /// The perfect bound rides in the same job grid as the hardware schemes.
    pub fn run(lab: &Lab) -> Self {
        let machines = MachineModel::paper_models();
        let classes = [WorkloadClass::Int, WorkloadClass::Fp];
        let schemes: Vec<SchemeKind> = std::iter::once(SchemeKind::Perfect)
            .chain(SchemeKind::HARDWARE)
            .collect();
        let mut jobs = Vec::new();
        for machine in &machines {
            for class in classes {
                for &scheme in &schemes {
                    for bench in lab.class_names(class) {
                        jobs.push((machine.clone(), scheme, bench));
                    }
                }
            }
        }
        let eirs = lab.runner().run(&jobs, |(machine, scheme, bench)| {
            lab.eir(machine, *scheme, bench, LayoutVariant::Natural)
                .eir()
        });

        let mut rows = Vec::new();
        let mut idx = 0;
        for machine in &machines {
            for class in classes {
                let n = lab.class_names(class).len();
                let perfect = harmonic_mean(&eirs[idx..idx + n]);
                idx += n;
                let mut pct = [0.0; 4];
                for slot in &mut pct {
                    *slot = 100.0 * harmonic_mean(&eirs[idx..idx + n]) / perfect;
                    idx += n;
                }
                rows.push(Fig10Row {
                    machine: machine.name.clone(),
                    class,
                    pct,
                });
            }
        }
        Fig10 { rows }
    }

    /// The row for one machine and class.
    #[must_use]
    pub fn row(&self, machine: &str, class: WorkloadClass) -> Option<&Fig10Row> {
        self.rows
            .iter()
            .find(|r| r.machine == machine && r.class == class)
    }

    /// The per-machine series for one scheme and class (P14, P18, P112).
    #[must_use]
    pub fn series(&self, scheme: SchemeKind, class: WorkloadClass) -> Vec<f64> {
        self.rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.pct_of(scheme))
            .collect()
    }
}

impl fmt::Display for Fig10 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 10: EIR / EIR(perfect) (%)")?;
        write!(f, "{:<16} {:>8}", "class", "machine")?;
        for s in SchemeKind::HARDWARE {
            write!(f, " {:>12}", s.name())?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:<16} {:>8}", class_label(r.class), r.machine)?;
            for v in r.pct {
                write!(f, " {v:>11.1}%")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn fig10_collapsing_buffer_is_scalable() {
        let lab = Lab::new(ExpConfig::quick());
        let fig = Fig10::run(&lab);
        assert_eq!(fig.rows.len(), 6);
        for r in &fig.rows {
            // Ratios are percentages of an upper bound.
            for v in r.pct {
                assert!(v > 10.0 && v <= 101.0, "{} {:?}: {v}", r.machine, r.class);
            }
            // Collapsing dominates the other schemes.
            let coll = r.pct_of(SchemeKind::CollapsingBuffer);
            assert!(coll >= r.pct_of(SchemeKind::BankedSequential) - 1.0);
            assert!(coll >= r.pct_of(SchemeKind::Sequential) - 1.0);
        }
        // The paper's headline: the collapsing buffer keeps a high ratio from
        // P14 to P112, while sequential decays substantially.
        for class in [WorkloadClass::Int, WorkloadClass::Fp] {
            let coll = fig.series(SchemeKind::CollapsingBuffer, class);
            let seq = fig.series(SchemeKind::Sequential, class);
            assert!(
                coll[2] >= 80.0,
                "{class:?}: collapsing ratio at P112 fell to {:.1}%",
                coll[2]
            );
            assert!(
                seq[2] < coll[2] - 10.0,
                "{class:?}: sequential {:.1}% should trail collapsing {:.1}% at P112",
                seq[2],
                coll[2]
            );
        }
    }
}
