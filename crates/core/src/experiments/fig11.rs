//! Figure 11: the shifter-implemented collapsing buffer. With a three-cycle
//! fetch misprediction penalty the collapsing buffer loses its edge over
//! banked sequential — the paper's argument for the crossbar implementation.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One machine group of Figure 11 (integer benchmarks only, as in the paper).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11Row {
    /// Machine model name.
    pub machine: String,
    /// Harmonic-mean IPC of the four hardware schemes with the standard
    /// two-cycle penalty, in [`SchemeKind::HARDWARE`] order.
    pub hardware: [f64; 4],
    /// The collapsing buffer with a three-cycle penalty (shifter model).
    pub collapsing_penalty3: f64,
    /// The perfect bound.
    pub perfect: f64,
}

impl Fig11Row {
    /// IPC of one standard-penalty hardware scheme.
    #[must_use]
    pub fn ipc_of(&self, scheme: SchemeKind) -> f64 {
        let idx = SchemeKind::HARDWARE
            .iter()
            .position(|&s| s == scheme)
            .expect("hardware scheme");
        self.hardware[idx]
    }
}

/// The full Figure 11 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig11 {
    /// One row per machine.
    pub rows: Vec<Fig11Row>,
}

impl Fig11 {
    /// Runs the experiment. The shifter (3-cycle penalty) machine shares the
    /// same cache-block size as its base machine, so its runs are trace-cache
    /// hits — only the simulations differ.
    pub fn run(lab: &Lab) -> Self {
        let machines = MachineModel::paper_models();
        let names = lab.class_names(WorkloadClass::Int);
        let n = names.len();
        let mut jobs = Vec::new();
        for machine in &machines {
            for scheme in SchemeKind::HARDWARE {
                for &bench in &names {
                    jobs.push((machine.clone(), scheme, bench));
                }
            }
            let shifter = machine.clone().with_fetch_penalty(3);
            for &bench in &names {
                jobs.push((shifter.clone(), SchemeKind::CollapsingBuffer, bench));
            }
            for &bench in &names {
                jobs.push((machine.clone(), SchemeKind::Perfect, bench));
            }
        }
        let ipcs = lab.runner().run(&jobs, |(machine, scheme, bench)| {
            lab.run(machine, *scheme, bench, LayoutVariant::Natural)
                .ipc()
        });

        let mut rows = Vec::new();
        let mut idx = 0;
        let take_mean = |idx: &mut usize| {
            let m = harmonic_mean(&ipcs[*idx..*idx + n]);
            *idx += n;
            m
        };
        for machine in &machines {
            let mut hardware = [0.0; 4];
            for slot in &mut hardware {
                *slot = take_mean(&mut idx);
            }
            let collapsing_penalty3 = take_mean(&mut idx);
            let perfect = take_mean(&mut idx);
            rows.push(Fig11Row {
                machine: machine.name.clone(),
                hardware,
                collapsing_penalty3,
                perfect,
            });
        }
        Fig11 { rows }
    }
}

impl fmt::Display for Fig11 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 11: collapsing buffer with a 3-cycle fetch penalty (integer, harmonic-mean IPC)"
        )?;
        write!(f, "{:>8}", "machine")?;
        for s in SchemeKind::HARDWARE {
            write!(f, " {:>12}", s.name())?;
        }
        writeln!(f, " {:>14} {:>9}", "collapsing(p3)", "perfect")?;
        for r in &self.rows {
            write!(f, "{:>8}", r.machine)?;
            for v in r.hardware {
                write!(f, " {v:>12.3}")?;
            }
            writeln!(f, " {:>14.3} {:>9.3}", r.collapsing_penalty3, r.perfect)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn fig11_shifter_loses_the_edge() {
        let lab = Lab::new(ExpConfig::quick());
        let fig = Fig11::run(&lab);
        assert_eq!(fig.rows.len(), 3);
        for r in &fig.rows {
            // The extra penalty must cost performance...
            assert!(
                r.collapsing_penalty3 < r.ipc_of(SchemeKind::CollapsingBuffer),
                "{}: penalty-3 {} not below penalty-2 {}",
                r.machine,
                r.collapsing_penalty3,
                r.ipc_of(SchemeKind::CollapsingBuffer)
            );
            // ...and bring the collapsing buffer down to (or below) roughly
            // banked-sequential territory, as Figure 11 shows.
            let banked = r.ipc_of(SchemeKind::BankedSequential);
            assert!(
                r.collapsing_penalty3 < banked * 1.03,
                "{}: penalty-3 collapsing {} should not clearly beat banked {}",
                r.machine,
                r.collapsing_penalty3,
                banked
            );
        }
    }
}
