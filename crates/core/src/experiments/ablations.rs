//! Ablations of the design choices DESIGN.md calls out: BTB capacity,
//! branch-speculation depth, and the return-address-stack extension, each
//! swept on the most aggressive machine (P112) where fetch pressure is
//! highest. These quantify *why* the paper's fixed parameters are reasonable
//! and how sensitive the headline results are to them.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::Lab;
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Parameter value (entries, depth, …).
    pub value: u64,
    /// Harmonic-mean integer IPC of the *sequential* scheme.
    pub sequential: f64,
    /// Harmonic-mean integer IPC of the *collapsing buffer*.
    pub collapsing: f64,
}

/// A named parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Parameter name.
    pub name: &'static str,
    /// The paper's value of this parameter on P112.
    pub paper_value: u64,
    /// Sweep rows in ascending parameter order.
    pub rows: Vec<AblationRow>,
}

impl Sweep {
    /// The row at the paper's parameter value.
    ///
    /// # Panics
    ///
    /// Panics if the sweep does not include the paper point (a driver bug).
    #[must_use]
    pub fn paper_row(&self) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.value == self.paper_value)
            .expect("sweep includes the paper's value")
    }
}

/// The ablation study: three sweeps on P112 integer workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablations {
    /// BTB capacity sweep (entries).
    pub btb: Sweep,
    /// Speculation-depth sweep (unresolved branches).
    pub spec_depth: Sweep,
    /// Return-address-stack sweep (entries; 0 = the paper's machines).
    pub ras: Sweep,
}

impl Ablations {
    /// Runs all three sweeps.
    pub fn run(lab: &mut Lab) -> Self {
        let benches: Vec<_> = lab.class(WorkloadClass::Int).into_iter().cloned().collect();
        let mean = |lab: &Lab, m: &MachineModel, s: SchemeKind| {
            let v: Vec<f64> = benches
                .iter()
                .map(|w| lab.run_natural(m, s, w).ipc())
                .collect();
            harmonic_mean(&v)
        };
        let point = |lab: &Lab, m: &MachineModel, value: u64| AblationRow {
            value,
            sequential: mean(lab, m, SchemeKind::Sequential),
            collapsing: mean(lab, m, SchemeKind::CollapsingBuffer),
        };

        let base = MachineModel::p112();
        let btb = Sweep {
            name: "BTB entries",
            paper_value: 1024,
            rows: [64usize, 256, 1024, 4096]
                .into_iter()
                .map(|entries| {
                    let mut m = base.clone();
                    m.btb_entries = entries;
                    point(lab, &m, entries as u64)
                })
                .collect(),
        };
        let spec_depth = Sweep {
            name: "speculation depth",
            paper_value: 6,
            rows: [1u32, 2, 4, 6, 12]
                .into_iter()
                .map(|d| {
                    let mut m = base.clone();
                    m.spec_depth = d;
                    point(lab, &m, u64::from(d))
                })
                .collect(),
        };
        let ras = Sweep {
            name: "RAS entries",
            paper_value: 0,
            rows: [0u32, 4, 16]
                .into_iter()
                .map(|n| point(lab, &base.clone().with_ras(n), u64::from(n)))
                .collect(),
        };
        Ablations {
            btb,
            spec_depth,
            ras,
        }
    }

    /// All three sweeps.
    #[must_use]
    pub fn sweeps(&self) -> [&Sweep; 3] {
        [&self.btb, &self.spec_depth, &self.ras]
    }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations on P112 (integer, harmonic-mean IPC)")?;
        for sweep in self.sweeps() {
            writeln!(f, "\n{} (paper: {}):", sweep.name, sweep.paper_value)?;
            writeln!(
                f,
                "{:>10} {:>12} {:>12}",
                "value", "sequential", "collapsing"
            )?;
            for r in &sweep.rows {
                let mark = if r.value == sweep.paper_value {
                    " <- paper"
                } else {
                    ""
                };
                writeln!(
                    f,
                    "{:>10} {:>12.3} {:>12.3}{mark}",
                    r.value, r.sequential, r.collapsing
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn ablation_trends_are_sane() {
        let mut lab = Lab::new(ExpConfig::quick());
        let a = Ablations::run(&mut lab);

        // More BTB never hurts much; a 64-entry BTB clearly hurts.
        let btb = &a.btb.rows;
        assert!(btb.first().expect("rows").collapsing < btb.last().expect("rows").collapsing);
        assert!(
            a.btb.paper_row().collapsing > 0.97 * btb.last().expect("rows").collapsing,
            "the paper's 1024 entries should be near the asymptote"
        );

        // Speculation depth 1 strangles fetch; the paper's 6 is near the top.
        let sd = &a.spec_depth.rows;
        assert!(sd[0].collapsing < sd.last().expect("rows").collapsing);
        assert!(a.spec_depth.paper_row().collapsing > 0.95 * sd.last().expect("rows").collapsing);

        // A RAS only helps (or is neutral).
        let ras = &a.ras.rows;
        assert!(ras.last().expect("rows").collapsing >= ras[0].collapsing - 0.02);
    }
}
