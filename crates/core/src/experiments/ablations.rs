//! Ablations of the design choices DESIGN.md calls out: BTB capacity,
//! branch-speculation depth, and the return-address-stack extension, each
//! swept on the most aggressive machine (P112) where fetch pressure is
//! highest. These quantify *why* the paper's fixed parameters are reasonable
//! and how sensitive the headline results are to them.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Parameter value (entries, depth, …).
    pub value: u64,
    /// Harmonic-mean integer IPC of the *sequential* scheme.
    pub sequential: f64,
    /// Harmonic-mean integer IPC of the *collapsing buffer*.
    pub collapsing: f64,
}

/// A named parameter sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    /// Parameter name.
    pub name: &'static str,
    /// The paper's value of this parameter on P112.
    pub paper_value: u64,
    /// Sweep rows in ascending parameter order.
    pub rows: Vec<AblationRow>,
}

impl Sweep {
    /// The row at the paper's parameter value.
    ///
    /// # Panics
    ///
    /// Panics if the sweep does not include the paper point (a driver bug).
    #[must_use]
    pub fn paper_row(&self) -> &AblationRow {
        self.rows
            .iter()
            .find(|r| r.value == self.paper_value)
            .expect("sweep includes the paper's value")
    }
}

/// The ablation study: three sweeps on P112 integer workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablations {
    /// BTB capacity sweep (entries).
    pub btb: Sweep,
    /// Speculation-depth sweep (unresolved branches).
    pub spec_depth: Sweep,
    /// Return-address-stack sweep (entries; 0 = the paper's machines).
    pub ras: Sweep,
}

impl Ablations {
    /// Runs all three sweeps as one flat job grid. Every machine variant
    /// shares the P112 block size, so all runs draw on the same cached
    /// traces — only the simulations differ per sweep point.
    pub fn run(lab: &Lab) -> Self {
        let names = lab.class_names(WorkloadClass::Int);
        let n = names.len();
        let base = MachineModel::p112();

        // Sweep-point machine variants, in (btb, spec_depth, ras) order.
        let btb_values: [u64; 4] = [64, 256, 1024, 4096];
        let spec_values: [u32; 5] = [1, 2, 4, 6, 12];
        let ras_values: [u32; 3] = [0, 4, 16];
        let mut points: Vec<(u64, MachineModel)> = Vec::new();
        for entries in btb_values {
            let mut m = base.clone();
            m.btb_entries = entries as usize;
            points.push((entries, m));
        }
        for d in spec_values {
            let mut m = base.clone();
            m.spec_depth = d;
            points.push((u64::from(d), m));
        }
        for r in ras_values {
            points.push((u64::from(r), base.clone().with_ras(r)));
        }

        let mut jobs = Vec::new();
        for (_, machine) in &points {
            for scheme in [SchemeKind::Sequential, SchemeKind::CollapsingBuffer] {
                for &bench in &names {
                    jobs.push((machine.clone(), scheme, bench));
                }
            }
        }
        let ipcs = lab.runner().run(&jobs, |(machine, scheme, bench)| {
            lab.run(machine, *scheme, bench, LayoutVariant::Natural)
                .ipc()
        });

        let mut idx = 0;
        let take_mean = |idx: &mut usize| {
            let m = harmonic_mean(&ipcs[*idx..*idx + n]);
            *idx += n;
            m
        };
        let mut rows: Vec<AblationRow> = points
            .iter()
            .map(|&(value, _)| AblationRow {
                value,
                sequential: take_mean(&mut idx),
                collapsing: take_mean(&mut idx),
            })
            .collect();

        let ras = Sweep {
            name: "RAS entries",
            paper_value: 0,
            rows: rows.split_off(btb_values.len() + spec_values.len()),
        };
        let spec_depth = Sweep {
            name: "speculation depth",
            paper_value: 6,
            rows: rows.split_off(btb_values.len()),
        };
        let btb = Sweep {
            name: "BTB entries",
            paper_value: 1024,
            rows,
        };
        Ablations {
            btb,
            spec_depth,
            ras,
        }
    }

    /// All three sweeps.
    #[must_use]
    pub fn sweeps(&self) -> [&Sweep; 3] {
        [&self.btb, &self.spec_depth, &self.ras]
    }
}

impl fmt::Display for Ablations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Ablations on P112 (integer, harmonic-mean IPC)")?;
        for sweep in self.sweeps() {
            writeln!(f, "\n{} (paper: {}):", sweep.name, sweep.paper_value)?;
            writeln!(
                f,
                "{:>10} {:>12} {:>12}",
                "value", "sequential", "collapsing"
            )?;
            for r in &sweep.rows {
                let mark = if r.value == sweep.paper_value {
                    " <- paper"
                } else {
                    ""
                };
                writeln!(
                    f,
                    "{:>10} {:>12.3} {:>12.3}{mark}",
                    r.value, r.sequential, r.collapsing
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn ablation_trends_are_sane() {
        let lab = Lab::new(ExpConfig::quick());
        let a = Ablations::run(&lab);

        // More BTB never hurts much; a 64-entry BTB clearly hurts.
        let btb = &a.btb.rows;
        assert!(btb.first().expect("rows").collapsing < btb.last().expect("rows").collapsing);
        assert!(
            a.btb.paper_row().collapsing > 0.97 * btb.last().expect("rows").collapsing,
            "the paper's 1024 entries should be near the asymptote"
        );

        // Speculation depth 1 strangles fetch; the paper's 6 is near the top.
        let sd = &a.spec_depth.rows;
        assert!(sd[0].collapsing < sd.last().expect("rows").collapsing);
        assert!(a.spec_depth.paper_row().collapsing > 0.95 * sd.last().expect("rows").collapsing);

        // A RAS only helps (or is neutral).
        let ras = &a.ras.rows;
        assert!(ras.last().expect("rows").collapsing >= ras[0].collapsing - 0.02);
    }
}
