//! Figure 13: the padding optimizations applied to the *sequential* scheme —
//! `pad-all` on the unordered layout, `pad-trace` on the reordered layout,
//! against the plain and perfect bounds.

use std::fmt;

use fetchmech_compiler::layout_pad_all;
use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::Lab;
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One machine group of Figure 13 (integer benchmarks, harmonic-mean IPC of
/// the *sequential* scheme under each code layout).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Machine model name.
    pub machine: String,
    /// Unordered layout, no padding.
    pub unordered: f64,
    /// Unordered layout with `pad-all`.
    pub pad_all: f64,
    /// Reordered layout, no padding.
    pub reordered: f64,
    /// Reordered layout with `pad-trace`.
    pub pad_trace: f64,
    /// Perfect fetch on the unordered layout (reference bound).
    pub perfect_unordered: f64,
}

/// The full Figure 13 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// One row per machine.
    pub rows: Vec<Fig13Row>,
}

impl Fig13 {
    /// Runs the experiment.
    ///
    /// # Panics
    ///
    /// Panics if a layout fails to build (an internal invariant).
    pub fn run(lab: &mut Lab) -> Self {
        let names: Vec<&'static str> = lab
            .class(WorkloadClass::Int)
            .into_iter()
            .map(|w| w.spec.name)
            .collect();
        let mut rows = Vec::new();
        for machine in MachineModel::paper_models() {
            let bs = machine.block_bytes;
            let mut unordered = Vec::new();
            let mut pad_all = Vec::new();
            let mut reordered = Vec::new();
            let mut pad_trace = Vec::new();
            let mut perfect = Vec::new();
            for &name in &names {
                let w = lab.bench(name).clone();
                unordered.push(lab.run_natural(&machine, SchemeKind::Sequential, &w).ipc());
                perfect.push(lab.run_natural(&machine, SchemeKind::Perfect, &w).ipc());

                let all_layout = layout_pad_all(&w.program, bs).expect("pad-all layout");
                pad_all.push(
                    lab.run_layout(&machine, SchemeKind::Sequential, &w, &all_layout)
                        .ipc(),
                );

                let rw = lab.reordered_workload(name);
                let r = lab.reordered(name).clone();
                let rl = r.layout(bs).expect("reordered layout");
                reordered.push(
                    lab.run_layout(&machine, SchemeKind::Sequential, &rw, &rl)
                        .ipc(),
                );
                let tl = r.layout_pad_trace(bs).expect("pad-trace layout");
                pad_trace.push(
                    lab.run_layout(&machine, SchemeKind::Sequential, &rw, &tl)
                        .ipc(),
                );
            }
            rows.push(Fig13Row {
                machine: machine.name.clone(),
                unordered: harmonic_mean(&unordered),
                pad_all: harmonic_mean(&pad_all),
                reordered: harmonic_mean(&reordered),
                pad_trace: harmonic_mean(&pad_trace),
                perfect_unordered: harmonic_mean(&perfect),
            });
        }
        Fig13 { rows }
    }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13: pad-all / pad-trace for sequential (integer, harmonic-mean IPC)"
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "machine", "unordered", "pad-all", "reordered", "pad-trace", "perf(unord)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.3}",
                r.machine, r.unordered, r.pad_all, r.reordered, r.pad_trace, r.perfect_unordered
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn fig13_padding_effects_match_paper() {
        let mut lab = Lab::new(ExpConfig::quick());
        let fig = Fig13::run(&mut lab);
        assert_eq!(fig.rows.len(), 3);
        for r in &fig.rows {
            // Reordering is the big win for sequential.
            assert!(
                r.reordered > r.unordered,
                "{}: reordered {} <= unordered {}",
                r.machine,
                r.reordered,
                r.unordered
            );
            // pad-trace is at worst a small perturbation of reordered.
            assert!(
                r.pad_trace > 0.9 * r.reordered,
                "{}: pad-trace {} collapsed relative to reordered {}",
                r.machine,
                r.pad_trace,
                r.reordered
            );
        }
        // pad-all hurts at the large block sizes (P112), where its code
        // expansion destroys cache locality and fetch density.
        let p112 = &fig.rows[2];
        assert!(
            p112.pad_all < p112.reordered,
            "P112: pad-all {} should trail reordered {}",
            p112.pad_all,
            p112.reordered
        );
    }
}
