//! Figure 13: the padding optimizations applied to the *sequential* scheme —
//! `pad-all` on the unordered layout, `pad-trace` on the reordered layout,
//! against the plain and perfect bounds.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One machine group of Figure 13 (integer benchmarks, harmonic-mean IPC of
/// the *sequential* scheme under each code layout).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13Row {
    /// Machine model name.
    pub machine: String,
    /// Unordered layout, no padding.
    pub unordered: f64,
    /// Unordered layout with `pad-all`.
    pub pad_all: f64,
    /// Reordered layout, no padding.
    pub reordered: f64,
    /// Reordered layout with `pad-trace`.
    pub pad_trace: f64,
    /// Perfect fetch on the unordered layout (reference bound).
    pub perfect_unordered: f64,
}

/// The full Figure 13 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig13 {
    /// One row per machine.
    pub rows: Vec<Fig13Row>,
}

impl Fig13 {
    /// Runs the experiment. Every (scheme, layout-variant) cell of the grid —
    /// including the pad-all and pad-trace images — draws its layout and
    /// trace from the lab's shared caches.
    ///
    /// # Panics
    ///
    /// Panics if a layout fails to build (an internal invariant).
    pub fn run(lab: &Lab) -> Self {
        let machines = MachineModel::paper_models();
        let names = lab.class_names(WorkloadClass::Int);
        let n = names.len();
        let cells = [
            (SchemeKind::Sequential, LayoutVariant::Natural),
            (SchemeKind::Sequential, LayoutVariant::PadAll),
            (SchemeKind::Sequential, LayoutVariant::Reordered),
            (SchemeKind::Sequential, LayoutVariant::PadTrace),
            (SchemeKind::Perfect, LayoutVariant::Natural),
        ];
        let mut jobs = Vec::new();
        for machine in &machines {
            for (scheme, variant) in cells {
                for &bench in &names {
                    jobs.push((machine.clone(), scheme, bench, variant));
                }
            }
        }
        let ipcs = lab
            .runner()
            .run(&jobs, |(machine, scheme, bench, variant)| {
                lab.run(machine, *scheme, bench, *variant).ipc()
            });

        let mut rows = Vec::new();
        let mut idx = 0;
        let take_mean = |idx: &mut usize| {
            let m = harmonic_mean(&ipcs[*idx..*idx + n]);
            *idx += n;
            m
        };
        for machine in &machines {
            rows.push(Fig13Row {
                machine: machine.name.clone(),
                unordered: take_mean(&mut idx),
                pad_all: take_mean(&mut idx),
                reordered: take_mean(&mut idx),
                pad_trace: take_mean(&mut idx),
                perfect_unordered: take_mean(&mut idx),
            });
        }
        Fig13 { rows }
    }
}

impl fmt::Display for Fig13 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 13: pad-all / pad-trace for sequential (integer, harmonic-mean IPC)"
        )?;
        writeln!(
            f,
            "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
            "machine", "unordered", "pad-all", "reordered", "pad-trace", "perf(unord)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.3}",
                r.machine, r.unordered, r.pad_all, r.reordered, r.pad_trace, r.perfect_unordered
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn fig13_padding_effects_match_paper() {
        let lab = Lab::new(ExpConfig::quick());
        let fig = Fig13::run(&lab);
        assert_eq!(fig.rows.len(), 3);
        for r in &fig.rows {
            // Reordering is the big win for sequential.
            assert!(
                r.reordered > r.unordered,
                "{}: reordered {} <= unordered {}",
                r.machine,
                r.reordered,
                r.unordered
            );
            // pad-trace is at worst a small perturbation of reordered.
            assert!(
                r.pad_trace > 0.9 * r.reordered,
                "{}: pad-trace {} collapsed relative to reordered {}",
                r.machine,
                r.pad_trace,
                r.reordered
            );
        }
        // pad-all hurts at the large block sizes (P112), where its code
        // expansion destroys cache locality and fetch density.
        let p112 = &fig.rows[2];
        assert!(
            p112.pad_all < p112.reordered,
            "P112: pad-all {} should trail reordered {}",
            p112.pad_all,
            p112.reordered
        );
    }
}
