//! Table 3: the percentage reduction in dynamic taken branches achieved by
//! code reordering, per integer benchmark — the mechanism behind Figure 12.

use std::fmt;

use fetchmech_isa::{DynInst, OpClass};
use fetchmech_workloads::WorkloadClass;

use super::{Lab, LayoutVariant};

/// One benchmark row of Table 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// Dynamic taken branches per useful instruction, natural layout.
    pub before: f64,
    /// Dynamic taken branches per useful instruction, reordered layout.
    pub after: f64,
}

impl Table3Row {
    /// Percentage reduction in taken branches.
    #[must_use]
    pub fn reduction_pct(&self) -> f64 {
        if self.before == 0.0 {
            0.0
        } else {
            100.0 * (1.0 - self.after / self.before)
        }
    }
}

/// The full Table 3 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3 {
    /// One row per integer benchmark.
    pub rows: Vec<Table3Row>,
}

impl Table3 {
    /// Runs the experiment.
    ///
    /// Rates are normalized per *useful* (non-control, non-nop) instruction,
    /// which makes the two layouts comparable even though reordering changes
    /// the dynamic instruction count (elided jumps disappear from the
    /// stream).
    ///
    /// # Panics
    ///
    /// Panics if a reordered layout fails to build (an internal invariant).
    pub fn run(lab: &Lab) -> Self {
        let names = lab.class_names(WorkloadClass::Int);
        let rate = |trace: &[DynInst]| {
            let mut taken = 0u64;
            let mut useful = 0u64;
            for i in trace {
                taken += u64::from(i.is_taken_control());
                useful += u64::from(i.ctrl.is_none() && i.op != OpClass::Nop);
            }
            taken as f64 / useful.max(1) as f64
        };
        let mut jobs = Vec::new();
        for &bench in &names {
            for variant in [LayoutVariant::Natural, LayoutVariant::Reordered] {
                jobs.push((bench, variant));
            }
        }
        let rates = lab.runner().run(&jobs, |&(bench, variant)| {
            rate(&lab.test_trace(bench, variant, 16))
        });

        let rows = names
            .iter()
            .zip(rates.chunks_exact(2))
            .map(|(&bench, pair)| Table3Row {
                bench,
                before: pair[0],
                after: pair[1],
            })
            .collect();
        Table3 { rows }
    }

    /// Row for one benchmark.
    #[must_use]
    pub fn row(&self, bench: &str) -> Option<&Table3Row> {
        self.rows.iter().find(|r| r.bench == bench)
    }
}

impl fmt::Display for Table3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 3: % reduction in taken branches due to code reordering"
        )?;
        writeln!(
            f,
            "{:<10} {:>12} {:>12} {:>11}",
            "benchmark", "before/inst", "after/inst", "reduction"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>12.4} {:>12.4} {:>10.2}%",
                r.bench,
                r.before,
                r.after,
                r.reduction_pct()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn table3_reordering_removes_taken_branches() {
        let lab = Lab::new(ExpConfig::quick());
        let t = Table3::run(&lab);
        assert_eq!(t.rows.len(), 9);
        for r in &t.rows {
            assert!(
                r.reduction_pct() > 0.0,
                "{}: reordering must reduce taken branches ({} -> {})",
                r.bench,
                r.before,
                r.after
            );
            assert!(
                r.reduction_pct() < 80.0,
                "{}: implausibly large reduction",
                r.bench
            );
        }
        // The paper reports reductions of roughly 15–45%; the majority of
        // benchmarks should clear 15%.
        let big = t.rows.iter().filter(|r| r.reduction_pct() >= 15.0).count();
        assert!(big >= 5, "only {big} benchmarks above 15% reduction");
    }
}
