//! Figure 3: harmonic-mean IPC of *sequential* versus *perfect* for the
//! integer and floating-point benchmark classes on P14, P18, and P112 —
//! the motivation figure: how much performance better fetching could buy.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{class_label, Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One bar pair of Figure 3.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3Row {
    /// Machine model name.
    pub machine: String,
    /// Benchmark class.
    pub class: WorkloadClass,
    /// Harmonic-mean IPC of the *sequential* scheme.
    pub sequential: f64,
    /// Harmonic-mean IPC of the *perfect* bound.
    pub perfect: f64,
}

impl Fig3Row {
    /// Fractional headroom perfect fetching has over sequential.
    #[must_use]
    pub fn headroom(&self) -> f64 {
        self.perfect / self.sequential - 1.0
    }
}

/// The full Figure 3 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// One row per (machine, class).
    pub rows: Vec<Fig3Row>,
}

impl Fig3 {
    /// Runs the experiment: the (machine × class × benchmark × scheme) grid
    /// is expanded into independent jobs, executed on the lab's worker pool,
    /// and folded back in deterministic grid order.
    pub fn run(lab: &Lab) -> Self {
        let machines = MachineModel::paper_models();
        let classes = [WorkloadClass::Int, WorkloadClass::Fp];
        let mut jobs = Vec::new();
        for machine in &machines {
            for class in classes {
                for bench in lab.class_names(class) {
                    for scheme in [SchemeKind::Sequential, SchemeKind::Perfect] {
                        jobs.push((machine.clone(), scheme, bench));
                    }
                }
            }
        }
        let ipcs = lab.runner().run(&jobs, |(machine, scheme, bench)| {
            lab.run(machine, *scheme, bench, LayoutVariant::Natural)
                .ipc()
        });

        let mut rows = Vec::new();
        let mut idx = 0;
        for machine in &machines {
            for class in classes {
                let n = lab.class_names(class).len();
                let mut seq = Vec::with_capacity(n);
                let mut per = Vec::with_capacity(n);
                for _ in 0..n {
                    seq.push(ipcs[idx]);
                    per.push(ipcs[idx + 1]);
                    idx += 2;
                }
                rows.push(Fig3Row {
                    machine: machine.name.clone(),
                    class,
                    sequential: harmonic_mean(&seq),
                    perfect: harmonic_mean(&per),
                });
            }
        }
        Fig3 { rows }
    }

    /// Rows for one benchmark class, in machine order.
    #[must_use]
    pub fn class_rows(&self, class: WorkloadClass) -> Vec<&Fig3Row> {
        self.rows.iter().filter(|r| r.class == class).collect()
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Figure 3: sequential vs perfect (harmonic-mean IPC)")?;
        writeln!(
            f,
            "{:<16} {:>8} {:>10} {:>9} {:>9}",
            "class", "machine", "sequential", "perfect", "headroom"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<16} {:>8} {:>10.3} {:>9.3} {:>8.1}%",
                class_label(r.class),
                r.machine,
                r.sequential,
                r.perfect,
                100.0 * r.headroom()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn fig3_shape_matches_paper() {
        let lab = Lab::new(ExpConfig::quick());
        let fig = Fig3::run(&lab);
        assert_eq!(fig.rows.len(), 6);
        for r in &fig.rows {
            assert!(
                r.perfect > r.sequential,
                "{} {}: perfect {} <= sequential {}",
                r.machine,
                class_label(r.class),
                r.perfect,
                r.sequential
            );
        }
        // The headroom grows with issue rate for integer code.
        let int = fig.class_rows(WorkloadClass::Int);
        assert!(
            int[2].headroom() > int[0].headroom(),
            "headroom must grow P14 -> P112"
        );
        // FP headroom at P14 is the smallest headroom of all (the paper's
        // "possible exception" of FP on P14).
        let fp = fig.class_rows(WorkloadClass::Fp);
        let min = fig
            .rows
            .iter()
            .map(Fig3Row::headroom)
            .fold(f64::INFINITY, f64::min);
        assert!((fp[0].headroom() - min).abs() < 1e-9 || fp[0].headroom() < 0.25);
        // Display renders every machine name.
        let text = fig.to_string();
        for m in ["P14", "P18", "P112"] {
            assert!(text.contains(m));
        }
    }
}
