//! Extension (the paper's concluding remarks): *"It remains to be seen what
//! effect branch prediction accuracy has on the misprediction penalty when
//! designing a pipelined collapsing buffer… Depending on the complexity of
//! this branch prediction hardware, a shifter-based implementation of
//! collapsing buffer may be viable."*
//!
//! This experiment swaps the BTB's 2-bit counters for McFarling's combining
//! ("tournament") predictor — the paper's own reference [11] — and re-runs
//! the Figure 11 comparison: banked sequential versus the collapsing buffer
//! at two- and three-cycle fetch penalties. Better prediction means fewer
//! redirects, so the extra penalty cycle matters less — quantifying how much
//! predictor accuracy buys the cheaper shifter implementation.

use std::fmt;

use fetchmech_bpred::{GshareConfig, PredictorKind};
use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;
use crate::sim::SimResult;

/// Results for one machine under one predictor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtPredictorsRow {
    /// Machine model name.
    pub machine: String,
    /// Predictor used.
    pub predictor: PredictorKind,
    /// Mean misprediction rate over all control transfers.
    pub mispredict_rate: f64,
    /// Mean *direction* misprediction rate over conditional branches — the
    /// component the predictor choice actually changes.
    pub dir_mispredict_rate: f64,
    /// Harmonic-mean IPC of banked sequential (2-cycle penalty).
    pub banked: f64,
    /// Harmonic-mean IPC of the collapsing buffer (crossbar, 2-cycle).
    pub collapsing_p2: f64,
    /// Harmonic-mean IPC of the collapsing buffer (shifter, 3-cycle).
    pub collapsing_p3: f64,
}

impl ExtPredictorsRow {
    /// `true` if the shifter (3-cycle) collapsing buffer beats banked
    /// sequential — the viability question the paper poses.
    #[must_use]
    pub fn shifter_viable(&self) -> bool {
        self.collapsing_p3 > self.banked
    }
}

/// The predictor-extension data set (integer benchmarks).
#[derive(Debug, Clone, PartialEq)]
pub struct ExtPredictors {
    /// Two rows per machine: 2-bit BTB, then gshare.
    pub rows: Vec<ExtPredictorsRow>,
}

impl ExtPredictors {
    /// Runs the experiment. Each (machine, predictor) cell is three
    /// per-benchmark job groups — banked, crossbar collapsing (2-cycle),
    /// shifter collapsing (3-cycle) — and the crossbar runs supply both the
    /// misprediction rates and the IPC mean from a single simulation each.
    pub fn run(lab: &Lab) -> Self {
        let names = lab.class_names(WorkloadClass::Int);
        let n = names.len();
        let predictors = [
            PredictorKind::TwoBitBtb,
            PredictorKind::Tournament(GshareConfig::default_4k()),
        ];
        let mut jobs = Vec::new();
        for base in MachineModel::paper_models() {
            for predictor in predictors {
                let machine = base.clone().with_predictor(predictor);
                let shifter = machine.clone().with_fetch_penalty(3);
                let groups = [
                    (&machine, SchemeKind::BankedSequential),
                    (&machine, SchemeKind::CollapsingBuffer),
                    (&shifter, SchemeKind::CollapsingBuffer),
                ];
                for (m, scheme) in groups {
                    for &bench in &names {
                        jobs.push((m.clone(), scheme, bench));
                    }
                }
            }
        }
        let results = lab.runner().run(&jobs, |(machine, scheme, bench)| {
            lab.run(machine, *scheme, bench, LayoutVariant::Natural)
        });

        let mean_ipc = |runs: &[SimResult]| {
            let v: Vec<f64> = runs.iter().map(SimResult::ipc).collect();
            harmonic_mean(&v)
        };
        let mut rows = Vec::new();
        let mut idx = 0;
        for base in MachineModel::paper_models() {
            for predictor in predictors {
                let banked_runs = &results[idx..idx + n];
                let p2_runs = &results[idx + n..idx + 2 * n];
                let p3_runs = &results[idx + 2 * n..idx + 3 * n];
                idx += 3 * n;
                rows.push(ExtPredictorsRow {
                    machine: base.name.clone(),
                    predictor,
                    mispredict_rate: p2_runs
                        .iter()
                        .map(|r| r.fetch.mispredict_rate())
                        .sum::<f64>()
                        / n as f64,
                    dir_mispredict_rate: p2_runs
                        .iter()
                        .map(|r| r.fetch.cond_dir_mispredict_rate())
                        .sum::<f64>()
                        / n as f64,
                    banked: mean_ipc(banked_runs),
                    collapsing_p2: mean_ipc(p2_runs),
                    collapsing_p3: mean_ipc(p3_runs),
                });
            }
        }
        ExtPredictors { rows }
    }

    /// The row for one machine and predictor.
    #[must_use]
    pub fn row(&self, machine: &str, predictor: PredictorKind) -> Option<&ExtPredictorsRow> {
        self.rows
            .iter()
            .find(|r| r.machine == machine && r.predictor == predictor)
    }
}

impl fmt::Display for ExtPredictors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Extension: predictor accuracy vs the shifter collapsing buffer (integer, harmonic-mean IPC)"
        )?;
        writeln!(
            f,
            "{:>8} {:>16} {:>10} {:>10} {:>9} {:>14} {:>14} {:>9}",
            "machine",
            "predictor",
            "mispred%",
            "dirmiss%",
            "banked",
            "collapsing(p2)",
            "collapsing(p3)",
            "viable?"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>8} {:>16} {:>9.1}% {:>9.1}% {:>9.3} {:>14.3} {:>14.3} {:>9}",
                r.machine,
                r.predictor.to_string(),
                100.0 * r.mispredict_rate,
                100.0 * r.dir_mispredict_rate,
                r.banked,
                r.collapsing_p2,
                r.collapsing_p3,
                if r.shifter_viable() { "yes" } else { "no" }
            )?;
        }
        writeln!(
            f,
            "(viable? = does the cheaper shifter implementation still beat banked sequential)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn tournament_reduces_mispredictions_and_helps_the_shifter() {
        let lab = Lab::new(ExpConfig::quick());
        let ext = ExtPredictors::run(&lab);
        assert_eq!(ext.rows.len(), 6);
        for machine in ["P14", "P18", "P112"] {
            let twobit = ext.row(machine, PredictorKind::TwoBitBtb).expect("row");
            let tourney = ext
                .row(
                    machine,
                    PredictorKind::Tournament(GshareConfig::default_4k()),
                )
                .expect("row");
            assert!(
                tourney.dir_mispredict_rate < twobit.dir_mispredict_rate,
                "{machine}: tournament direction-miss {:.3} should beat 2-bit {:.3}",
                tourney.dir_mispredict_rate,
                twobit.dir_mispredict_rate
            );
            // Better prediction lifts IPC across the board.
            assert!(tourney.collapsing_p2 > twobit.collapsing_p2, "{machine}");
        }
    }
}
