//! Experiment drivers: one per table and figure of the paper's evaluation.
//!
//! Each driver returns a plain-data result type with a `Display` impl that
//! renders the same rows/series the paper reports; the `fetchmech-bench`
//! crate's `report` binary prints them, its criterion benches time them, and
//! the integration tests assert their qualitative shape (who wins, how the
//! trend moves with issue rate).
//!
//! All drivers hang off [`Lab`], which lazily generates and caches the
//! benchmark suite, profiles, and reordered programs so that a full report
//! run does each expensive step once.

use std::collections::HashMap;

use fetchmech_compiler::{reorder, Profile, Reordered, TraceSelectConfig};
use fetchmech_isa::{DynInst, Layout, LayoutOptions};
use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::{suite, InputId, Workload, WorkloadClass};

use crate::scheme::SchemeKind;
use crate::sim::{measure_eir, simulate, EirResult, SimResult};

mod ablations;
mod ext_predictors;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig3;
mod fig9;
mod table2;
mod table3;
mod table4;

pub use ablations::{AblationRow, Ablations, Sweep};
pub use ext_predictors::{ExtPredictors, ExtPredictorsRow};
pub use fig10::{Fig10, Fig10Row};
pub use fig11::{Fig11, Fig11Row};
pub use fig12::{Fig12, Fig12Row};
pub use fig13::{Fig13, Fig13Row};
pub use fig3::{Fig3, Fig3Row};
pub use fig9::{Fig9, Fig9Row};
pub use table2::{Table2, Table2Row};
pub use table3::{Table3, Table3Row};
pub use table4::{Table4, Table4Row};

/// Sizing knobs for the experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// Dynamic instructions simulated per (benchmark, machine, scheme) run.
    pub trace_len: u64,
    /// Dynamic instructions per profiling input.
    pub profile_len: u64,
}

impl ExpConfig {
    /// Full-length runs used by the `report` binary and EXPERIMENTS.md.
    #[must_use]
    pub fn full() -> Self {
        Self {
            trace_len: 300_000,
            profile_len: 60_000,
        }
    }

    /// Reduced runs for unit tests and criterion benches.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            trace_len: 40_000,
            profile_len: 15_000,
        }
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// The experiment laboratory: benchmark suite plus lazily-computed profiles
/// and reordered programs, shared across all drivers.
#[derive(Debug)]
pub struct Lab {
    cfg: ExpConfig,
    benchmarks: Vec<Workload>,
    profiles: HashMap<&'static str, Profile>,
    reordered: HashMap<&'static str, Reordered>,
}

impl Lab {
    /// Creates a lab over the full fifteen-benchmark suite.
    ///
    /// In debug builds this also installs the `fetchmech-analysis` verifier
    /// hooks, so every program, layout, profile, trace selection, and reorder
    /// any driver produces is checked at its construction site.
    #[must_use]
    pub fn new(cfg: ExpConfig) -> Self {
        if cfg!(debug_assertions) {
            fetchmech_analysis::install_debug_hooks();
        }
        Self {
            cfg,
            benchmarks: suite::full_suite(),
            profiles: HashMap::new(),
            reordered: HashMap::new(),
        }
    }

    /// Returns the configuration.
    #[must_use]
    pub fn config(&self) -> ExpConfig {
        self.cfg
    }

    /// All benchmarks of the given class.
    #[must_use]
    pub fn class(&self, class: WorkloadClass) -> Vec<&Workload> {
        self.benchmarks
            .iter()
            .filter(|w| w.spec.class == class)
            .collect()
    }

    /// A benchmark by name.
    ///
    /// # Panics
    ///
    /// Panics on unknown names (driver-internal use only).
    #[must_use]
    pub fn bench(&self, name: &str) -> &Workload {
        self.benchmarks
            .iter()
            .find(|w| w.spec.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
    }

    /// The profile for `name`, collected on the five training inputs.
    pub fn profile(&mut self, name: &'static str) -> &Profile {
        if !self.profiles.contains_key(name) {
            let w = self.bench(name).clone();
            let p = Profile::collect(&w, &InputId::PROFILE, self.cfg.profile_len);
            self.profiles.insert(name, p);
        }
        &self.profiles[name]
    }

    /// The reordered (trace-laid-out) form of `name`.
    pub fn reordered(&mut self, name: &'static str) -> &Reordered {
        if !self.reordered.contains_key(name) {
            let profile = self.profile(name).clone();
            let w = self.bench(name);
            let r = reorder(&w.program, &profile, &TraceSelectConfig::default());
            self.reordered.insert(name, r);
        }
        &self.reordered[name]
    }

    /// A reordered benchmark as a [`Workload`] (same behaviours, edited
    /// program), for executing against a reordered layout.
    pub fn reordered_workload(&mut self, name: &'static str) -> Workload {
        let r = self.reordered(name).program.clone();
        let w = self.bench(name);
        Workload {
            spec: w.spec.clone(),
            program: r,
            behaviors: w.behaviors.clone(),
        }
    }

    /// Collects the test-input trace of `workload` under `layout`.
    #[must_use]
    pub fn trace(&self, workload: &Workload, layout: &Layout) -> Vec<DynInst> {
        workload
            .executor(layout, InputId::TEST, self.cfg.trace_len)
            .collect()
    }

    /// Runs one full simulation on the natural layout.
    pub fn run_natural(
        &self,
        machine: &MachineModel,
        scheme: SchemeKind,
        workload: &Workload,
    ) -> SimResult {
        let layout = Layout::natural(&workload.program, LayoutOptions::new(machine.block_bytes))
            .expect("natural layout");
        let trace = self.trace(workload, &layout);
        simulate(machine, scheme, trace.into_iter())
    }

    /// Runs one full simulation on an explicit layout of `workload`.
    pub fn run_layout(
        &self,
        machine: &MachineModel,
        scheme: SchemeKind,
        workload: &Workload,
        layout: &Layout,
    ) -> SimResult {
        let trace = self.trace(workload, layout);
        simulate(machine, scheme, trace.into_iter())
    }

    /// Fetch-only EIR measurement on the natural layout.
    pub fn eir_natural(
        &self,
        machine: &MachineModel,
        scheme: SchemeKind,
        workload: &Workload,
    ) -> EirResult {
        let layout = Layout::natural(&workload.program, LayoutOptions::new(machine.block_bytes))
            .expect("natural layout");
        let trace = self.trace(workload, &layout);
        measure_eir(machine, scheme, trace.into_iter())
    }
}

/// Formats a benchmark-class label the way the paper's figures do.
#[must_use]
pub fn class_label(class: WorkloadClass) -> &'static str {
    match class {
        WorkloadClass::Int => "integer",
        WorkloadClass::Fp => "floating-point",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_caches_profiles_and_reorderings() {
        let mut lab = Lab::new(ExpConfig::quick());
        let a = lab.profile("compress").clone();
        let b = lab.profile("compress").clone();
        assert_eq!(a, b);
        let ra = lab.reordered("compress").order.clone();
        let rb = lab.reordered("compress").order.clone();
        assert_eq!(ra, rb);
    }

    #[test]
    fn class_partition_covers_suite() {
        let lab = Lab::new(ExpConfig::quick());
        let int = lab.class(WorkloadClass::Int).len();
        let fp = lab.class(WorkloadClass::Fp).len();
        assert_eq!(int, 9);
        assert_eq!(fp, 6);
    }
}
