//! Experiment drivers: one per table and figure of the paper's evaluation.
//!
//! Each driver returns a plain-data result type with a `Display` impl that
//! renders the same rows/series the paper reports; the `fetchmech-bench`
//! crate's `report` binary prints them, its criterion benches time them, and
//! the integration tests assert their qualitative shape (who wins, how the
//! trend moves with issue rate).
//!
//! All drivers hang off [`Lab`], the shared experiment state. The lab is
//! fully thread-safe (`&self` everywhere): benchmark programs, profiles,
//! reordered programs, layouts, and — most importantly — materialized dynamic
//! traces live in concurrent exactly-once caches, so every expensive artifact
//! is computed a single time per process no matter how many drivers or worker
//! threads ask for it. Traces are shared as `Arc<[DynInst]>` slices and
//! handed to the simulator by reference-count bump (see
//! [`TraceCursor`](fetchmech_pipeline::TraceCursor)), never copied or
//! regenerated per run.
//!
//! Drivers expand their (workload × scheme × machine × layout) grids into job
//! lists and execute them on the lab's [`Runner`] worker pool; results are
//! folded in deterministic grid order, so serial (`FETCHMECH_THREADS=1`) and
//! parallel runs produce bit-identical output.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fetchmech_compiler::{layout_pad_all, reorder, Profile, Reordered, TraceSelectConfig};
use fetchmech_isa::{BlockStream, DynInst, Layout, LayoutOptions, Program};
use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::{suite, BehaviorMap, InputId, Workload, WorkloadClass, WorkloadSpec};

use crate::runner::Runner;
use crate::scheme::SchemeKind;
use crate::sim::{measure_eir, simulate, EirResult, SimResult};

mod ablations;
mod ext_predictors;
mod fig10;
mod fig11;
mod fig12;
mod fig13;
mod fig3;
mod fig9;
mod table2;
mod table3;
mod table4;

pub use ablations::{AblationRow, Ablations, Sweep};
pub use ext_predictors::{ExtPredictors, ExtPredictorsRow};
pub use fig10::{Fig10, Fig10Row};
pub use fig11::{Fig11, Fig11Row};
pub use fig12::{Fig12, Fig12Row};
pub use fig13::{Fig13, Fig13Row};
pub use fig3::{Fig3, Fig3Row};
pub use fig9::{Fig9, Fig9Row};
pub use table2::{Table2, Table2Row};
pub use table3::{Table3, Table3Row};
pub use table4::{Table4, Table4Row};

/// Sizing knobs for the experiment drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpConfig {
    /// Dynamic instructions simulated per (benchmark, machine, scheme) run.
    pub trace_len: u64,
    /// Dynamic instructions per profiling input.
    pub profile_len: u64,
}

impl ExpConfig {
    /// Full-length runs used by the `report` binary and EXPERIMENTS.md.
    #[must_use]
    pub fn full() -> Self {
        Self {
            trace_len: 300_000,
            profile_len: 60_000,
        }
    }

    /// Reduced runs for unit tests and criterion benches.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            trace_len: 40_000,
            profile_len: 15_000,
        }
    }
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Which (program, layout) variant of a benchmark a run executes.
///
/// Together with the benchmark name and cache-block size this fully
/// identifies a static code image, and therefore (with input and length) a
/// dynamic trace — it is the layout component of the trace-cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutVariant {
    /// The natural (program-order) layout of the original program.
    Natural,
    /// The original program with `pad-all` nop padding (§4.1).
    PadAll,
    /// The profile-driven trace-reordered program (§4, Figure 12).
    Reordered,
    /// The reordered program with `pad-trace` nop padding (§4.1).
    PadTrace,
}

impl LayoutVariant {
    /// All variants.
    pub const ALL: [LayoutVariant; 4] = [
        LayoutVariant::Natural,
        LayoutVariant::PadAll,
        LayoutVariant::Reordered,
        LayoutVariant::PadTrace,
    ];

    /// Returns `true` if runs of this variant execute the reordered program
    /// rather than the original.
    #[must_use]
    pub fn uses_reordered_program(self) -> bool {
        matches!(self, LayoutVariant::Reordered | LayoutVariant::PadTrace)
    }

    /// Short stable name (also accepted by [`FromStr`](std::str::FromStr)) —
    /// the spelling the serve API and CLIs use.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LayoutVariant::Natural => "natural",
            LayoutVariant::PadAll => "pad-all",
            LayoutVariant::Reordered => "reordered",
            LayoutVariant::PadTrace => "pad-trace",
        }
    }
}

impl std::fmt::Display for LayoutVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from parsing a [`LayoutVariant`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLayoutVariantError(String);

impl std::fmt::Display for ParseLayoutVariantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown layout {:?} (expected natural, pad-all, reordered, or pad-trace)",
            self.0
        )
    }
}

impl std::error::Error for ParseLayoutVariantError {}

impl std::str::FromStr for LayoutVariant {
    type Err = ParseLayoutVariantError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        LayoutVariant::ALL
            .into_iter()
            .find(|v| v.name() == s)
            .ok_or_else(|| ParseLayoutVariantError(s.to_owned()))
    }
}

/// Cache key fully identifying one materialized dynamic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Benchmark name.
    pub bench: &'static str,
    /// Program/layout variant.
    pub variant: LayoutVariant,
    /// Cache-block size the layout was built for.
    pub block_bytes: u64,
    /// Program input.
    pub input: InputId,
    /// Trace length in dynamic instructions.
    pub limit: u64,
}

/// A concurrent exactly-once memo table.
///
/// The outer map lock is held only long enough to fetch or insert a per-key
/// cell; the (possibly expensive) compute runs under the cell's own
/// `OnceLock`, so distinct keys compute in parallel while a second requester
/// of the *same* key blocks until the first finishes — each value is computed
/// exactly once per process.
#[derive(Debug)]
struct Memo<K, V> {
    cells: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash, V: Clone> Memo<K, V> {
    fn new() -> Self {
        Self {
            cells: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let cell = Arc::clone(
            self.cells
                .lock()
                .expect("memo map lock poisoned")
                .entry(key)
                .or_default(),
        );
        let mut computed = false;
        let value = cell
            .get_or_init(|| {
                computed = true;
                compute()
            })
            .clone();
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value
    }

    fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Hit/miss counters for the lab's shared caches.
///
/// A *miss* is an actual computation (a trace generation, a layout build, a
/// profiling run); a *hit* returned an already-shared `Arc`. Duplicate work
/// is eliminated exactly when the miss counters equal the number of distinct
/// keys requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LabCacheStats {
    /// Trace-cache hits (shared `Arc<[DynInst]>` returned, no generation).
    pub trace_hits: u64,
    /// Traces actually generated (one per distinct [`TraceKey`]).
    pub trace_generations: u64,
    /// Block-stream-cache hits (shared `Arc<BlockStream>` returned).
    pub stream_hits: u64,
    /// Block streams actually built (one per distinct [`TraceKey`]).
    pub stream_builds: u64,
    /// Layout-cache hits.
    pub layout_hits: u64,
    /// Layouts actually built.
    pub layout_builds: u64,
    /// Profile-cache hits.
    pub profile_hits: u64,
    /// Profiles actually collected.
    pub profile_collections: u64,
    /// Reorder-cache hits.
    pub reorder_hits: u64,
    /// Reorderings actually computed.
    pub reorder_builds: u64,
}

impl LabCacheStats {
    /// The counters as a JSON object (field order matches the struct), for
    /// the serve subsystem's `/metrics` endpoint and the bench writers.
    #[must_use]
    pub fn to_json(&self) -> crate::json::Value {
        use crate::json::Value;
        Value::object([
            ("trace_hits", Value::Uint(self.trace_hits)),
            ("trace_generations", Value::Uint(self.trace_generations)),
            ("stream_hits", Value::Uint(self.stream_hits)),
            ("stream_builds", Value::Uint(self.stream_builds)),
            ("layout_hits", Value::Uint(self.layout_hits)),
            ("layout_builds", Value::Uint(self.layout_builds)),
            ("profile_hits", Value::Uint(self.profile_hits)),
            ("profile_collections", Value::Uint(self.profile_collections)),
            ("reorder_hits", Value::Uint(self.reorder_hits)),
            ("reorder_builds", Value::Uint(self.reorder_builds)),
        ])
    }
}

/// Ceiling on concurrently registered external (frontend-uploaded)
/// programs per [`Lab`]. Registered names are interned for the process
/// lifetime (they key the `'static`-named caches below), so the registry
/// must be bounded; at the content-hash granularity the serve layer uses,
/// re-uploads of the same program do not consume new slots.
pub const MAX_EXTERNAL_PROGRAMS: usize = 128;

/// The experiment laboratory: benchmark suite plus concurrently cached
/// profiles, reordered programs, layouts, and materialized traces, shared
/// across all drivers and worker threads.
#[derive(Debug)]
pub struct Lab {
    cfg: ExpConfig,
    runner: Runner,
    benchmarks: Vec<Arc<Workload>>,
    /// Externally supplied (frontend-lowered) programs, in registration
    /// order. Names are interned to `'static` so externals flow through the
    /// same caches as suite benchmarks.
    external: Mutex<Vec<(&'static str, Arc<Workload>)>>,
    profiles: Memo<&'static str, Arc<Profile>>,
    reordered: Memo<&'static str, Arc<Reordered>>,
    reordered_workloads: Memo<&'static str, Arc<Workload>>,
    layouts: Memo<(&'static str, LayoutVariant, u64), Arc<Layout>>,
    traces: Memo<TraceKey, Arc<[DynInst]>>,
    streams: Memo<TraceKey, Arc<BlockStream>>,
}

impl Lab {
    /// Creates a lab over the full fifteen-benchmark suite, with the worker
    /// pool sized from the environment (`FETCHMECH_THREADS`, else the
    /// machine's available parallelism).
    ///
    /// In debug builds this also installs the `fetchmech-analysis` verifier
    /// hooks, so every program, layout, profile, trace selection, and reorder
    /// any driver produces is checked at its construction site. The hook
    /// slots are process-global `OnceLock`s, so installation and invocation
    /// are thread-safe under the parallel runner.
    #[must_use]
    pub fn new(cfg: ExpConfig) -> Self {
        Self::with_runner(cfg, Runner::from_env())
    }

    /// A lab with an explicit worker count (1 = fully serial execution).
    #[must_use]
    pub fn with_threads(cfg: ExpConfig, threads: usize) -> Self {
        Self::with_runner(cfg, Runner::new(threads))
    }

    /// A lab with an explicit runner.
    #[must_use]
    pub fn with_runner(cfg: ExpConfig, runner: Runner) -> Self {
        if cfg!(debug_assertions) {
            fetchmech_analysis::install_debug_hooks();
        }
        Self {
            cfg,
            runner,
            benchmarks: suite::full_suite().into_iter().map(Arc::new).collect(),
            external: Mutex::new(Vec::new()),
            profiles: Memo::new(),
            reordered: Memo::new(),
            reordered_workloads: Memo::new(),
            layouts: Memo::new(),
            traces: Memo::new(),
            streams: Memo::new(),
        }
    }

    /// Returns the configuration.
    #[must_use]
    pub fn config(&self) -> ExpConfig {
        self.cfg
    }

    /// The worker pool the drivers execute their grids on.
    #[must_use]
    pub fn runner(&self) -> Runner {
        self.runner
    }

    /// All benchmarks of the given class.
    #[must_use]
    pub fn class(&self, class: WorkloadClass) -> Vec<&Workload> {
        self.benchmarks
            .iter()
            .map(Arc::as_ref)
            .filter(|w| w.spec.class == class)
            .collect()
    }

    /// Benchmark names of the given class, in suite order.
    #[must_use]
    pub fn class_names(&self, class: WorkloadClass) -> Vec<&'static str> {
        self.class(class).into_iter().map(|w| w.spec.name).collect()
    }

    /// A benchmark by name.
    ///
    /// # Panics
    ///
    /// Panics on unknown names (driver-internal use only).
    #[must_use]
    pub fn bench(&self, name: &str) -> &Workload {
        self.benchmarks
            .iter()
            .find(|w| w.spec.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
    }

    /// Registers an externally supplied (frontend-lowered) program under
    /// `name`, returning the interned `'static` name to use with every other
    /// lab method. Registration is idempotent: re-registering `name` with an
    /// identical program and behaviours returns the existing interned name
    /// without consuming a slot.
    ///
    /// # Errors
    ///
    /// Rejects names that collide with suite benchmarks, re-registrations
    /// whose program or behaviours differ from the existing entry, and
    /// registrations beyond [`MAX_EXTERNAL_PROGRAMS`].
    pub fn register_external(
        &self,
        name: &str,
        program: Program,
        behaviors: BehaviorMap,
    ) -> Result<&'static str, String> {
        if self.benchmarks.iter().any(|w| w.spec.name == name) {
            return Err(format!("{name:?} is a suite benchmark name"));
        }
        let mut external = self.external.lock().expect("external registry poisoned");
        if let Some((interned, existing)) = external.iter().find(|(n, _)| *n == name) {
            return if existing.program == program && existing.behaviors == behaviors {
                Ok(interned)
            } else {
                Err(format!(
                    "{name:?} is already registered with different contents"
                ))
            };
        }
        if external.len() >= MAX_EXTERNAL_PROGRAMS {
            return Err(format!(
                "external-program registry is full ({MAX_EXTERNAL_PROGRAMS} programs)"
            ));
        }
        let interned: &'static str = Box::leak(name.to_owned().into_boxed_str());
        // The seed derives from the name (FNV-1a), so trace generation for a
        // given registered program is reproducible across processes.
        let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
        });
        external.push((
            interned,
            Arc::new(Workload {
                spec: WorkloadSpec::external(interned, seed),
                program,
                behaviors,
            }),
        ));
        Ok(interned)
    }

    /// Resolves `name` to its interned `'static` form if it names a suite
    /// benchmark or a registered external program.
    #[must_use]
    pub fn intern_name(&self, name: &str) -> Option<&'static str> {
        if let Some(w) = self.benchmarks.iter().find(|w| w.spec.name == name) {
            return Some(w.spec.name);
        }
        self.external
            .lock()
            .expect("external registry poisoned")
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(n, _)| *n)
    }

    /// The workload registered under `name` — suite benchmark or external
    /// program — if any.
    #[must_use]
    pub fn find_workload(&self, name: &str) -> Option<Arc<Workload>> {
        if let Some(w) = self.benchmarks.iter().find(|w| w.spec.name == name) {
            return Some(Arc::clone(w));
        }
        self.external
            .lock()
            .expect("external registry poisoned")
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, w)| Arc::clone(w))
    }

    /// Names of all registered external programs, sorted.
    #[must_use]
    pub fn external_names(&self) -> Vec<&'static str> {
        let mut names: Vec<&'static str> = self
            .external
            .lock()
            .expect("external registry poisoned")
            .iter()
            .map(|(n, _)| *n)
            .collect();
        names.sort_unstable();
        names
    }

    /// Internal lookup shared by the cache fill paths: suite benchmarks and
    /// registered externals resolve identically.
    fn workload_arc(&self, name: &str) -> Arc<Workload> {
        self.find_workload(name)
            .unwrap_or_else(|| panic!("unknown benchmark {name}"))
    }

    /// The profile for `name`, collected once on the five training inputs.
    pub fn profile(&self, name: &'static str) -> Arc<Profile> {
        self.profiles.get_or_compute(name, || {
            let w = self.workload_arc(name);
            Arc::new(Profile::collect(
                &w,
                &InputId::PROFILE,
                self.cfg.profile_len,
            ))
        })
    }

    /// The reordered (trace-laid-out) form of `name`, computed once.
    pub fn reordered(&self, name: &'static str) -> Arc<Reordered> {
        self.reordered.get_or_compute(name, || {
            let profile = self.profile(name);
            let w = self.workload_arc(name);
            Arc::new(reorder(&w.program, &profile, &TraceSelectConfig::default()))
        })
    }

    /// A reordered benchmark as a [`Workload`] (same behaviours, edited
    /// program), for executing against a reordered layout.
    pub fn reordered_workload(&self, name: &'static str) -> Arc<Workload> {
        self.reordered_workloads.get_or_compute(name, || {
            let r = self.reordered(name).program.clone();
            let w = self.workload_arc(name);
            Arc::new(Workload {
                spec: w.spec.clone(),
                program: r,
                behaviors: w.behaviors.clone(),
            })
        })
    }

    /// The workload whose program a given layout variant executes.
    #[must_use]
    pub fn workload(&self, name: &'static str, variant: LayoutVariant) -> Arc<Workload> {
        if variant.uses_reordered_program() {
            self.reordered_workload(name)
        } else {
            self.workload_arc(name)
        }
    }

    /// The layout of `name` under `variant` at `block_bytes`, built once and
    /// shared.
    ///
    /// # Panics
    ///
    /// Panics if the layout fails to build (an internal invariant: all suite
    /// programs lay out at all paper block sizes).
    pub fn layout(
        &self,
        name: &'static str,
        variant: LayoutVariant,
        block_bytes: u64,
    ) -> Arc<Layout> {
        self.layouts
            .get_or_compute((name, variant, block_bytes), || {
                let layout = match variant {
                    LayoutVariant::Natural => Layout::natural(
                        &self.workload_arc(name).program,
                        LayoutOptions::new(block_bytes),
                    ),
                    LayoutVariant::PadAll => {
                        layout_pad_all(&self.workload_arc(name).program, block_bytes)
                    }
                    LayoutVariant::Reordered => self.reordered(name).layout(block_bytes),
                    LayoutVariant::PadTrace => self.reordered(name).layout_pad_trace(block_bytes),
                };
                Arc::new(layout.unwrap_or_else(|e| {
                    panic!("{name}/{variant:?} layout at {block_bytes} B failed: {e:?}")
                }))
            })
    }

    /// The materialized dynamic trace for `key`, generated exactly once per
    /// process and shared zero-copy as an `Arc<[DynInst]>`.
    pub fn trace(&self, key: TraceKey) -> Arc<[DynInst]> {
        self.traces.get_or_compute(key, || {
            let w = self.workload(key.bench, key.variant);
            let layout = self.layout(key.bench, key.variant, key.block_bytes);
            // Pre-size to the trace length: the executor's upper size hint is
            // exact for suite programs, so generation never reallocates.
            let mut v: Vec<DynInst> = Vec::with_capacity(usize::try_from(key.limit).unwrap_or(0));
            v.extend(w.executor(&layout, key.input, key.limit));
            Arc::from(v)
        })
    }

    /// The run-length block stream for `key`, built exactly once per process
    /// and shared as an `Arc<BlockStream>`.
    ///
    /// The stream is generated *natively* — segment templates are interned
    /// while walking the layout, without materializing a per-instruction
    /// trace first — so the stream cache does not populate (or depend on)
    /// the trace cache. Streams are the preferred simulation input: the
    /// block-stream fast path of [`simulate`] is several times faster than
    /// the per-instruction path, with bit-identical results.
    pub fn stream(&self, key: TraceKey) -> Arc<BlockStream> {
        self.streams.get_or_compute(key, || {
            let w = self.workload(key.bench, key.variant);
            let layout = self.layout(key.bench, key.variant, key.block_bytes);
            Arc::new(w.block_stream(&layout, key.input, key.limit))
        })
    }

    /// The standard measurement stream: test input, configured trace length.
    pub fn test_stream(
        &self,
        bench: &'static str,
        variant: LayoutVariant,
        block_bytes: u64,
    ) -> Arc<BlockStream> {
        self.stream(TraceKey {
            bench,
            variant,
            block_bytes,
            input: InputId::TEST,
            limit: self.cfg.trace_len,
        })
    }

    /// The standard measurement trace: test input, configured trace length.
    pub fn test_trace(
        &self,
        bench: &'static str,
        variant: LayoutVariant,
        block_bytes: u64,
    ) -> Arc<[DynInst]> {
        self.trace(TraceKey {
            bench,
            variant,
            block_bytes,
            input: InputId::TEST,
            limit: self.cfg.trace_len,
        })
    }

    /// Runs one full simulation of `bench` under `variant` on `machine`.
    ///
    /// The block stream comes from the shared cache (built on first use) and
    /// is lent to the simulator by refcount bump; the simulator takes the
    /// block-stream fast path, which the differential oracle keeps
    /// bit-identical to the per-instruction path.
    pub fn run(
        &self,
        machine: &MachineModel,
        scheme: SchemeKind,
        bench: &'static str,
        variant: LayoutVariant,
    ) -> SimResult {
        let stream = self.test_stream(bench, variant, machine.block_bytes);
        simulate(machine, scheme, &stream)
    }

    /// Fetch-only EIR measurement of `bench` under `variant` on `machine`.
    pub fn eir(
        &self,
        machine: &MachineModel,
        scheme: SchemeKind,
        bench: &'static str,
        variant: LayoutVariant,
    ) -> EirResult {
        let stream = self.test_stream(bench, variant, machine.block_bytes);
        measure_eir(machine, scheme, &stream)
    }

    /// Snapshot of the shared-cache hit/miss counters.
    #[must_use]
    pub fn cache_stats(&self) -> LabCacheStats {
        LabCacheStats {
            trace_hits: self.traces.hits(),
            trace_generations: self.traces.misses(),
            stream_hits: self.streams.hits(),
            stream_builds: self.streams.misses(),
            layout_hits: self.layouts.hits(),
            layout_builds: self.layouts.misses(),
            profile_hits: self.profiles.hits(),
            profile_collections: self.profiles.misses(),
            reorder_hits: self.reordered.hits(),
            reorder_builds: self.reordered.misses(),
        }
    }
}

/// Formats a benchmark-class label the way the paper's figures do.
#[must_use]
pub fn class_label(class: WorkloadClass) -> &'static str {
    match class {
        WorkloadClass::Int => "integer",
        WorkloadClass::Fp => "floating-point",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_caches_profiles_and_reorderings() {
        let lab = Lab::new(ExpConfig::quick());
        let a = lab.profile("compress");
        let b = lab.profile("compress");
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let ra = lab.reordered("compress");
        let rb = lab.reordered("compress");
        assert!(Arc::ptr_eq(&ra, &rb));
        let stats = lab.cache_stats();
        assert_eq!(stats.profile_collections, 1);
        // Two direct lookups plus the reordering's internal one: 2 hits.
        assert_eq!(stats.profile_hits, 2);
        assert_eq!(stats.reorder_builds, 1);
        assert_eq!(stats.reorder_hits, 1);
    }

    #[test]
    fn trace_cache_generates_each_key_once() {
        let lab = Lab::with_threads(ExpConfig::quick(), 1);
        let a = lab.test_trace("compress", LayoutVariant::Natural, 16);
        let b = lab.test_trace("compress", LayoutVariant::Natural, 16);
        assert!(Arc::ptr_eq(&a, &b), "cache must return the same allocation");
        assert_eq!(a.len(), ExpConfig::quick().trace_len as usize);
        // A different block size is a different static image.
        let c = lab.test_trace("compress", LayoutVariant::Natural, 32);
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = lab.cache_stats();
        assert_eq!(stats.trace_generations, 2);
        assert_eq!(stats.trace_hits, 1);
    }

    #[test]
    fn trace_cache_is_shared_across_threads() {
        let lab = Lab::with_threads(ExpConfig::quick(), 4);
        let jobs: Vec<u32> = (0..8).collect();
        let traces = lab.runner().run(&jobs, |_| {
            lab.test_trace("eqntott", LayoutVariant::Natural, 16)
        });
        for t in &traces {
            assert!(
                Arc::ptr_eq(&traces[0], t),
                "all workers must share one trace"
            );
        }
        assert_eq!(lab.cache_stats().trace_generations, 1);
        assert_eq!(lab.cache_stats().trace_hits, 7);
    }

    #[test]
    fn class_partition_covers_suite() {
        let lab = Lab::new(ExpConfig::quick());
        let int = lab.class(WorkloadClass::Int).len();
        let fp = lab.class(WorkloadClass::Fp).len();
        assert_eq!(int, 9);
        assert_eq!(fp, 6);
        assert_eq!(lab.class_names(WorkloadClass::Int).len(), 9);
    }

    #[test]
    fn external_programs_flow_through_the_caches() {
        let lab = Lab::with_threads(ExpConfig::quick(), 1);
        let donor = lab.bench("compress");
        let (program, behaviors) = (donor.program.clone(), donor.behaviors.clone());

        // Suite names are off limits.
        assert!(lab
            .register_external("compress", program.clone(), behaviors.clone())
            .is_err());

        let id = lab
            .register_external("prog-test", program.clone(), behaviors.clone())
            .expect("registers");
        // Idempotent for identical contents, rejected for different ones.
        let again = lab
            .register_external("prog-test", program.clone(), behaviors.clone())
            .expect("re-register");
        assert_eq!(id, again);
        let other = lab.bench("eqntott");
        assert!(lab
            .register_external("prog-test", other.program.clone(), other.behaviors.clone())
            .is_err());

        assert_eq!(lab.intern_name("prog-test"), Some(id));
        assert_eq!(lab.external_names(), vec![id]);
        assert!(lab.find_workload("prog-test").is_some());
        assert!(lab.intern_name("prog-unknown").is_none());

        // The external flows through trace generation and simulation like a
        // suite benchmark.
        let t = lab.test_trace(id, LayoutVariant::Natural, 16);
        assert_eq!(t.len(), ExpConfig::quick().trace_len as usize);
        let r = lab.run(
            &MachineModel::p14(),
            SchemeKind::Sequential,
            id,
            LayoutVariant::Natural,
        );
        assert_eq!(r.retired, ExpConfig::quick().trace_len);
    }

    #[test]
    fn reordered_variants_use_the_reordered_program() {
        let lab = Lab::new(ExpConfig::quick());
        for v in LayoutVariant::ALL {
            let w = lab.workload("compress", v);
            let same_as_base = w.program == lab.bench("compress").program;
            assert_eq!(
                same_as_base,
                !v.uses_reordered_program(),
                "{v:?}: wrong program variant"
            );
        }
    }
}
