//! Figure 12: performance after profile-driven code reordering (integer
//! benchmarks). Reordering lifts every scheme; reordered interleaved
//! sequential reaches unordered-perfect territory, and the reordered
//! collapsing buffer approaches reordered perfect.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One machine group of Figure 12.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12Row {
    /// Machine model name.
    pub machine: String,
    /// Sequential on the unoptimized layout.
    pub sequential_unordered: f64,
    /// The five schemes on the reordered layout, in [`SchemeKind::ALL`]
    /// order (sequential … perfect).
    pub reordered: [f64; 5],
    /// Perfect on the unoptimized layout.
    pub perfect_unordered: f64,
}

impl Fig12Row {
    /// Reordered IPC of one scheme.
    #[must_use]
    pub fn reordered_of(&self, scheme: SchemeKind) -> f64 {
        let idx = SchemeKind::ALL
            .iter()
            .position(|&s| s == scheme)
            .expect("known scheme");
        self.reordered[idx]
    }
}

/// The full Figure 12 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig12 {
    /// One row per machine.
    pub rows: Vec<Fig12Row>,
}

impl Fig12 {
    /// Runs the experiment. Reordered runs share one cached reordering,
    /// layout, and trace per benchmark across all five schemes.
    ///
    /// # Panics
    ///
    /// Panics if a reordered layout fails to build (an internal invariant).
    pub fn run(lab: &Lab) -> Self {
        let machines = MachineModel::paper_models();
        let names = lab.class_names(WorkloadClass::Int);
        let n = names.len();
        let mut jobs = Vec::new();
        for machine in &machines {
            for scheme in [SchemeKind::Sequential, SchemeKind::Perfect] {
                for &bench in &names {
                    jobs.push((machine.clone(), scheme, bench, LayoutVariant::Natural));
                }
            }
            for scheme in SchemeKind::ALL {
                for &bench in &names {
                    jobs.push((machine.clone(), scheme, bench, LayoutVariant::Reordered));
                }
            }
        }
        let ipcs = lab
            .runner()
            .run(&jobs, |(machine, scheme, bench, variant)| {
                lab.run(machine, *scheme, bench, *variant).ipc()
            });

        let mut rows = Vec::new();
        let mut idx = 0;
        let take_mean = |idx: &mut usize| {
            let m = harmonic_mean(&ipcs[*idx..*idx + n]);
            *idx += n;
            m
        };
        for machine in &machines {
            let sequential_unordered = take_mean(&mut idx);
            let perfect_unordered = take_mean(&mut idx);
            let mut reordered = [0.0; 5];
            for slot in &mut reordered {
                *slot = take_mean(&mut idx);
            }
            rows.push(Fig12Row {
                machine: machine.name.clone(),
                sequential_unordered,
                reordered,
                perfect_unordered,
            });
        }
        Fig12 { rows }
    }
}

impl fmt::Display for Fig12 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 12: IPC after code reordering (integer, harmonic mean)"
        )?;
        write!(f, "{:>8} {:>12}", "machine", "seq(unord)")?;
        for s in SchemeKind::ALL {
            write!(f, " {:>15}", format!("{}(r)", s.name()))?;
        }
        writeln!(f, " {:>12}", "perf(unord)")?;
        for r in &self.rows {
            write!(f, "{:>8} {:>12.3}", r.machine, r.sequential_unordered)?;
            for v in r.reordered {
                write!(f, " {v:>15.3}")?;
            }
            writeln!(f, " {:>12.3}", r.perfect_unordered)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn fig12_reordering_lifts_all_schemes() {
        let lab = Lab::new(ExpConfig::quick());
        let fig = Fig12::run(&lab);
        assert_eq!(fig.rows.len(), 3);
        for r in &fig.rows {
            // Reordered sequential beats unordered sequential.
            assert!(
                r.reordered_of(SchemeKind::Sequential) > r.sequential_unordered,
                "{}: reordering must lift sequential ({} vs {})",
                r.machine,
                r.reordered_of(SchemeKind::Sequential),
                r.sequential_unordered
            );
            // Reordered collapsing approaches reordered perfect (within 10%).
            let coll = r.reordered_of(SchemeKind::CollapsingBuffer);
            let perf = r.reordered_of(SchemeKind::Perfect);
            assert!(
                coll > 0.88 * perf,
                "{}: reordered collapsing {} too far below reordered perfect {}",
                r.machine,
                coll,
                perf
            );
        }
        // Reordered interleaved reaches unordered-perfect territory (the
        // paper's software-vs-hardware tradeoff) on every machine.
        for r in &fig.rows {
            assert!(
                r.reordered_of(SchemeKind::InterleavedSequential) > 0.92 * r.perfect_unordered,
                "{}: interleaved(reordered) {} vs perfect(unordered) {}",
                r.machine,
                r.reordered_of(SchemeKind::InterleavedSequential),
                r.perfect_unordered
            );
        }
    }
}
