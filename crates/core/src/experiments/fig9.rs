//! Figure 9: harmonic-mean IPC of all four hardware schemes plus *perfect*,
//! for the integer (9a) and floating-point (9b) classes, on all machines —
//! the paper's headline performance comparison.

use std::fmt;

use fetchmech_pipeline::MachineModel;
use fetchmech_workloads::WorkloadClass;

use super::{class_label, Lab, LayoutVariant};
use crate::metrics::harmonic_mean;
use crate::scheme::SchemeKind;

/// One (machine, class) group of Figure 9: the IPC of every scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9Row {
    /// Machine model name.
    pub machine: String,
    /// Benchmark class.
    pub class: WorkloadClass,
    /// Harmonic-mean IPC per scheme, indexed in [`SchemeKind::ALL`] order.
    pub ipc: [f64; 5],
}

impl Fig9Row {
    /// IPC of one scheme.
    #[must_use]
    pub fn ipc_of(&self, scheme: SchemeKind) -> f64 {
        let idx = SchemeKind::ALL
            .iter()
            .position(|&s| s == scheme)
            .expect("known scheme");
        self.ipc[idx]
    }
}

/// The full Figure 9 data set (9a = integer rows, 9b = floating-point rows).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9 {
    /// One row per (machine, class).
    pub rows: Vec<Fig9Row>,
}

impl Fig9 {
    /// Runs the experiment on the lab's worker pool; the full
    /// (machine × class × scheme × benchmark) grid runs as one job list.
    pub fn run(lab: &Lab) -> Self {
        let machines = MachineModel::paper_models();
        let classes = [WorkloadClass::Int, WorkloadClass::Fp];
        let mut jobs = Vec::new();
        for machine in &machines {
            for class in classes {
                for scheme in SchemeKind::ALL {
                    for bench in lab.class_names(class) {
                        jobs.push((machine.clone(), scheme, bench));
                    }
                }
            }
        }
        let ipcs = lab.runner().run(&jobs, |(machine, scheme, bench)| {
            lab.run(machine, *scheme, bench, LayoutVariant::Natural)
                .ipc()
        });

        let mut rows = Vec::new();
        let mut idx = 0;
        for machine in &machines {
            for class in classes {
                let n = lab.class_names(class).len();
                let mut ipc = [0.0; 5];
                for slot in &mut ipc {
                    *slot = harmonic_mean(&ipcs[idx..idx + n]);
                    idx += n;
                }
                rows.push(Fig9Row {
                    machine: machine.name.clone(),
                    class,
                    ipc,
                });
            }
        }
        Fig9 { rows }
    }

    /// The row for one machine and class.
    #[must_use]
    pub fn row(&self, machine: &str, class: WorkloadClass) -> Option<&Fig9Row> {
        self.rows
            .iter()
            .find(|r| r.machine == machine && r.class == class)
    }
}

impl fmt::Display for Fig9 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 9: IPC of the alignment mechanisms (harmonic mean)"
        )?;
        write!(f, "{:<16} {:>8}", "class", "machine")?;
        for s in SchemeKind::ALL {
            write!(f, " {:>12}", s.name())?;
        }
        writeln!(f)?;
        for r in &self.rows {
            write!(f, "{:<16} {:>8}", class_label(r.class), r.machine)?;
            for v in r.ipc {
                write!(f, " {v:>12.3}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn fig9_scheme_ordering_matches_paper() {
        let lab = Lab::new(ExpConfig::quick());
        let fig = Fig9::run(&lab);
        assert_eq!(fig.rows.len(), 6);
        for r in &fig.rows {
            let seq = r.ipc_of(SchemeKind::Sequential);
            let inter = r.ipc_of(SchemeKind::InterleavedSequential);
            let banked = r.ipc_of(SchemeKind::BankedSequential);
            let coll = r.ipc_of(SchemeKind::CollapsingBuffer);
            let perf = r.ipc_of(SchemeKind::Perfect);
            let slack = 0.03; // sampling noise allowance on quick runs
            assert!(
                inter >= seq - slack,
                "{} {:?}: {inter} < {seq}",
                r.machine,
                r.class
            );
            assert!(
                banked >= inter - slack,
                "{} {:?}: {banked} < {inter}",
                r.machine,
                r.class
            );
            assert!(
                coll >= banked - slack,
                "{} {:?}: {coll} < {banked}",
                r.machine,
                r.class
            );
            assert!(
                perf >= coll - slack,
                "{} {:?}: {perf} < {coll}",
                r.machine,
                r.class
            );
        }
        // The collapsing buffer's edge over banked sequential is visible at
        // P112 for integer code (Table 2's intra-block branches).
        let p112 = fig.row("P112", WorkloadClass::Int).expect("row");
        assert!(
            p112.ipc_of(SchemeKind::CollapsingBuffer)
                > p112.ipc_of(SchemeKind::BankedSequential) + 0.02,
            "collapsing must clearly beat banked at P112: {:?}",
            p112.ipc
        );
    }
}
