//! Table 4: code expansion of the §4.1 padding schemes — nops inserted by
//! `pad-all` versus `pad-trace`, as a percentage of the original code size,
//! for all three cache-block sizes.

use std::fmt;

use fetchmech_compiler::expansion;
use fetchmech_workloads::WorkloadClass;

use super::Lab;

/// One benchmark row of Table 4 (all three block sizes).
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Benchmark name.
    pub bench: &'static str,
    /// `pad-all` expansion % at 16/32/64-byte blocks.
    pub pad_all: [f64; 3],
    /// `pad-trace` expansion % at 16/32/64-byte blocks.
    pub pad_trace: [f64; 3],
}

/// The full Table 4 data set.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4 {
    /// One row per integer benchmark.
    pub rows: Vec<Table4Row>,
}

impl Table4 {
    /// Runs the experiment (purely static: layout only, no simulation). The
    /// per-(benchmark, block-size) expansion measurements are independent
    /// jobs; the reordering each needs is computed once in the lab's shared
    /// cache.
    ///
    /// # Panics
    ///
    /// Panics if a layout fails to build (an internal invariant).
    pub fn run(lab: &Lab) -> Self {
        let names = lab.class_names(WorkloadClass::Int);
        let mut jobs = Vec::new();
        for &name in &names {
            for bs in [16u64, 32, 64] {
                jobs.push((name, bs));
            }
        }
        let pairs = lab.runner().run(&jobs, |&(name, bs)| {
            let reordered = lab.reordered(name);
            let (all, trace) =
                expansion(&lab.bench(name).program, &reordered, bs).expect("padding layouts");
            (all.pad_pct, trace.pad_pct)
        });

        let rows = names
            .iter()
            .zip(pairs.chunks_exact(3))
            .map(|(&bench, chunk)| {
                let mut pad_all = [0.0; 3];
                let mut pad_trace = [0.0; 3];
                for (i, &(all, trace)) in chunk.iter().enumerate() {
                    pad_all[i] = all;
                    pad_trace[i] = trace;
                }
                Table4Row {
                    bench,
                    pad_all,
                    pad_trace,
                }
            })
            .collect();
        Table4 { rows }
    }

    /// Row for one benchmark.
    #[must_use]
    pub fn row(&self, bench: &str) -> Option<&Table4Row> {
        self.rows.iter().find(|r| r.bench == bench)
    }
}

impl fmt::Display for Table4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Table 4: nops inserted by pad-all / pad-trace (% of original code size)"
        )?;
        writeln!(
            f,
            "{:<10} {:>21} {:>21} {:>21}",
            "benchmark", "16B (all/trace)", "32B (all/trace)", "64B (all/trace)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<10} {:>10.2}% /{:>7.2}% {:>10.2}% /{:>7.2}% {:>10.2}% /{:>7.2}%",
                r.bench,
                r.pad_all[0],
                r.pad_trace[0],
                r.pad_all[1],
                r.pad_trace[1],
                r.pad_all[2],
                r.pad_trace[2]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::ExpConfig;

    #[test]
    fn table4_magnitudes_match_paper() {
        let lab = Lab::new(ExpConfig::quick());
        let t = Table4::run(&lab);
        assert_eq!(t.rows.len(), 9);
        for r in &t.rows {
            for i in 0..3 {
                assert!(
                    r.pad_trace[i] < r.pad_all[i],
                    "{}: pad-trace must be cheaper at index {i}",
                    r.bench
                );
            }
            // pad-all grows steeply with block size (Table 4: ~tens of % at
            // 16 B, >100% at 64 B).
            assert!(r.pad_all[0] > 5.0, "{}: {:?}", r.bench, r.pad_all);
            assert!(r.pad_all[2] > 80.0, "{}: {:?}", r.bench, r.pad_all);
            assert!(r.pad_all[2] > r.pad_all[0], "{}: {:?}", r.bench, r.pad_all);
            // pad-trace stays moderate.
            assert!(r.pad_trace[0] < 30.0, "{}: {:?}", r.bench, r.pad_trace);
        }
    }
}
