//! The parallel experiment runner: expands an experiment grid into
//! independent jobs and executes them on a scoped worker pool.
//!
//! Every experiment driver walks a (workload × scheme × machine × layout)
//! grid whose cells are independent simulations, so the drivers hand the
//! expanded grid to [`Runner::run`] and fold the results afterwards. Three
//! properties make this safe and reproducible:
//!
//! * **Determinism** — results come back indexed by job position, so the
//!   fold sees *exactly* the order a serial loop would have produced, and a
//!   single simulation is a pure function of its (machine, scheme, trace)
//!   inputs. Serial and parallel runs are bit-identical.
//! * **Zero-copy inputs** — jobs borrow the shared [`Lab`](crate::experiments::Lab)
//!   and its `Arc<[DynInst]>` trace cache; nothing is cloned per job beyond
//!   a refcount bump.
//! * **No dependencies** — the pool is `std::thread::scope` + an atomic
//!   work-stealing index; builds stay hermetic.
//!
//! The pool width defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `FETCHMECH_THREADS` environment variable (or
//! explicitly via [`Runner::new`]; `FETCHMECH_THREADS=1` forces serial
//! execution, which is also the automatic fallback for tiny grids).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-pool width.
pub const THREADS_ENV: &str = "FETCHMECH_THREADS";

/// A fixed-width worker pool for embarrassingly parallel experiment grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A runner sized from the environment: `FETCHMECH_THREADS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    ///
    /// A value that is set but unusable — `0`, empty, or unparseable — falls
    /// back to the hardware width *with a one-line warning on stderr*, so a
    /// typo in a job script degrades loudly instead of silently.
    #[must_use]
    pub fn from_env() -> Self {
        let var = std::env::var(THREADS_ENV).ok();
        let (threads, warning) = resolve_threads(var.as_deref(), default_parallelism());
        if let Some(msg) = warning {
            eprintln!("warning: {msg}");
        }
        Self::new(threads)
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every job and returns the results **in job order**,
    /// regardless of which worker finished which job when.
    ///
    /// Jobs are distributed dynamically (an atomic next-job index), so a grid
    /// with wildly uneven cell costs — a P112 collapsing-buffer simulation
    /// next to a static layout measurement — still load-balances. With one
    /// worker, or fewer than two jobs, no threads are spawned at all and the
    /// jobs run on the caller's stack.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (the scope unwinds after all workers
    /// stop picking up new work).
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.iter().map(f).collect();
        }

        // One slot per job; each slot is written exactly once, by whichever
        // worker claimed that index.
        let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let result = f(job);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    })
                })
                .collect();
            // Join explicitly so a job panic resurfaces with its original
            // payload (an unjoined scoped-thread panic would be replaced by
            // the scope's generic one).
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index was claimed by a worker")
            })
            .collect()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The hardware fallback width: [`std::thread::available_parallelism`],
/// or 1 where the platform cannot report it.
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a raw `FETCHMECH_THREADS` value to a worker count, plus a
/// warning message when the value was set but unusable.
///
/// Pure so the policy is unit-testable without touching process-global
/// environment state: `None` (unset) silently yields `fallback`; a positive
/// integer wins; anything else — `0`, empty, garbage — yields `fallback`
/// with a warning describing the bad value.
fn resolve_threads(var: Option<&str>, fallback: usize) -> (usize, Option<String>) {
    let Some(raw) = var else {
        return (fallback, None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => (n, None),
        _ => (
            fallback,
            Some(format!(
                "{THREADS_ENV}={raw:?} is not a positive integer; \
                 using {fallback} worker thread(s)"
            )),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = Runner::new(threads).run(&jobs, |&j| j * j);
            assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_jobs_all_complete() {
        let jobs: Vec<u64> = (0..40).collect();
        let out = Runner::new(4).run(&jobs, |&j| {
            if j % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            j + 1
        });
        assert_eq!(out.len(), 40);
        assert!(out.iter().zip(&jobs).all(|(r, j)| *r == j + 1));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Runner::new(0).threads(), 1);
    }

    #[test]
    fn env_resolution_warns_on_unusable_values() {
        // Unset: hardware fallback, no warning.
        assert_eq!(resolve_threads(None, 6), (6, None));
        // Positive integer (whitespace tolerated): taken verbatim, silent.
        assert_eq!(resolve_threads(Some("3"), 6), (3, None));
        assert_eq!(resolve_threads(Some(" 12 "), 6), (12, None));
        // Set but unusable: fallback plus a warning naming the bad value.
        for bad in ["0", "", "  ", "-2", "four", "2.5"] {
            let (threads, warning) = resolve_threads(Some(bad), 6);
            assert_eq!(threads, 6, "fallback for {bad:?}");
            let msg = warning.expect("unusable value must warn");
            assert!(msg.contains(THREADS_ENV) && msg.contains("6"), "{msg}");
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u32> = Runner::new(8).run(&[], |_: &u32| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn worker_panics_propagate() {
        let jobs: Vec<usize> = (0..8).collect();
        Runner::new(4).run(&jobs, |&j| {
            assert!(j != 3, "job 3 exploded");
            j
        });
    }
}
