//! The parallel experiment runner: expands an experiment grid into
//! independent jobs and executes them on a scoped worker pool.
//!
//! Every experiment driver walks a (workload × scheme × machine × layout)
//! grid whose cells are independent simulations, so the drivers hand the
//! expanded grid to [`Runner::run`] and fold the results afterwards. Three
//! properties make this safe and reproducible:
//!
//! * **Determinism** — results come back indexed by job position, so the
//!   fold sees *exactly* the order a serial loop would have produced, and a
//!   single simulation is a pure function of its (machine, scheme, trace)
//!   inputs. Serial and parallel runs are bit-identical.
//! * **Zero-copy inputs** — jobs borrow the shared [`Lab`](crate::experiments::Lab)
//!   and its `Arc<[DynInst]>` trace cache; nothing is cloned per job beyond
//!   a refcount bump.
//! * **No dependencies** — the pool is `std::thread::scope` + an atomic
//!   work-stealing index; builds stay hermetic.
//!
//! The pool width defaults to [`std::thread::available_parallelism`] and can
//! be overridden with the `FETCHMECH_THREADS` environment variable (or
//! explicitly via [`Runner::new`]; `FETCHMECH_THREADS=1` forces serial
//! execution, which is also the automatic fallback for tiny grids).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Environment variable overriding the worker-pool width.
pub const THREADS_ENV: &str = "FETCHMECH_THREADS";

/// A fixed-width worker pool for embarrassingly parallel experiment grids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A runner sized from the environment: `FETCHMECH_THREADS` if set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    ///
    /// A value that is set but unusable — `0`, empty, or unparseable — falls
    /// back to the hardware width *with a one-line warning on stderr*, so a
    /// typo in a job script degrades loudly instead of silently.
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_flag_or_env(None)
    }

    /// A runner sized from an explicit `--threads`-style flag, falling back
    /// to the environment ([`Runner::from_env`] semantics) when the flag is
    /// absent.
    ///
    /// The flag wins over `FETCHMECH_THREADS`; when both are set and
    /// disagree, a single warning on stderr names the conflict (see
    /// [`resolve_threads_flag`] for the exact policy). CLIs plumb their
    /// `--threads N` option through here so flag and env behave identically
    /// everywhere.
    #[must_use]
    pub fn from_flag_or_env(flag: Option<usize>) -> Self {
        let var = std::env::var(THREADS_ENV).ok();
        let (threads, warning) = resolve_threads_flag(flag, var.as_deref(), default_parallelism());
        if let Some(msg) = warning {
            eprintln!("warning: {msg}");
        }
        Self::new(threads)
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` over every job and returns the results **in job order**,
    /// regardless of which worker finished which job when.
    ///
    /// Jobs are distributed dynamically (an atomic next-job index), so a grid
    /// with wildly uneven cell costs — a P112 collapsing-buffer simulation
    /// next to a static layout measurement — still load-balances. With one
    /// worker, or fewer than two jobs, no threads are spawned at all and the
    /// jobs run on the caller's stack.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job (the scope unwinds after all workers
    /// stop picking up new work).
    pub fn run<J, R, F>(&self, jobs: &[J], f: F) -> Vec<R>
    where
        J: Sync,
        R: Send,
        F: Fn(&J) -> R + Sync,
    {
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return jobs.iter().map(f).collect();
        }

        // One slot per job; each slot is written exactly once, by whichever
        // worker claimed that index.
        let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let result = f(job);
                        *slots[i].lock().expect("result slot poisoned") = Some(result);
                    })
                })
                .collect();
            // Join explicitly so a job panic resurfaces with its original
            // payload (an unjoined scoped-thread panic would be replaced by
            // the scope's generic one).
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("every job index was claimed by a worker")
            })
            .collect()
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The hardware fallback width: [`std::thread::available_parallelism`],
/// or 1 where the platform cannot report it.
fn default_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a raw `FETCHMECH_THREADS` value to a worker count, plus a
/// warning message when the value was set but unusable.
///
/// Pure so the policy is unit-testable without touching process-global
/// environment state: `None` (unset) silently yields `fallback`; a positive
/// integer wins; anything else — `0`, empty, garbage — yields `fallback`
/// with a warning describing the bad value.
#[must_use]
pub fn resolve_threads(var: Option<&str>, fallback: usize) -> (usize, Option<String>) {
    let Some(raw) = var else {
        return (fallback, None);
    };
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => (n, None),
        _ => (
            fallback,
            Some(format!(
                "{THREADS_ENV}={raw:?} is not a positive integer; \
                 using {fallback} worker thread(s)"
            )),
        ),
    }
}

/// Resolves a `--threads` flag against the `FETCHMECH_THREADS` environment
/// variable: the flag wins, and a conflict warns exactly once.
///
/// Pure for the same reason as [`resolve_threads`]. Policy:
///
/// * flag absent → defer to [`resolve_threads`] on the env value;
/// * flag `0` → unusable, resolve from env/fallback with a warning;
/// * flag positive, env unset or agreeing → flag, silent;
/// * flag positive, env set to anything else → flag, with one warning naming
///   the overridden value.
#[must_use]
pub fn resolve_threads_flag(
    flag: Option<usize>,
    var: Option<&str>,
    fallback: usize,
) -> (usize, Option<String>) {
    let Some(n) = flag else {
        return resolve_threads(var, fallback);
    };
    if n == 0 {
        let (threads, _) = resolve_threads(var, fallback);
        return (
            threads,
            Some(format!(
                "--threads 0 is not a positive integer; using {threads} worker thread(s)"
            )),
        );
    }
    match var {
        Some(raw) if raw.trim().parse::<usize>() != Ok(n) => (
            n,
            Some(format!(
                "--threads {n} overrides {THREADS_ENV}={raw:?}; using {n} worker thread(s)"
            )),
        ),
        _ => (n, None),
    }
}

// ---------------------------------------------------------------------------
// Bounded job queue: the long-lived service counterpart of `Runner::run`.
// ---------------------------------------------------------------------------

/// A unit of work for a [`JobQueue`].
///
/// The queue checks [`QueueJob::cancelled`] *between* jobs — after popping a
/// job and before running it — so a job whose waiters have all given up (a
/// deadline expired, a client disconnected) is skipped via
/// [`QueueJob::skip`] instead of burning a worker. Cancellation is
/// cooperative and never interrupts a running job.
pub trait QueueJob: Send + 'static {
    /// Executes the job on a worker thread.
    fn run(self);

    /// Whether the job should be skipped instead of run. Checked once, right
    /// before execution.
    fn cancelled(&self) -> bool {
        false
    }

    /// Called (instead of [`QueueJob::run`]) when the job was cancelled, so
    /// it can notify its waiters.
    fn skip(self)
    where
        Self: Sized,
    {
    }
}

/// Why [`JobQueue::try_submit`] rejected a job; the job is handed back so
/// the caller can respond to its waiters.
#[derive(Debug)]
pub enum SubmitError<J> {
    /// The bounded queue is at capacity — shed load (HTTP 429 territory).
    Full(J),
    /// The queue is draining for shutdown and accepts no new work.
    Closed(J),
}

impl<J> SubmitError<J> {
    /// The rejected job.
    pub fn into_job(self) -> J {
        match self {
            SubmitError::Full(job) | SubmitError::Closed(job) => job,
        }
    }
}

impl<J> fmt::Display for SubmitError<J> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "job queue full"),
            SubmitError::Closed(_) => write!(f, "job queue closed"),
        }
    }
}

struct QueueState<J> {
    queue: VecDeque<J>,
    closed: bool,
    running: usize,
}

struct QueueShared<J> {
    state: Mutex<QueueState<J>>,
    capacity: usize,
    /// Wakes workers when work arrives or the queue closes.
    work: Condvar,
    /// Wakes [`JobQueue::drain`] when the queue goes quiescent.
    idle: Condvar,
    /// Jobs whose `run`/`skip` panicked. The worker survives (the panic is
    /// caught, counted, and logged), so one bad job can never leak the
    /// `running` count and hang [`JobQueue::drain`].
    panics: std::sync::atomic::AtomicU64,
}

/// A bounded multi-producer job queue with a fixed worker pool — the
/// admission-control primitive the experiment service layers HTTP on.
///
/// Where [`Runner::run`] executes one finite grid and returns, a `JobQueue`
/// is long-lived: producers [`try_submit`](JobQueue::try_submit) jobs (and
/// are *refused*, not blocked, when the bounded queue is full — callers turn
/// that into load-shedding), `threads` workers execute them in FIFO order,
/// and [`shutdown`](JobQueue::shutdown) closes admissions, drains everything
/// already accepted, and joins the workers. Jobs implement [`QueueJob`];
/// cancellation is checked between jobs, never mid-run.
pub struct JobQueue<J: QueueJob> {
    shared: Arc<QueueShared<J>>,
    workers: Vec<JoinHandle<()>>,
}

impl<J: QueueJob> fmt::Debug for JobQueue<J> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.shared.capacity)
            .field("workers", &self.workers.len())
            .field("depth", &self.depth())
            .finish()
    }
}

impl<J: QueueJob> JobQueue<J> {
    /// Starts a queue bounded at `capacity` pending jobs, executed by
    /// `runner.threads()` worker threads (both clamped to at least 1).
    #[must_use]
    pub fn start(runner: Runner, capacity: usize) -> Self {
        let shared = Arc::new(QueueShared {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                closed: false,
                running: 0,
            }),
            capacity: capacity.max(1),
            work: Condvar::new(),
            idle: Condvar::new(),
            panics: std::sync::atomic::AtomicU64::new(0),
        });
        let workers = (0..runner.threads())
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fetchmech-queue-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn queue worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Admits a job, or refuses immediately when the queue is full or
    /// closed. Never blocks.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when `capacity` jobs are already pending, and
    /// [`SubmitError::Closed`] after [`close`](JobQueue::close) — the job is
    /// returned inside the error either way.
    pub fn try_submit(&self, job: J) -> Result<(), SubmitError<J>> {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        if state.closed {
            return Err(SubmitError::Closed(job));
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Full(job));
        }
        state.queue.push_back(job);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Pending (admitted, not yet started) jobs.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("queue lock poisoned")
            .queue
            .len()
    }

    /// Jobs currently executing on workers.
    #[must_use]
    pub fn running(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("queue lock poisoned")
            .running
    }

    /// The admission bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The worker-pool width.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs whose `run`/`skip` panicked on a worker (the workers survive;
    /// see the worker loop's panic guard).
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Closes admissions: subsequent [`try_submit`](JobQueue::try_submit)
    /// calls fail with [`SubmitError::Closed`], while already-admitted jobs
    /// keep draining.
    pub fn close(&self) {
        self.shared
            .state
            .lock()
            .expect("queue lock poisoned")
            .closed = true;
        self.shared.work.notify_all();
        self.shared.idle.notify_all();
    }

    /// Blocks until the queue is closed, empty, *and* no job is running —
    /// the by-reference counterpart of [`shutdown`](JobQueue::shutdown) for
    /// callers that hold the queue behind an `Arc` (the workers exit on
    /// their own once drained; they are not joined here).
    pub fn drain(&self) {
        let mut state = self.shared.state.lock().expect("queue lock poisoned");
        while !(state.closed && state.queue.is_empty() && state.running == 0) {
            state = self.shared.idle.wait(state).expect("queue lock poisoned");
        }
    }

    /// Graceful shutdown: closes admissions, waits for the workers to drain
    /// every already-admitted job, and joins them.
    ///
    /// # Panics
    ///
    /// Propagates a panic from a worker thread itself. Job panics are caught
    /// by the worker's guard and surface via [`panics`](JobQueue::panics)
    /// instead — a service must outlive its worst request.
    pub fn shutdown(mut self) {
        self.close();
        for worker in self.workers.drain(..) {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl<J: QueueJob> Drop for JobQueue<J> {
    fn drop(&mut self) {
        // Dropping without `shutdown()` still drains: close and detach. The
        // workers hold their own Arc to the shared state, so they finish the
        // admitted jobs even after the handle is gone.
        self.close();
    }
}

fn worker_loop<J: QueueJob>(shared: &QueueShared<J>) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.running += 1;
                    break job;
                }
                if state.closed {
                    return;
                }
                state = shared.work.wait(state).expect("queue lock poisoned");
            }
        };
        // Guard the job body: an unwinding job must not kill the worker or
        // leak the `running` count (which would wedge `drain` forever).
        // Panics are counted and logged; the queue keeps serving.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // The cooperative cancellation point: between jobs, never
            // mid-run.
            if job.cancelled() {
                job.skip();
            } else {
                job.run();
            }
        }));
        if outcome.is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
            eprintln!("warning: a queued job panicked; the worker survives (see JobQueue::panics)");
        }
        let mut state = shared.state.lock().expect("queue lock poisoned");
        state.running -= 1;
        if state.queue.is_empty() && state.running == 0 {
            shared.idle.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<usize> = (0..100).collect();
        for threads in [1, 2, 4, 7] {
            let out = Runner::new(threads).run(&jobs, |&j| j * j);
            assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn uneven_jobs_all_complete() {
        let jobs: Vec<u64> = (0..40).collect();
        let out = Runner::new(4).run(&jobs, |&j| {
            if j % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            j + 1
        });
        assert_eq!(out.len(), 40);
        assert!(out.iter().zip(&jobs).all(|(r, j)| *r == j + 1));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Runner::new(0).threads(), 1);
    }

    #[test]
    fn env_resolution_warns_on_unusable_values() {
        // Unset: hardware fallback, no warning.
        assert_eq!(resolve_threads(None, 6), (6, None));
        // Positive integer (whitespace tolerated): taken verbatim, silent.
        assert_eq!(resolve_threads(Some("3"), 6), (3, None));
        assert_eq!(resolve_threads(Some(" 12 "), 6), (12, None));
        // Set but unusable: fallback plus a warning naming the bad value.
        for bad in ["0", "", "  ", "-2", "four", "2.5"] {
            let (threads, warning) = resolve_threads(Some(bad), 6);
            assert_eq!(threads, 6, "fallback for {bad:?}");
            let msg = warning.expect("unusable value must warn");
            assert!(msg.contains(THREADS_ENV) && msg.contains("6"), "{msg}");
        }
    }

    #[test]
    fn empty_grid_is_fine() {
        let out: Vec<u32> = Runner::new(8).run(&[], |_: &u32| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "job 3 exploded")]
    fn worker_panics_propagate() {
        let jobs: Vec<usize> = (0..8).collect();
        Runner::new(4).run(&jobs, |&j| {
            assert!(j != 3, "job 3 exploded");
            j
        });
    }

    #[test]
    fn flag_resolution_beats_env_and_warns_on_conflict() {
        // No flag: identical to plain env resolution.
        assert_eq!(resolve_threads_flag(None, Some("3"), 6), (3, None));
        assert_eq!(resolve_threads_flag(None, None, 6), (6, None));
        // Flag alone, or agreeing with the env: silent.
        assert_eq!(resolve_threads_flag(Some(4), None, 6), (4, None));
        assert_eq!(resolve_threads_flag(Some(4), Some("4"), 6), (4, None));
        assert_eq!(resolve_threads_flag(Some(4), Some(" 4 "), 6), (4, None));
        // Flag disagreeing with a set env: flag wins, one warning.
        let (threads, warning) = resolve_threads_flag(Some(4), Some("8"), 6);
        assert_eq!(threads, 4);
        let msg = warning.expect("conflict must warn");
        assert!(
            msg.contains("--threads 4") && msg.contains(THREADS_ENV),
            "{msg}"
        );
        // Flag wins over an unusable env value too (still warns: both were set).
        let (threads, warning) = resolve_threads_flag(Some(2), Some("zero"), 6);
        assert_eq!(threads, 2);
        assert!(warning.is_some());
        // A zero flag is unusable: resolve from env with a warning.
        let (threads, warning) = resolve_threads_flag(Some(0), Some("3"), 6);
        assert_eq!(threads, 3);
        assert!(warning
            .expect("zero flag must warn")
            .contains("--threads 0"));
    }

    // -- JobQueue ----------------------------------------------------------

    use std::sync::atomic::AtomicBool;

    #[derive(Debug)]
    struct TestJob {
        id: usize,
        cancel: Arc<AtomicBool>,
        ran: Arc<Mutex<Vec<usize>>>,
        skipped: Arc<Mutex<Vec<usize>>>,
        delay_ms: u64,
    }

    impl QueueJob for TestJob {
        fn run(self) {
            if self.delay_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(self.delay_ms));
            }
            self.ran.lock().expect("ran lock").push(self.id);
        }
        fn cancelled(&self) -> bool {
            self.cancel.load(Ordering::SeqCst)
        }
        fn skip(self) {
            self.skipped.lock().expect("skipped lock").push(self.id);
        }
    }

    struct Harness {
        ran: Arc<Mutex<Vec<usize>>>,
        skipped: Arc<Mutex<Vec<usize>>>,
    }

    impl Harness {
        fn new() -> Self {
            Self {
                ran: Arc::new(Mutex::new(Vec::new())),
                skipped: Arc::new(Mutex::new(Vec::new())),
            }
        }
        fn job(&self, id: usize, cancel: &Arc<AtomicBool>, delay_ms: u64) -> TestJob {
            TestJob {
                id,
                cancel: Arc::clone(cancel),
                ran: Arc::clone(&self.ran),
                skipped: Arc::clone(&self.skipped),
                delay_ms,
            }
        }
    }

    #[test]
    fn queue_runs_everything_then_drains_on_shutdown() {
        let h = Harness::new();
        let live = Arc::new(AtomicBool::new(false));
        let q = JobQueue::start(Runner::new(3), 64);
        for id in 0..20 {
            q.try_submit(h.job(id, &live, 0)).expect("capacity is 64");
        }
        q.shutdown();
        let mut ran = h.ran.lock().expect("ran lock").clone();
        ran.sort_unstable();
        assert_eq!(ran, (0..20).collect::<Vec<_>>());
        assert!(h.skipped.lock().expect("skipped lock").is_empty());
    }

    #[test]
    fn queue_sheds_when_full_and_rejects_after_close() {
        let h = Harness::new();
        let live = Arc::new(AtomicBool::new(false));
        // One worker pinned on a slow job, capacity 2: the 4th submit is shed.
        let q = JobQueue::start(Runner::new(1), 2);
        q.try_submit(h.job(0, &live, 150))
            .expect("admit running job");
        // Wait until the worker picked job 0 up, so the queue itself is empty.
        for _ in 0..200 {
            if q.running() == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(q.running(), 1);
        q.try_submit(h.job(1, &live, 0)).expect("fits in queue");
        q.try_submit(h.job(2, &live, 0)).expect("fits in queue");
        assert_eq!(q.depth(), 2);
        match q.try_submit(h.job(3, &live, 0)) {
            Err(SubmitError::Full(job)) => assert_eq!(job.id, 3),
            other => panic!("expected Full, got {:?}", other.map_err(|e| e.to_string())),
        }
        q.close();
        match q.try_submit(h.job(4, &live, 0)) {
            Err(SubmitError::Closed(job)) => assert_eq!(job.id, 4),
            other => panic!(
                "expected Closed, got {:?}",
                other.map_err(|e| e.to_string())
            ),
        }
        // Shutdown still drains jobs 1 and 2.
        q.shutdown();
        let mut ran = h.ran.lock().expect("ran lock").clone();
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 1, 2]);
    }

    #[test]
    fn cancelled_jobs_are_skipped_between_jobs() {
        let h = Harness::new();
        let live = Arc::new(AtomicBool::new(false));
        let doomed = Arc::new(AtomicBool::new(false));
        let q = JobQueue::start(Runner::new(1), 16);
        // Occupy the worker, queue a doomed job behind it, cancel it while
        // it is still queued.
        q.try_submit(h.job(0, &live, 100)).expect("admit");
        q.try_submit(h.job(1, &doomed, 0)).expect("admit");
        q.try_submit(h.job(2, &live, 0)).expect("admit");
        doomed.store(true, Ordering::SeqCst);
        q.shutdown();
        let mut ran = h.ran.lock().expect("ran lock").clone();
        ran.sort_unstable();
        assert_eq!(ran, vec![0, 2], "doomed job must not run");
        assert_eq!(*h.skipped.lock().expect("skipped lock"), vec![1]);
    }
}
