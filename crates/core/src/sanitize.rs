//! Simulator-side wiring for the cycle-level sanitizer.
//!
//! The checking engine itself lives in
//! [`fetchmech_analysis::sanitize`] — an independently-coded replay of the
//! paper's delivery rules. This module decides *when* it runs and feeds it
//! the simulator's event stream:
//!
//! * [`ENABLED`] — the gate. Debug builds sanitize every [`simulate`] and
//!   [`measure_eir`](crate::sim::measure_eir) call and panic on findings
//!   (the checks become hard assertions, like `debug_assert!`). Release
//!   builds compile the observation calls out entirely unless the
//!   `sanitize` cargo feature is on.
//! * [`simulate_checked`] / [`measure_eir_checked`] — always-available
//!   variants that run the sanitizer regardless of the gate and *return*
//!   the findings instead of panicking (the `fetchmech-lint sanitize`
//!   subcommand and the clean-suite tests).
//! * [`check_dominance`] — the differential harness: measures EIR for every
//!   scheme over one shared zero-copy trace and checks the paper's
//!   cross-scheme ordering (perfect ≥ collapsing ≥ banked/interleaved ≥
//!   sequential).
//!
//! [`simulate`]: crate::sim::simulate

use std::sync::Arc;

use fetchmech_analysis::sanitize::{
    check_scheme_dominance, check_static_bound, DOMINANCE_TOLERANCE, STATIC_BOUND_TOLERANCE,
};
use fetchmech_analysis::{analyze_geometry, CycleSanitizer, Diagnostic, FetchEnv, SanitizeConfig};
use fetchmech_isa::{DynInst, Layout, Program};
use fetchmech_pipeline::{MachineModel, TraceCursor};

use crate::scheme::SchemeKind;
use crate::sim::{EirResult, SimResult};

/// `true` when plain [`simulate`](crate::sim::simulate) and
/// [`measure_eir`](crate::sim::measure_eir) self-check every run: debug
/// builds always, release builds only with the `sanitize` cargo feature.
///
/// The constant lets LLVM erase every sanitizer branch from an unsanitized
/// release simulator — the observation calls sit behind `if ENABLED`.
pub const ENABLED: bool = cfg!(any(feature = "sanitize", debug_assertions));

/// Builds the sanitizer's machine-parameter mirror for one run.
pub(crate) fn fetch_env(machine: &MachineModel, scheme: SchemeKind, track_issue: bool) -> FetchEnv {
    FetchEnv {
        scheme,
        issue_rate: machine.issue_rate,
        block_bytes: machine.block_bytes,
        banks: scheme.banks().max(2),
        spec_depth: machine.spec_depth,
        fetch_penalty: machine.fetch_penalty,
        track_issue,
    }
}

/// Runs a full simulation with the sanitizer attached, returning the result
/// *and* every invariant finding (empty = clean run).
///
/// Unlike the [`ENABLED`]-gated self-check inside
/// [`simulate`](crate::sim::simulate), this never panics; callers decide
/// what a finding means (the lint CLI turns errors into a nonzero exit).
#[must_use]
pub fn simulate_checked(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
) -> (SimResult, Vec<Diagnostic>) {
    simulate_checked_with(machine, scheme, trace, SanitizeConfig::default())
}

/// [`simulate_checked`] with an explicit rule configuration.
#[must_use]
pub fn simulate_checked_with(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
    cfg: SanitizeConfig,
) -> (SimResult, Vec<Diagnostic>) {
    let mut san = CycleSanitizer::with_config(fetch_env(machine, scheme, true), cfg);
    let result = crate::sim::simulate_observed(machine, scheme, trace.into(), Some(&mut san));
    (result, san.into_diagnostics())
}

/// Runs a fetch-only EIR measurement with the sanitizer attached (issue
/// tracking off: there is no back end to issue into).
#[must_use]
pub fn measure_eir_checked(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
) -> (EirResult, Vec<Diagnostic>) {
    measure_eir_checked_with(machine, scheme, trace, SanitizeConfig::default())
}

/// [`measure_eir_checked`] with an explicit rule configuration.
#[must_use]
pub fn measure_eir_checked_with(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
    cfg: SanitizeConfig,
) -> (EirResult, Vec<Diagnostic>) {
    let mut san = CycleSanitizer::with_config(fetch_env(machine, scheme, false), cfg);
    let result = crate::sim::measure_eir_observed(machine, scheme, trace.into(), Some(&mut san));
    (result, san.into_diagnostics())
}

/// The cross-scheme differential harness: measures every scheme's EIR over
/// one shared trace (zero-copy — each cursor is a refcount bump on the same
/// `Arc`) with the per-cycle sanitizer attached, then checks the paper's
/// dominance ordering. Returns the per-scheme results plus all findings,
/// labeled with `label` (typically the benchmark name).
#[must_use]
pub fn check_dominance(
    machine: &MachineModel,
    label: &str,
    trace: &Arc<[DynInst]>,
) -> (Vec<EirResult>, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let mut results = Vec::with_capacity(SchemeKind::ALL.len());
    for scheme in SchemeKind::ALL {
        let (r, d) = measure_eir_checked(machine, scheme, trace);
        diags.extend(d);
        results.push(r);
    }
    let eirs: Vec<(SchemeKind, f64)> = results.iter().map(|r| (r.scheme, r.eir())).collect();
    diags.extend(check_scheme_dominance(label, &eirs, DOMINANCE_TOLERANCE));
    (results, diags)
}

/// The static-bound cross-check (`sanitize.static_bound`): computes the
/// static fetch-geometry EIR upper bound for every scheme from the program,
/// layout, and machine alone, and checks each measured EIR against it.
///
/// The bound is sound for any dynamic trace of the layout (see
/// [`fetchmech_analysis::geometry`]), so a violation always means a bug —
/// the fetch unit delivered a packet its scheme cannot form, or the
/// geometry model mis-describes the scheme. Pair with [`check_dominance`]:
/// dominance relates schemes to each other, the static bound anchors each
/// of them to first principles.
#[must_use]
pub fn verify_static_bound(
    machine: &MachineModel,
    label: &str,
    program: &Program,
    layout: &Layout,
    eirs: &[EirResult],
) -> Vec<Diagnostic> {
    let report = analyze_geometry(program, layout, machine);
    let cells: Vec<(SchemeKind, f64, f64)> = eirs
        .iter()
        .map(|r| (r.scheme, r.eir(), report.scheme(r.scheme).eir_bound))
        .collect();
    check_static_bound(label, &cells, STATIC_BOUND_TOLERANCE)
}

/// Panics with a rendered report if `diags` contains errors — the behaviour
/// of the [`ENABLED`]-gated self-check inside the plain entry points.
pub(crate) fn assert_clean(what: &str, diags: &[Diagnostic]) {
    if fetchmech_analysis::has_errors(diags) {
        panic!(
            "cycle sanitizer found invariant violations in {what}:\n{}",
            fetchmech_analysis::report_human(diags)
        );
    }
}
