//! Hand-rolled JSON: a small value model, a deterministic writer, and a
//! strict parser — shared by the serve subsystem, `fetchmech-lint --json`,
//! and the bench writers.
//!
//! The workspace builds hermetically (no registry access), so it cannot pull
//! in `serde`; before this module existed the lint CLI, the analysis crate,
//! and `examples/runner_bench.rs` each hand-rolled their own escaping and
//! number formatting. This module is the single implementation:
//!
//! * [`Value`] — an order-preserving JSON document model (object fields render
//!   in insertion order, so output is byte-deterministic).
//! * [`Value::render`] / [`Value::pretty`] — compact and indented writers.
//! * [`escape`] / [`escape_into`] — string escaping per RFC 8259.
//! * [`parse`] — a recursive-descent parser with a depth limit, used by the
//!   experiment service to decode request bodies.
//! * [`diagnostics_json`] — the lint CLI's diagnostic reporter, moved here
//!   from `fetchmech-analysis` so every JSON emitter shares one writer.
//!
//! Numbers render deterministically: integers print exactly ([`Value::Uint`]
//! and [`Value::Int`] hold the full 64-bit range), and floats use Rust's
//! shortest round-trip `Display`, with non-finite values rendering as `null`
//! (JSON has no NaN/Infinity).

use std::fmt;

use fetchmech_analysis::Diagnostic;

/// A JSON document.
///
/// Objects preserve insertion order (they are a `Vec` of pairs, not a map),
/// which keeps rendered output byte-deterministic — the property the serve
/// subsystem's "concurrent responses are byte-identical to serial execution"
/// guarantee rests on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (renders exactly, no float round-trip).
    Uint(u64),
    /// A signed integer (renders exactly, no float round-trip).
    Int(i64),
    /// A float (shortest round-trip formatting; non-finite renders `null`).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(fields: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a field of an object (`None` for non-objects and missing
    /// keys; first match wins on duplicate keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a `u64`, when it is a non-negative integer (including a
    /// float with an exact integral value, e.g. from a parser that produced
    /// `Num`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Uint(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Value::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// This value as an `f64`, when it is any kind of number.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Uint(n) => Some(n as f64),
            Value::Int(n) => Some(n as f64),
            Value::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The element slice, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace). Deterministic: field order is
    /// insertion order, numbers format as documented on [`Value`].
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with 2-space indentation (trailing newline not included).
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Uint(n) => out.push_str(&n.to_string()),
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Num(x) => out.push_str(&format_f64(*x)),
            Value::Str(s) => {
                out.push('"');
                escape_into(out, s);
                out.push('"');
            }
            Value::Array(items) => {
                write_seq(out, indent, depth, items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Value::Object(fields) => {
                write_seq_delim(out, indent, depth, fields.len(), ('{', '}'), |out, i| {
                    let (k, v) = &fields[i];
                    out.push('"');
                    escape_into(out, k);
                    out.push_str(if indent.is_some() { "\": " } else { "\":" });
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    item: impl FnMut(&mut String, usize),
) {
    write_seq_delim(out, indent, depth, len, ('[', ']'), item);
}

fn write_seq_delim(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    (open, close): (char, char),
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            for _ in 0..width * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

/// Formats an `f64` as a JSON number: shortest round-trip decimal for finite
/// values, `null` for NaN and the infinities (JSON cannot express them).
#[must_use]
pub fn format_f64(x: f64) -> String {
    if x.is_finite() {
        // Rust's `Display` for floats is the shortest string that parses back
        // to the same bits — deterministic and locale-independent. It never
        // uses exponent notation, so the output is always a valid JSON number.
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Escapes `s` for inclusion in a JSON string literal (without the quotes).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// [`escape`], appending into an existing buffer.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders diagnostics as a JSON array — the lint CLI's machine-readable
/// reporter (schema: `[{"rule_id", "severity", "location", "message"}]`),
/// previously hand-rolled inside `fetchmech-analysis`.
#[must_use]
pub fn diagnostics_json(diags: &[Diagnostic]) -> String {
    Value::Array(
        diags
            .iter()
            .map(|d| {
                Value::object([
                    ("rule_id", Value::Str(d.rule_id.to_string())),
                    ("severity", Value::Str(d.severity.to_string())),
                    ("location", Value::Str(d.location.to_string())),
                    ("message", Value::Str(d.message.clone())),
                ])
            })
            .collect(),
    )
    .pretty()
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum nesting depth [`parse`] accepts (defense against stack-abuse from
/// untrusted request bodies).
pub const MAX_DEPTH: usize = 32;

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// Integer literals that fit `u64`/`i64` parse to [`Value::Uint`] /
/// [`Value::Int`] exactly; everything else numeric becomes [`Value::Num`].
///
/// # Errors
///
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Value::Null),
            Some(b't') if self.eat("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", char::from(c)))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            // RFC 8259 leaves duplicate-key behaviour undefined; for a
            // parser fed untrusted uploads, silently keeping one of the two
            // values is a smuggling vector, so reject outright.
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key {key:?} in object")));
            }
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape_sequence(&mut out)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape_sequence(&mut self, out: &mut String) -> Result<(), ParseError> {
        let c = self.peek().ok_or_else(|| self.err("truncated escape"))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: require a following \uXXXX low half.
                    if !self.eat("\\u") {
                        return Err(self.err("unpaired high surrogate"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code).ok_or_else(|| self.err("invalid code point"))?);
            }
            other => {
                return Err(self.err(format!("unknown escape \\{}", char::from(other))));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Uint(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        match text.parse::<f64>() {
            // `1e999` parses to infinity, which `render` would emit as
            // `null`; reject here so hostile input cannot round-trip a
            // number into a different type.
            Ok(x) if x.is_finite() => Ok(Value::Num(x)),
            Ok(_) => Err(self.err(format!("number {text:?} overflows"))),
            Err(_) => Err(self.err(format!("invalid number {text:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_analysis::{Location, Severity};

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
        assert_eq!(escape("line\nfeed\ttab\rret"), "line\\nfeed\\ttab\\rret");
        assert_eq!(escape("\u{1}\u{1f}"), "\\u0001\\u001f");
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(escape("π≈3"), "π≈3");
    }

    #[test]
    fn number_formatting_is_exact_and_json_safe() {
        assert_eq!(Value::Uint(u64::MAX).render(), "18446744073709551615");
        assert_eq!(Value::Int(i64::MIN).render(), "-9223372036854775808");
        assert_eq!(Value::Num(0.1).render(), "0.1");
        assert_eq!(Value::Num(1.0).render(), "1");
        assert_eq!(Value::Num(-2.5).render(), "-2.5");
        // Non-finite floats cannot be JSON numbers.
        assert_eq!(Value::Num(f64::NAN).render(), "null");
        assert_eq!(Value::Num(f64::INFINITY).render(), "null");
        assert_eq!(format_f64(3.125), "3.125");
    }

    #[test]
    fn render_is_compact_and_ordered() {
        let v = Value::object([
            ("b", Value::Uint(1)),
            ("a", Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(v.render(), "{\"b\":1,\"a\":[true,null]}");
    }

    #[test]
    fn pretty_indents_and_handles_empties() {
        let v = Value::object([
            ("empty_obj", Value::Object(vec![])),
            ("empty_arr", Value::Array(vec![])),
            ("n", Value::Uint(7)),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"empty_obj\": {},\n  \"empty_arr\": [],\n  \"n\": 7\n}"
        );
        assert_eq!(Value::Array(vec![]).pretty(), "[]");
    }

    #[test]
    fn parse_roundtrips_documents() {
        let text = r#"{"a": [1, -2, 2.5, "x\n\"y\"", true, false, null], "b": {"c": 18446744073709551615}}"#;
        let v = parse(text).expect("parses");
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")),
            Some(&Value::Uint(u64::MAX))
        );
        let arr = v.get("a").and_then(Value::as_array).expect("array");
        assert_eq!(arr[0], Value::Uint(1));
        assert_eq!(arr[1], Value::Int(-2));
        assert_eq!(arr[2], Value::Num(2.5));
        assert_eq!(arr[3].as_str(), Some("x\n\"y\""));
        // Render → parse → render is a fixed point.
        let rendered = v.render();
        assert_eq!(parse(&rendered).expect("reparse").render(), rendered);
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        let v = parse(r#""é😀""#).expect("parses");
        assert_eq!(v.as_str(), Some("é😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate rejected");
    }

    #[test]
    fn parse_rejects_garbage_with_position() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\u{1}\""] {
            let err = parse(bad).expect_err(bad);
            assert!(err.pos <= bad.len(), "{bad}: {err}");
        }
        assert!(
            parse(&("[".repeat(40) + &"]".repeat(40))).is_err(),
            "depth limit"
        );
    }

    #[test]
    fn parse_rejects_hostile_input() {
        // Duplicate keys are a smuggling vector, not a tie to break.
        let e = parse(r#"{"a": 1, "a": 2}"#).expect_err("dup key");
        assert!(e.to_string().contains("duplicate key \"a\""), "{e}");
        assert!(parse(r#"{"a": {"x": 1, "x": 1}}"#).is_err(), "nested dup");
        // Same key at different depths is fine.
        assert!(parse(r#"{"a": {"a": 1}, "b": {"a": 2}}"#).is_ok());

        // Numbers that overflow to non-finite floats would silently become
        // `null` on re-render; reject them at the door.
        for bad in ["1e999", "-1e999", "1e99999999"] {
            let e = parse(bad).expect_err(bad);
            assert!(e.to_string().contains("overflows"), "{bad}: {e}");
        }
        // Large but representable magnitudes still parse.
        assert_eq!(parse("1e308"), Ok(Value::Num(1e308)));

        // Bad escapes never panic, they report a position.
        for bad in [r#""\q""#, r#""\u12""#, r#""\u{7}""#, r#""\ud800\ud800""#] {
            assert!(parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn accessors_coerce_sanely() {
        assert_eq!(Value::Num(3.0).as_u64(), Some(3));
        assert_eq!(Value::Num(3.5).as_u64(), None);
        assert_eq!(Value::Int(-1).as_u64(), None);
        assert_eq!(Value::Uint(5).as_f64(), Some(5.0));
        assert_eq!(Value::Str("x".into()).as_u64(), None);
        let obj = Value::object([("k", Value::Bool(true))]);
        assert_eq!(obj.get("k").and_then(Value::as_bool), Some(true));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn diagnostics_reporter_matches_the_old_schema() {
        let diags = vec![
            Diagnostic {
                rule_id: "prog.test-rule",
                severity: Severity::Error,
                location: Location::Program,
                message: "something \"quoted\"\nbroke".to_string(),
            },
            Diagnostic {
                rule_id: "layout.other",
                severity: Severity::Warning,
                location: Location::Trace(3),
                message: "suspicious".to_string(),
            },
        ];
        let json = diagnostics_json(&diags);
        assert!(json.contains("\\\"quoted\\\"\\nbroke"), "{json}");
        assert!(json.contains("\"rule_id\": \"prog.test-rule\""), "{json}");
        assert!(json.contains("\"severity\": \"warning\""), "{json}");
        assert!(json.contains("\"location\": \"trace#3\""), "{json}");
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'));
        assert_eq!(diagnostics_json(&[]), "[]");
        // The reporter's output is itself valid JSON.
        let parsed = parse(&json).expect("reporter emits valid JSON");
        assert_eq!(parsed.as_array().map(<[Value]>::len), Some(2));
    }
}
