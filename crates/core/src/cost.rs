//! Hardware-cost estimates for the alignment structures — the design
//! parameters of the paper's Figures 6 and 8.
//!
//! The paper quantifies each structure in transmission gates, multiplexers,
//! latches, and gate delays as a function of `k`, the number of instructions
//! per cache block. This module reproduces those formulas so the cost side
//! of the cost/performance trade-off is part of the library, not just the
//! paper's prose.

use std::fmt;

/// Cost parameters of one hardware structure, as the paper states them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StructureCost {
    /// Structure name.
    pub name: &'static str,
    /// Transmission gates.
    pub transmission_gates: u32,
    /// 32-bit multiplexer count (valid select) or demultiplexer count
    /// (crossbar).
    pub muxes: u32,
    /// 1-bit latches (shifter implementation only).
    pub latches: u32,
    /// Best-case delay in gate/latch delays.
    pub delay_best: u32,
    /// Worst-case delay in gate/latch delays.
    pub delay_worst: u32,
}

impl fmt::Display for StructureCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} transmission gates, {} muxes, {} latches, delay {}..{}",
            self.name,
            self.transmission_gates,
            self.muxes,
            self.latches,
            self.delay_best,
            self.delay_worst
        )
    }
}

/// The interchange switch of Figure 6(a): `64k` transmission gates, two gate
/// delays, for blocks of `k` 32-bit instructions.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn interchange_switch(k: u32) -> StructureCost {
    assert!(k > 0, "blocks hold at least one instruction");
    StructureCost {
        name: "interchange switch",
        transmission_gates: 64 * k,
        muxes: 0,
        latches: 0,
        delay_best: 2,
        delay_worst: 2,
    }
}

/// The valid-select logic of Figure 6(b): `3(k + (k-1) + 2)` 32-bit
/// multiplexers ("3 k-to-1, 3 (k-1)-to-1, 3 2-to-1"), four gate delays.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn valid_select(k: u32) -> StructureCost {
    assert!(k > 0, "blocks hold at least one instruction");
    StructureCost {
        name: "valid select",
        transmission_gates: 0,
        muxes: 3 * (k + (k - 1) + 2),
        latches: 0,
        delay_best: 4,
        delay_worst: 4,
    }
}

/// The shifter-implemented collapsing buffer of Figure 8(a): `64k` 1-bit
/// registers plus `64k - 32` transmission gates; input-dependent delay from
/// one latch delay up to `lg k` latch delays (the paper's worked example:
/// two latch delays for P14's `k = 4`).
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn collapsing_shifter(k: u32) -> StructureCost {
    assert!(k > 0, "blocks hold at least one instruction");
    let ceil_log2 = if k <= 1 {
        0
    } else {
        32 - (k - 1).leading_zeros()
    };
    StructureCost {
        name: "collapsing buffer (shifter)",
        transmission_gates: 64 * k - 32,
        muxes: 0,
        latches: 64 * k,
        delay_best: 1,
        delay_worst: ceil_log2.max(1),
    }
}

/// The bus-based crossbar collapsing buffer of Figure 8(b): `2k` 1-to-k
/// 32-bit demultiplexers, one gate delay plus bus propagation.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn collapsing_crossbar(k: u32) -> StructureCost {
    assert!(k > 0, "blocks hold at least one instruction");
    StructureCost {
        name: "collapsing buffer (crossbar)",
        transmission_gates: 0,
        muxes: 2 * k,
        latches: 0,
        delay_best: 1,
        delay_worst: 1, // + bus propagation, which the paper leaves symbolic
    }
}

/// All four structures for a machine with `k` instructions per cache block.
#[must_use]
pub fn all_structures(k: u32) -> [StructureCost; 4] {
    [
        interchange_switch(k),
        valid_select(k),
        collapsing_shifter(k),
        collapsing_crossbar(k),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_p14_numbers() {
        // k = 4 (16-byte blocks): the paper's worked example.
        let sw = interchange_switch(4);
        assert_eq!(sw.transmission_gates, 256); // 64k
        assert_eq!(sw.delay_worst, 2);

        let vs = valid_select(4);
        // 3 k-to-1 + 3 (k-1)-to-1 + 3 2-to-1 = 3*(4 + 3 + 2) = 27 muxes.
        assert_eq!(vs.muxes, 27);
        assert_eq!(vs.delay_worst, 4);

        let sh = collapsing_shifter(4);
        assert_eq!(sh.latches, 256); // 64k 1-bit registers
        assert_eq!(sh.transmission_gates, 224); // 64k - 32
                                                // The paper's worked example: two latch delays for P14 (k = 4).
        assert_eq!(sh.delay_worst, 2);
        assert_eq!(sh.delay_best, 1);

        let cb = collapsing_crossbar(4);
        assert_eq!(cb.muxes, 8); // 2k demuxes
        assert_eq!(cb.delay_worst, 1);
    }

    #[test]
    fn costs_scale_linearly_with_block_size() {
        for (k_small, k_big) in [(4u32, 8), (8, 16)] {
            assert_eq!(
                interchange_switch(k_big).transmission_gates,
                2 * interchange_switch(k_small).transmission_gates
            );
            assert_eq!(
                collapsing_crossbar(k_big).muxes,
                2 * collapsing_crossbar(k_small).muxes
            );
        }
    }

    #[test]
    fn crossbar_is_the_low_latency_implementation() {
        for k in [4u32, 8, 16] {
            assert!(
                collapsing_crossbar(k).delay_worst <= collapsing_shifter(k).delay_worst,
                "k = {k}"
            );
        }
    }

    #[test]
    fn display_mentions_the_structure() {
        let s = valid_select(8).to_string();
        assert!(s.contains("valid select"));
        assert!(s.contains("muxes"));
    }

    #[test]
    fn all_structures_cover_the_figures() {
        let all = all_structures(16);
        assert_eq!(all.len(), 4);
        let names: Vec<_> = all.iter().map(|s| s.name).collect();
        assert!(names.contains(&"interchange switch"));
        assert!(names.contains(&"collapsing buffer (crossbar)"));
    }
}
