//! The full-system simulator: fetch mechanism + out-of-order core.
//!
//! [`simulate`] wires an [`AlignedFetchUnit`] to an
//! [`OooCore`] and runs a dynamic trace to
//! completion, producing the paper's two metrics: **IPC** (useful
//! instructions retired per cycle) and **EIR** (instructions supplied to the
//! decoders per cycle). Padding nops are excluded from the IPC numerator —
//! they retire, but they are not work.

use std::collections::VecDeque;

use fetchmech_analysis::CycleSanitizer;
use fetchmech_bpred::{Btb, BtbStats};
use fetchmech_cache::{CacheStats, ICache};
use fetchmech_isa::OpClass;
use fetchmech_pipeline::{FetchUnit, FetchedInst, MachineModel, OooCore, TraceCursor};

use crate::scheme::SchemeKind;
use crate::unit::{AlignedFetchUnit, FetchConfig, FetchStats};

/// Result of one simulation run.
///
/// `PartialEq` compares every field, which is how the parallel-runner tests
/// assert bit-identical serial/parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Scheme simulated.
    pub scheme: SchemeKind,
    /// Machine model name.
    pub machine: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired (including nops).
    pub retired: u64,
    /// Non-nop instructions retired.
    pub retired_useful: u64,
    /// Instructions delivered to the decoders (including nops).
    pub delivered: u64,
    /// Fetch-unit statistics.
    pub fetch: FetchStats,
    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// BTB statistics.
    pub btb: BtbStats,
}

impl SimResult {
    /// Useful instructions retired per cycle — the paper's chief metric.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_useful as f64 / self.cycles as f64
        }
    }

    /// Effective issue rate: instructions supplied to the decoders per cycle.
    #[must_use]
    pub fn eir(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }
}

/// Builds the fetch unit for `machine` running `scheme` over `trace`.
///
/// The trace is *borrowed, not moved*: any `Into<TraceCursor>` works — an
/// owned `Vec<DynInst>`, a `&Arc<[DynInst]>` straight out of the
/// [`Lab`](crate::experiments::Lab) trace cache (a refcount bump, no copy),
/// or an existing cursor.
#[must_use]
pub fn build_fetch_unit(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
) -> AlignedFetchUnit {
    let cfg = FetchConfig {
        scheme,
        issue_rate: machine.issue_rate,
        block_bytes: machine.block_bytes,
        fetch_penalty: machine.fetch_penalty,
        miss_penalty: machine.icache_miss_penalty,
        spec_depth: machine.spec_depth,
        predictor: machine.predictor,
        ras_entries: machine.ras_entries,
    };
    let icache = ICache::new(machine.cache_config(scheme.banks().max(2)));
    let btb = Btb::new(machine.btb_config());
    AlignedFetchUnit::new(cfg, icache, btb, trace.into())
}

/// Runs `trace` through `machine` with the given fetch `scheme` until every
/// instruction retires. Returns the aggregate [`SimResult`].
///
/// # Panics
///
/// Panics if the simulation exceeds a safety bound of 64 cycles per trace
/// instruction plus slack (which would indicate a deadlock bug, not a slow
/// workload).
#[must_use]
pub fn simulate(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
) -> SimResult {
    if crate::sanitize::ENABLED {
        let (result, diags) = crate::sanitize::simulate_checked(machine, scheme, trace);
        crate::sanitize::assert_clean(&format!("simulate({scheme}, {})", machine.name), &diags);
        return result;
    }
    simulate_observed(machine, scheme, trace.into(), None)
}

/// [`simulate`] with an optional sanitizer observing every pipeline event.
///
/// The `san` parameter is how the sanitizer stays zero-cost when off: the
/// observation sites are `if let Some(..)` on this option, and the two
/// public entry points pass a compile-time-known `None` unless
/// [`crate::sanitize::ENABLED`] holds.
pub(crate) fn simulate_observed(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: TraceCursor,
    mut san: Option<&mut CycleSanitizer>,
) -> SimResult {
    let mut fetch = build_fetch_unit(machine, scheme, trace);
    let mut core = OooCore::new(machine.ooo_config());
    let mut queue: VecDeque<FetchedInst> = VecDeque::new();
    // Sequence number of the in-flight mispredicted control transfer whose
    // resolution fetch is waiting on.
    let mut watched: Option<u64> = None;
    // A delivered-but-not-yet-dispatched mispredicted instruction.
    let mut queued_mispredict = false;
    let mut queued_conds = 0u32;
    let mut nops_fetched = 0u64;

    let mut cycle: u64 = 0;
    loop {
        // 1. Complete + retire; notify fetch of the watched resolution.
        let resolved = core.begin_cycle(cycle);
        for r in &resolved {
            if Some(r.seq) == watched {
                debug_assert!(r.mispredicted);
                fetch.on_mispredict_resolved(cycle);
                if let Some(s) = san.as_deref_mut() {
                    s.observe_resolved(cycle);
                }
                watched = None;
            }
        }

        // 2. Fire ready instructions.
        core.fire(cycle);

        // 3. Dispatch from the decode queue. Nops are dropped here: they
        // consume fetch and dispatch bandwidth (the §4.1 padding cost) but
        // never occupy a window or ROB slot — the behaviour the paper's
        // pad-all results imply.
        let mut dispatched = 0;
        while dispatched < machine.issue_rate && !queue.is_empty() {
            if queue.front().expect("nonempty queue").inst.op == OpClass::Nop {
                let fi = queue.pop_front().expect("nonempty queue");
                if let Some(s) = san.as_deref_mut() {
                    s.observe_squash(cycle, &fi);
                }
                dispatched += 1;
                continue;
            }
            if !core.can_accept() {
                break;
            }
            let fi = queue.pop_front().expect("nonempty queue");
            if fi.inst.op == OpClass::CondBranch {
                queued_conds -= 1;
            }
            let seq = core.dispatch(&fi);
            if let Some(s) = san.as_deref_mut() {
                s.observe_issue(cycle, &fi);
            }
            if fi.mispredicted {
                queued_mispredict = false;
                watched = Some(seq);
            }
            dispatched += 1;
        }
        if !queue.is_empty() && dispatched == 0 {
            core.note_window_full();
        }
        if let Some(s) = san.as_deref_mut() {
            s.observe_core_state(cycle, core.audit_invariants());
        }

        // 4. Fetch into the (single-packet) decode queue.
        if queue.is_empty() && !queued_mispredict {
            let unresolved = core.unresolved_cond() + queued_conds;
            let packet = fetch.cycle(cycle, unresolved);
            if let Some(s) = san.as_deref_mut() {
                s.observe_packet(cycle, unresolved, &packet, &fetch.btb().stats());
            }
            queued_mispredict = packet.ends_mispredicted();
            for fi in packet.insts {
                if fi.inst.op == OpClass::CondBranch {
                    queued_conds += 1;
                }
                if fi.inst.op == OpClass::Nop {
                    nops_fetched += 1;
                }
                queue.push_back(fi);
            }
        }

        cycle += 1;
        if fetch.done() && queue.is_empty() && core.drained() {
            break;
        }
        assert!(
            cycle <= 1_000_000 + 64 * fetch.delivered().max(100_000),
            "simulation runaway: {} cycles for {} delivered instructions",
            cycle,
            fetch.delivered()
        );
    }

    if let Some(s) = san {
        s.finish(cycle, fetch.delivered());
    }

    // Nops never dispatch, so everything the core retired is useful work.
    let retired = core.stats().retired;
    SimResult {
        scheme,
        machine: machine.name.clone(),
        cycles: cycle,
        retired: retired + nops_fetched,
        retired_useful: retired,
        delivered: fetch.delivered(),
        fetch: *fetch.stats(),
        icache: fetch.icache().stats(),
        btb: fetch.btb().stats(),
    }
}

/// Result of a fetch-only EIR measurement (see [`measure_eir`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EirResult {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Cycles consumed by the fetch unit alone.
    pub cycles: u64,
    /// Instructions delivered.
    pub delivered: u64,
    /// Fetch-unit statistics.
    pub fetch: FetchStats,
}

impl EirResult {
    /// Effective issue rate: instructions supplied per cycle.
    #[must_use]
    pub fn eir(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }
}

/// Measures the *effective issue rate* of a fetch mechanism in isolation —
/// the Figure 10 metric.
///
/// The back end is idealized: it never backpressures, never hits the
/// speculation-depth limit, and resolves a mispredicted control transfer one
/// cycle after delivery (the minimum dispatch-plus-execute time), so the
/// misprediction cost is `1 + fetch_penalty` cycles. What remains is the
/// fetch unit's own ability to align instructions, which is exactly what
/// `EIR / EIR(perfect)` is meant to isolate.
#[must_use]
pub fn measure_eir(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
) -> EirResult {
    if crate::sanitize::ENABLED {
        let (result, diags) = crate::sanitize::measure_eir_checked(machine, scheme, trace);
        crate::sanitize::assert_clean(&format!("measure_eir({scheme}, {})", machine.name), &diags);
        return result;
    }
    measure_eir_observed(machine, scheme, trace.into(), None)
}

/// [`measure_eir`] with an optional sanitizer observing every fetch cycle
/// (see [`simulate_observed`] for the gating pattern).
pub(crate) fn measure_eir_observed(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: TraceCursor,
    mut san: Option<&mut CycleSanitizer>,
) -> EirResult {
    let mut fetch = build_fetch_unit(machine, scheme, trace);
    let mut cycle: u64 = 0;
    loop {
        let packet = fetch.cycle(cycle, 0);
        if let Some(s) = san.as_deref_mut() {
            s.observe_packet(cycle, 0, &packet, &fetch.btb().stats());
        }
        if packet.ends_mispredicted() {
            fetch.on_mispredict_resolved(cycle + 1);
            if let Some(s) = san.as_deref_mut() {
                s.observe_resolved(cycle + 1);
            }
        }
        cycle += 1;
        if fetch.done() {
            break;
        }
        assert!(
            cycle <= 1_000_000 + 64 * fetch.delivered().max(100_000),
            "EIR measurement runaway"
        );
    }
    if let Some(s) = san {
        s.finish(cycle, fetch.delivered());
    }
    EirResult {
        scheme,
        cycles: cycle,
        delivered: fetch.delivered(),
        fetch: *fetch.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Layout, LayoutOptions};
    use fetchmech_workloads::{suite, InputId};

    fn run(scheme: SchemeKind, machine: &MachineModel, n: u64) -> SimResult {
        let w = suite::benchmark("compress").expect("known benchmark");
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
        // The executor borrows the workload, so collect the trace (tests use
        // short traces; experiment drivers share cached `Arc` traces instead).
        let trace: Vec<_> = w.executor(&layout, InputId::TEST, n).collect();
        simulate(machine, scheme, trace)
    }

    #[test]
    fn all_schemes_complete_and_order_sanely() {
        let machine = MachineModel::p14();
        let mut ipcs = Vec::new();
        for scheme in SchemeKind::ALL {
            let r = run(scheme, &machine, 20_000);
            assert_eq!(r.retired, 20_000, "{scheme}: all instructions must retire");
            assert!(r.ipc() > 0.0 && r.ipc() <= 4.0, "{scheme}: ipc {}", r.ipc());
            assert!(r.eir() >= r.ipc() - 1e-9, "{scheme}: EIR must bound IPC");
            ipcs.push((scheme, r.ipc()));
        }
        let ipc_of = |k: SchemeKind| ipcs.iter().find(|(s, _)| *s == k).expect("ran").1;
        // Perfect dominates; the collapsing buffer dominates sequential.
        assert!(ipc_of(SchemeKind::Perfect) >= ipc_of(SchemeKind::CollapsingBuffer) - 0.05);
        assert!(ipc_of(SchemeKind::CollapsingBuffer) >= ipc_of(SchemeKind::Sequential) - 0.05);
    }

    #[test]
    fn simulation_is_deterministic() {
        let machine = MachineModel::p14();
        let a = run(SchemeKind::CollapsingBuffer, &machine, 10_000);
        let b = run(SchemeKind::CollapsingBuffer, &machine, 10_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn eir_never_exceeds_issue_rate() {
        let machine = MachineModel::p18();
        let r = run(SchemeKind::Perfect, &machine, 20_000);
        assert!(
            r.eir() <= f64::from(machine.issue_rate) + 1e-9,
            "eir = {}",
            r.eir()
        );
    }
}
