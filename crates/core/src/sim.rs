//! The full-system simulator: fetch mechanism + out-of-order core.
//!
//! [`simulate`] wires a fetch unit to an out-of-order core and runs a
//! dynamic trace to completion, producing the paper's two metrics: **IPC**
//! (useful instructions retired per cycle) and **EIR** (instructions
//! supplied to the decoders per cycle). Padding nops are excluded from the
//! IPC numerator — they retire, but they are not work.
//!
//! Both [`simulate`] and [`measure_eir`] accept either input representation
//! through [`SimSource`]:
//!
//! * a **per-instruction trace** (`Vec<DynInst>`, `Arc<[DynInst]>`,
//!   [`TraceCursor`]) runs the reference path: [`AlignedFetchUnit`] +
//!   [`OooCore`], one trace element per instruction;
//! * a **block stream** (`Arc<BlockStream>`, [`BlockCursor`]) runs the fast
//!   path: [`BlockFetchUnit`] + [`StreamCore`], which walks run-length
//!   fetch-block segments, dispatches without materializing packets, and
//!   skips provably-idle stretches of cycles in O(1).
//!
//! The two paths produce bit-identical [`SimResult`]s. That is not an
//! aspiration but an enforced invariant: whenever the cycle sanitizer is
//! enabled (debug builds and `--features sanitize`), every block-stream
//! simulation re-runs through the sanitized per-instruction oracle and
//! asserts whole-result equality.

use std::collections::VecDeque;
use std::sync::Arc;

use fetchmech_analysis::CycleSanitizer;
use fetchmech_bpred::{Btb, BtbStats};
use fetchmech_cache::{CacheStats, ICache};
use fetchmech_isa::{BlockStream, DynInst, OpClass};
use fetchmech_pipeline::{
    BlockCursor, FetchUnit, FetchedInst, MachineModel, OooCore, StreamCore, TraceCursor,
};

use crate::scheme::SchemeKind;
use crate::unit::{
    AlignedFetchUnit, BlockFetchUnit, BlockPacket, FetchConfig, FetchOutcome, FetchStats,
};

/// Result of one simulation run.
///
/// `PartialEq` compares every field, which is how the parallel-runner tests
/// assert bit-identical serial/parallel execution and how the differential
/// oracle asserts block-stream/per-instruction equivalence.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Scheme simulated.
    pub scheme: SchemeKind,
    /// Machine model name.
    pub machine: String,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired (including nops).
    pub retired: u64,
    /// Non-nop instructions retired.
    pub retired_useful: u64,
    /// Instructions delivered to the decoders (including nops).
    pub delivered: u64,
    /// Fetch-unit statistics.
    pub fetch: FetchStats,
    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// BTB statistics.
    pub btb: BtbStats,
}

impl SimResult {
    /// Useful instructions retired per cycle — the paper's chief metric.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_useful as f64 / self.cycles as f64
        }
    }

    /// Effective issue rate: instructions supplied to the decoders per cycle.
    #[must_use]
    pub fn eir(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }
}

/// The instruction source for [`simulate`] and [`measure_eir`]: either a
/// per-instruction trace (the reference oracle path) or a run-length block
/// stream (the fast path).
///
/// Everything that converted into a [`TraceCursor`] before still converts
/// into a `SimSource`, so existing per-instruction callers are unchanged;
/// handing an `Arc<BlockStream>` (e.g. from the
/// [`Lab`](crate::experiments::Lab) stream cache) selects the fast path.
#[derive(Debug, Clone)]
pub enum SimSource {
    /// A per-instruction dynamic trace.
    Insts(TraceCursor),
    /// A run-length fetch-block stream.
    Blocks(BlockCursor),
}

impl From<TraceCursor> for SimSource {
    fn from(c: TraceCursor) -> Self {
        SimSource::Insts(c)
    }
}

impl From<Vec<DynInst>> for SimSource {
    fn from(v: Vec<DynInst>) -> Self {
        SimSource::Insts(TraceCursor::new(v))
    }
}

impl From<Arc<[DynInst]>> for SimSource {
    fn from(t: Arc<[DynInst]>) -> Self {
        SimSource::Insts(TraceCursor::new(t))
    }
}

impl From<&Arc<[DynInst]>> for SimSource {
    fn from(t: &Arc<[DynInst]>) -> Self {
        SimSource::Insts(TraceCursor::new(Arc::clone(t)))
    }
}

impl From<&[DynInst]> for SimSource {
    fn from(t: &[DynInst]) -> Self {
        SimSource::Insts(TraceCursor::new(t))
    }
}

impl From<BlockCursor> for SimSource {
    fn from(c: BlockCursor) -> Self {
        SimSource::Blocks(c)
    }
}

impl From<Arc<BlockStream>> for SimSource {
    fn from(s: Arc<BlockStream>) -> Self {
        SimSource::Blocks(BlockCursor::new(s))
    }
}

impl From<&Arc<BlockStream>> for SimSource {
    fn from(s: &Arc<BlockStream>) -> Self {
        SimSource::Blocks(BlockCursor::new(Arc::clone(s)))
    }
}

impl From<BlockStream> for SimSource {
    fn from(s: BlockStream) -> Self {
        SimSource::Blocks(BlockCursor::new(Arc::new(s)))
    }
}

fn fetch_config(machine: &MachineModel, scheme: SchemeKind) -> FetchConfig {
    FetchConfig {
        scheme,
        issue_rate: machine.issue_rate,
        block_bytes: machine.block_bytes,
        fetch_penalty: machine.fetch_penalty,
        miss_penalty: machine.icache_miss_penalty,
        spec_depth: machine.spec_depth,
        predictor: machine.predictor,
        ras_entries: machine.ras_entries,
    }
}

/// Builds the per-instruction fetch unit for `machine` running `scheme`
/// over `trace`.
///
/// The trace is *borrowed, not moved*: any `Into<TraceCursor>` works — an
/// owned `Vec<DynInst>`, a `&Arc<[DynInst]>` straight out of the
/// [`Lab`](crate::experiments::Lab) trace cache (a refcount bump, no copy),
/// or an existing cursor.
#[must_use]
pub fn build_fetch_unit(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: impl Into<TraceCursor>,
) -> AlignedFetchUnit {
    let cfg = fetch_config(machine, scheme);
    let icache = ICache::new(machine.cache_config(scheme.banks().max(2)));
    let btb = Btb::new(machine.btb_config());
    AlignedFetchUnit::new(cfg, icache, btb, trace.into())
}

/// Builds the block-stream fetch unit for `machine` running `scheme` over a
/// run-length block stream — the fast-path counterpart of
/// [`build_fetch_unit`], with identical cache/BTB construction.
#[must_use]
pub fn build_block_fetch_unit(
    machine: &MachineModel,
    scheme: SchemeKind,
    stream: impl Into<BlockCursor>,
) -> BlockFetchUnit {
    let cfg = fetch_config(machine, scheme);
    let icache = ICache::new(machine.cache_config(scheme.banks().max(2)));
    let btb = Btb::new(machine.btb_config());
    BlockFetchUnit::new(cfg, icache, btb, stream.into())
}

/// Runs `source` through `machine` with the given fetch `scheme` until every
/// instruction retires. Returns the aggregate [`SimResult`].
///
/// Per-instruction sources take the reference path; block streams take the
/// fast path (identical results, enforced by the differential oracle when
/// the sanitizer is enabled).
///
/// # Panics
///
/// Panics if the simulation exceeds a safety bound of 64 cycles per trace
/// instruction plus slack (which would indicate a deadlock bug, not a slow
/// workload).
#[must_use]
pub fn simulate(
    machine: &MachineModel,
    scheme: SchemeKind,
    source: impl Into<SimSource>,
) -> SimResult {
    match source.into() {
        SimSource::Insts(cursor) => {
            if crate::sanitize::ENABLED {
                let (result, diags) = crate::sanitize::simulate_checked(machine, scheme, cursor);
                crate::sanitize::assert_clean(
                    &format!("simulate({scheme}, {})", machine.name),
                    &diags,
                );
                return result;
            }
            simulate_observed(machine, scheme, cursor, None)
        }
        SimSource::Blocks(cursor) => simulate_blocks(machine, scheme, cursor),
    }
}

/// [`simulate`] with an optional sanitizer observing every pipeline event.
///
/// The `san` parameter is how the sanitizer stays zero-cost when off: the
/// observation sites are `if let Some(..)` on this option, and the two
/// public entry points pass a compile-time-known `None` unless
/// [`crate::sanitize::ENABLED`] holds.
pub(crate) fn simulate_observed(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: TraceCursor,
    mut san: Option<&mut CycleSanitizer>,
) -> SimResult {
    let mut fetch = build_fetch_unit(machine, scheme, trace);
    let mut core = OooCore::new(machine.ooo_config());
    let mut queue: VecDeque<FetchedInst> = VecDeque::new();
    // Sequence number of the in-flight mispredicted control transfer whose
    // resolution fetch is waiting on.
    let mut watched: Option<u64> = None;
    // A delivered-but-not-yet-dispatched mispredicted instruction.
    let mut queued_mispredict = false;
    let mut queued_conds = 0u32;
    let mut nops_fetched = 0u64;

    let mut cycle: u64 = 0;
    loop {
        // 1. Complete + retire; notify fetch of the watched resolution.
        let resolved = core.begin_cycle(cycle);
        for r in &resolved {
            if Some(r.seq) == watched {
                debug_assert!(r.mispredicted);
                fetch.on_mispredict_resolved(cycle);
                if let Some(s) = san.as_deref_mut() {
                    s.observe_resolved(cycle);
                }
                watched = None;
            }
        }

        // 2. Fire ready instructions.
        core.fire(cycle);

        // 3. Dispatch from the decode queue. Nops are dropped here: they
        // consume fetch and dispatch bandwidth (the §4.1 padding cost) but
        // never occupy a window or ROB slot — the behaviour the paper's
        // pad-all results imply.
        let mut dispatched = 0;
        while dispatched < machine.issue_rate && !queue.is_empty() {
            if queue.front().expect("nonempty queue").inst.op == OpClass::Nop {
                let fi = queue.pop_front().expect("nonempty queue");
                if let Some(s) = san.as_deref_mut() {
                    s.observe_squash(cycle, &fi);
                }
                dispatched += 1;
                continue;
            }
            if !core.can_accept() {
                break;
            }
            let fi = queue.pop_front().expect("nonempty queue");
            if fi.inst.op == OpClass::CondBranch {
                queued_conds -= 1;
            }
            let seq = core.dispatch(&fi);
            if let Some(s) = san.as_deref_mut() {
                s.observe_issue(cycle, &fi);
            }
            if fi.mispredicted {
                queued_mispredict = false;
                watched = Some(seq);
            }
            dispatched += 1;
        }
        if !queue.is_empty() && dispatched == 0 {
            core.note_window_full();
        }
        if let Some(s) = san.as_deref_mut() {
            s.observe_core_state(cycle, core.audit_invariants());
        }

        // 4. Fetch into the (single-packet) decode queue.
        if queue.is_empty() && !queued_mispredict {
            let unresolved = core.unresolved_cond() + queued_conds;
            let packet = fetch.cycle(cycle, unresolved);
            if let Some(s) = san.as_deref_mut() {
                s.observe_packet(cycle, unresolved, &packet, &fetch.btb().stats());
            }
            queued_mispredict = packet.ends_mispredicted();
            for fi in packet.insts {
                if fi.inst.op == OpClass::CondBranch {
                    queued_conds += 1;
                }
                if fi.inst.op == OpClass::Nop {
                    nops_fetched += 1;
                }
                queue.push_back(fi);
            }
        }

        cycle += 1;
        if fetch.done() && queue.is_empty() && core.drained() {
            break;
        }
        assert!(
            cycle <= 1_000_000 + 64 * fetch.delivered().max(100_000),
            "simulation runaway: {} cycles for {} delivered instructions",
            cycle,
            fetch.delivered()
        );
    }

    if let Some(s) = san {
        s.finish(cycle, fetch.delivered());
    }

    // Nops never dispatch, so everything the core retired is useful work.
    let retired = core.stats().retired;
    SimResult {
        scheme,
        machine: machine.name.clone(),
        cycles: cycle,
        retired: retired + nops_fetched,
        retired_useful: retired,
        delivered: fetch.delivered(),
        fetch: *fetch.stats(),
        icache: fetch.icache().stats(),
        btb: fetch.btb().stats(),
    }
}

/// Block-stream [`simulate`]: runs the fast path, and — when the sanitizer
/// is enabled and the cursor starts at the beginning of the stream —
/// re-runs the materialized trace through the sanitized per-instruction
/// oracle and asserts the two [`SimResult`]s are identical.
fn simulate_blocks(machine: &MachineModel, scheme: SchemeKind, cursor: BlockCursor) -> SimResult {
    let oracle_input = (crate::sanitize::ENABLED && cursor.pos() == 0).then(|| cursor.shared());
    let fast = simulate_blocks_fast(machine, scheme, cursor);
    if let Some(stream) = oracle_input {
        let (oracle, diags) =
            crate::sanitize::simulate_checked(machine, scheme, stream.materialize());
        crate::sanitize::assert_clean(
            &format!("simulate_blocks({scheme}, {})", machine.name),
            &diags,
        );
        assert_eq!(
            fast, oracle,
            "block-stream fast path diverged from the per-instruction oracle \
             ({scheme}, {})",
            machine.name
        );
    }
    fast
}

/// The block-stream simulation loop. Mirrors [`simulate_observed`] phase by
/// phase — complete/retire, fire, dispatch, fetch — with two differences
/// that cannot change the result:
///
/// * packets stay in run-length form ([`BlockPacket`]) and dispatch reads
///   instructions straight out of the shared stream's templates;
/// * stretches of cycles in which *nothing can happen* are skipped in O(1),
///   with the per-cycle statistics the oracle would have recorded on those
///   cycles (window-full counts, redirect stalls) patched in exactly.
///
/// A cycle is skippable only when the core neither starved a ready
/// instruction this cycle nor holds a retirable ROB head (either would make
/// the next cycle do real work), and then only up to the next completion
/// time — the next moment the core's state can change. Speculation-blocked
/// cycles are never skipped: each one performs real I-cache accesses in the
/// fetch unit, and those must be simulated faithfully.
fn simulate_blocks_fast(
    machine: &MachineModel,
    scheme: SchemeKind,
    cursor: BlockCursor,
) -> SimResult {
    let stream = cursor.shared();
    let mut fetch = build_block_fetch_unit(machine, scheme, cursor);
    let mut core = StreamCore::new(machine.ooo_config());
    let issue_rate = machine.issue_rate;

    // The current packet, in run-length form, and the dispatch position
    // within it: `run_idx`/`run_off` index into `pkt.runs`, `pkt_left`
    // counts undispatched instructions.
    let mut pkt = BlockPacket::default();
    let mut run_idx = 0usize;
    let mut run_off = 0u32;
    let mut pkt_left = 0u32;
    // Sequence number of the in-flight mispredicted control transfer whose
    // resolution fetch is waiting on.
    let mut watched: Option<u64> = None;
    // A delivered-but-not-yet-dispatched mispredicted instruction.
    let mut queued_mispredict = false;
    let mut nops_fetched = 0u64;
    // Outcome of the most recent fetch call; consulted by the idle-cycle
    // skip only when the packet is empty, in which case it is always fresh
    // (an empty packet and a pending queued mispredict cannot coexist — the
    // flag clears when the packet's final instruction dispatches).
    let mut idle = FetchOutcome::Delivered;

    let mut cycle: u64 = 0;
    loop {
        // 1. Complete + retire; notify fetch of the watched resolution.
        if core.begin_cycle(cycle, watched) {
            fetch.on_mispredict_resolved(cycle);
            watched = None;
        }

        // 2. Fire ready instructions.
        let starved = core.fire(cycle);

        // 3. Dispatch from the current packet. Nops are dropped here, as in
        // the oracle: they consume dispatch bandwidth but never occupy a
        // window or ROB slot.
        let mut dispatched = 0u32;
        let had_backlog = pkt_left > 0;
        if pkt_left > 0 {
            // Resolve the current run to a template slice once per run, not
            // once per instruction.
            let (tid, base, len) = pkt.runs[run_idx];
            let mut insts = &stream.template(tid).insts()[base as usize..(base + len) as usize];
            while dispatched < issue_rate && pkt_left > 0 {
                let inst = &insts[run_off as usize];
                if inst.op == OpClass::Nop {
                    // Squashed at dispatch; no core interaction.
                } else {
                    if !core.can_accept() {
                        break;
                    }
                    let mispredicted = pkt.mispredicted && pkt_left == 1;
                    let seq = core.dispatch(inst.op, inst.dest, inst.srcs, mispredicted);
                    if mispredicted {
                        queued_mispredict = false;
                        watched = Some(seq);
                    }
                }
                run_off += 1;
                pkt_left -= 1;
                dispatched += 1;
                if run_off as usize == insts.len() {
                    run_idx += 1;
                    run_off = 0;
                    if pkt_left > 0 {
                        let (tid, base, len) = pkt.runs[run_idx];
                        insts = &stream.template(tid).insts()[base as usize..(base + len) as usize];
                    }
                }
            }
        }
        if pkt_left > 0 && dispatched == 0 {
            core.note_window_full(1);
        }

        // 4. Fetch the next packet once the current one has fully dispatched.
        if pkt_left == 0 && !queued_mispredict {
            // The packet queue is empty, so its conditional-branch count
            // contributes nothing: unresolved = in-flight conds only.
            idle = fetch.cycle_into(cycle, core.unresolved_cond(), &mut pkt);
            if idle == FetchOutcome::Delivered {
                pkt_left = pkt.len;
                run_idx = 0;
                run_off = 0;
                nops_fetched += u64::from(pkt.nops);
                queued_mispredict = pkt.mispredicted;
            }
        }

        cycle += 1;
        if fetch.done() && pkt_left == 0 && core.drained() {
            break;
        }
        assert!(
            cycle <= 1_000_000 + 64 * fetch.delivered().max(100_000),
            "simulation runaway: {} cycles for {} delivered instructions",
            cycle,
            fetch.delivered()
        );

        // 5. Idle-cycle skip. Guards: a starved ready instruction fires next
        // cycle, a retirable ROB head retires next cycle, and instructions
        // dispatched *this* cycle fire next cycle — any of these makes the
        // next cycle do real work, so no skip. (Every other in-window entry
        // was offered to `fire` this cycle and found not ready; it cannot
        // become ready before the next completion.)
        if starved || core.front_retirable() || dispatched > 0 {
            continue;
        }
        if pkt_left > 0 {
            // Dispatch was attempted on a leftover packet and fully blocked
            // (the head is a non-nop and the window/ROB is full; a freshly
            // fetched packet has not been offered to dispatch yet). Until
            // the next completion, every cycle repeats verbatim: nothing
            // completes or retires, nothing fires, dispatch stays blocked,
            // fetch is not consulted, and the oracle records one
            // window-full cycle each time.
            if had_backlog && dispatched == 0 {
                if let Some(t) = core.next_completion() {
                    if t > cycle {
                        core.note_window_full(t - cycle);
                        cycle = t;
                    }
                }
            }
        } else {
            match idle {
                FetchOutcome::AwaitResolve => {
                    // Waiting on the watched branch. Until the next
                    // completion nothing can resolve, and the oracle
                    // records one redirect-stall cycle each time.
                    if let Some(t) = core.next_completion() {
                        if t > cycle {
                            fetch.add_redirect_stalls(t - cycle);
                            cycle = t;
                        }
                    }
                }
                FetchOutcome::Stalled { until } => {
                    // Miss or post-redirect penalty: fetch returns nothing
                    // (and records nothing) before `until`, so jump to the
                    // earlier of the stall end and the next completion.
                    let t = core.next_completion().map_or(until, |c| c.min(until));
                    if t > cycle {
                        cycle = t;
                    }
                }
                FetchOutcome::Done => {
                    // Stream exhausted; only the core is draining.
                    if let Some(t) = core.next_completion() {
                        if t > cycle {
                            cycle = t;
                        }
                    }
                }
                // Delivered: the fresh packet dispatches next cycle.
                // SpecBlocked: each blocked cycle performs real I-cache
                // accesses (and possible bank conflicts) in the fetch unit —
                // never skipped.
                FetchOutcome::Delivered | FetchOutcome::SpecBlocked => {}
            }
        }
    }

    // Nops never dispatch, so everything the core retired is useful work.
    let retired = core.stats().retired;
    SimResult {
        scheme,
        machine: machine.name.clone(),
        cycles: cycle,
        retired: retired + nops_fetched,
        retired_useful: retired,
        delivered: fetch.delivered(),
        fetch: *fetch.stats(),
        icache: fetch.icache().stats(),
        btb: fetch.btb().stats(),
    }
}

/// Result of a fetch-only EIR measurement (see [`measure_eir`]).
#[derive(Debug, Clone, PartialEq)]
pub struct EirResult {
    /// Scheme measured.
    pub scheme: SchemeKind,
    /// Cycles consumed by the fetch unit alone.
    pub cycles: u64,
    /// Instructions delivered.
    pub delivered: u64,
    /// Fetch-unit statistics.
    pub fetch: FetchStats,
}

impl EirResult {
    /// Effective issue rate: instructions supplied per cycle.
    #[must_use]
    pub fn eir(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.delivered as f64 / self.cycles as f64
        }
    }
}

/// Measures the *effective issue rate* of a fetch mechanism in isolation —
/// the Figure 10 metric.
///
/// The back end is idealized: it never backpressures, never hits the
/// speculation-depth limit, and resolves a mispredicted control transfer one
/// cycle after delivery (the minimum dispatch-plus-execute time), so the
/// misprediction cost is `1 + fetch_penalty` cycles. What remains is the
/// fetch unit's own ability to align instructions, which is exactly what
/// `EIR / EIR(perfect)` is meant to isolate.
///
/// Accepts either input representation, like [`simulate`].
#[must_use]
pub fn measure_eir(
    machine: &MachineModel,
    scheme: SchemeKind,
    source: impl Into<SimSource>,
) -> EirResult {
    match source.into() {
        SimSource::Insts(cursor) => {
            if crate::sanitize::ENABLED {
                let (result, diags) = crate::sanitize::measure_eir_checked(machine, scheme, cursor);
                crate::sanitize::assert_clean(
                    &format!("measure_eir({scheme}, {})", machine.name),
                    &diags,
                );
                return result;
            }
            measure_eir_observed(machine, scheme, cursor, None)
        }
        SimSource::Blocks(cursor) => measure_eir_blocks(machine, scheme, cursor),
    }
}

/// [`measure_eir`] with an optional sanitizer observing every fetch cycle
/// (see [`simulate_observed`] for the gating pattern).
pub(crate) fn measure_eir_observed(
    machine: &MachineModel,
    scheme: SchemeKind,
    trace: TraceCursor,
    mut san: Option<&mut CycleSanitizer>,
) -> EirResult {
    let mut fetch = build_fetch_unit(machine, scheme, trace);
    let mut cycle: u64 = 0;
    loop {
        let packet = fetch.cycle(cycle, 0);
        if let Some(s) = san.as_deref_mut() {
            s.observe_packet(cycle, 0, &packet, &fetch.btb().stats());
        }
        if packet.ends_mispredicted() {
            fetch.on_mispredict_resolved(cycle + 1);
            if let Some(s) = san.as_deref_mut() {
                s.observe_resolved(cycle + 1);
            }
        }
        cycle += 1;
        if fetch.done() {
            break;
        }
        assert!(
            cycle <= 1_000_000 + 64 * fetch.delivered().max(100_000),
            "EIR measurement runaway"
        );
    }
    if let Some(s) = san {
        s.finish(cycle, fetch.delivered());
    }
    EirResult {
        scheme,
        cycles: cycle,
        delivered: fetch.delivered(),
        fetch: *fetch.stats(),
    }
}

/// Block-stream [`measure_eir`]: the fast loop, plus the same
/// differential-oracle check as [`simulate`]'s block path when the
/// sanitizer is enabled.
fn measure_eir_blocks(
    machine: &MachineModel,
    scheme: SchemeKind,
    cursor: BlockCursor,
) -> EirResult {
    let oracle_input = (crate::sanitize::ENABLED && cursor.pos() == 0).then(|| cursor.shared());
    let fast = measure_eir_blocks_fast(machine, scheme, cursor);
    if let Some(stream) = oracle_input {
        let (oracle, diags) =
            crate::sanitize::measure_eir_checked(machine, scheme, stream.materialize());
        crate::sanitize::assert_clean(
            &format!("measure_eir_blocks({scheme}, {})", machine.name),
            &diags,
        );
        assert_eq!(
            fast, oracle,
            "block-stream EIR fast path diverged from the per-instruction \
             oracle ({scheme}, {})",
            machine.name
        );
    }
    fast
}

/// The block-stream EIR loop. With the idealized back end, a mispredict
/// resolves immediately and the only idle periods are [`FetchOutcome::
/// Stalled`] stretches (miss/redirect penalties), which record no per-cycle
/// statistics in the oracle and are therefore skipped wholesale.
fn measure_eir_blocks_fast(
    machine: &MachineModel,
    scheme: SchemeKind,
    cursor: BlockCursor,
) -> EirResult {
    let mut fetch = build_block_fetch_unit(machine, scheme, cursor);
    let mut pkt = BlockPacket::default();
    let mut cycle: u64 = 0;
    loop {
        let outcome = fetch.cycle_into(cycle, 0, &mut pkt);
        if outcome == FetchOutcome::Delivered && pkt.mispredicted {
            fetch.on_mispredict_resolved(cycle + 1);
        }
        cycle += 1;
        if fetch.done() {
            break;
        }
        if let FetchOutcome::Stalled { until } = outcome {
            // Every cycle before `until` is a statless empty fetch in the
            // oracle; jump straight to the resume point.
            if until > cycle {
                cycle = until;
            }
        }
        assert!(
            cycle <= 1_000_000 + 64 * fetch.delivered().max(100_000),
            "EIR measurement runaway"
        );
    }
    EirResult {
        scheme,
        cycles: cycle,
        delivered: fetch.delivered(),
        fetch: *fetch.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Layout, LayoutOptions};
    use fetchmech_workloads::{suite, InputId};

    fn trace_of(machine: &MachineModel, n: u64) -> Vec<DynInst> {
        let w = suite::benchmark("compress").expect("known benchmark");
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(machine.block_bytes)).expect("layout");
        // The executor borrows the workload, so collect the trace (tests use
        // short traces; experiment drivers share cached `Arc` traces instead).
        w.executor(&layout, InputId::TEST, n).collect()
    }

    fn run(scheme: SchemeKind, machine: &MachineModel, n: u64) -> SimResult {
        simulate(machine, scheme, trace_of(machine, n))
    }

    #[test]
    fn all_schemes_complete_and_order_sanely() {
        let machine = MachineModel::p14();
        let mut ipcs = Vec::new();
        for scheme in SchemeKind::ALL {
            let r = run(scheme, &machine, 20_000);
            assert_eq!(r.retired, 20_000, "{scheme}: all instructions must retire");
            assert!(r.ipc() > 0.0 && r.ipc() <= 4.0, "{scheme}: ipc {}", r.ipc());
            assert!(r.eir() >= r.ipc() - 1e-9, "{scheme}: EIR must bound IPC");
            ipcs.push((scheme, r.ipc()));
        }
        let ipc_of = |k: SchemeKind| ipcs.iter().find(|(s, _)| *s == k).expect("ran").1;
        // Perfect dominates; the collapsing buffer dominates sequential.
        assert!(ipc_of(SchemeKind::Perfect) >= ipc_of(SchemeKind::CollapsingBuffer) - 0.05);
        assert!(ipc_of(SchemeKind::CollapsingBuffer) >= ipc_of(SchemeKind::Sequential) - 0.05);
    }

    #[test]
    fn simulation_is_deterministic() {
        let machine = MachineModel::p14();
        let a = run(SchemeKind::CollapsingBuffer, &machine, 10_000);
        let b = run(SchemeKind::CollapsingBuffer, &machine, 10_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.delivered, b.delivered);
    }

    #[test]
    fn eir_never_exceeds_issue_rate() {
        let machine = MachineModel::p18();
        let r = run(SchemeKind::Perfect, &machine, 20_000);
        assert!(
            r.eir() <= f64::from(machine.issue_rate) + 1e-9,
            "eir = {}",
            r.eir()
        );
    }

    /// The block-stream fast path must produce the same `SimResult` and
    /// `EirResult` as the per-instruction path, field for field. (In debug
    /// builds the block path additionally self-checks against the sanitized
    /// oracle inside `simulate`, so this test exercises that machinery too.)
    #[test]
    fn block_stream_paths_match_per_instruction_paths() {
        for machine in [MachineModel::p14(), MachineModel::p112()] {
            let trace = trace_of(&machine, 4_000);
            let stream = Arc::new(BlockStream::from_insts(&trace));
            for scheme in SchemeKind::ALL {
                let a = simulate(&machine, scheme, trace.clone());
                let b = simulate(&machine, scheme, Arc::clone(&stream));
                assert_eq!(a, b, "simulate mismatch: {scheme}, {}", machine.name);
                let ea = measure_eir(&machine, scheme, trace.clone());
                let eb = measure_eir(&machine, scheme, Arc::clone(&stream));
                assert_eq!(ea, eb, "eir mismatch: {scheme}, {}", machine.name);
            }
        }
    }
}
