//! # fetchmech-bpred
//!
//! The branch-target buffer (BTB) used by every fetch mechanism in the
//! ISCA '95 reproduction.
//!
//! The paper's predictor is a 1024-entry, direct-mapped BTB with 2-bit
//! saturating counters; branch target addresses are cached per entry, and the
//! buffer is interleaved by the number of instructions in a cache block so
//! that one fetch can query a prediction for every slot of the fetched block
//! simultaneously (Figure 5). [`Btb`] models the storage and counters;
//! [`Btb::query_block`] reproduces the comparator chain that produces the
//! per-slot valid bits and the successor block address.
//!
//! # Examples
//!
//! ```
//! use fetchmech_bpred::{Btb, BtbConfig};
//! use fetchmech_isa::Addr;
//!
//! let mut btb = Btb::new(BtbConfig::default());
//! let branch = Addr::new(0x1000);
//! let target = Addr::new(0x2000);
//!
//! // Cold: predicted not-taken (a BTB miss).
//! assert!(!btb.predict(branch, true).taken);
//!
//! // Teach it the branch; a hit with a warm counter predicts taken.
//! btb.update(branch, true, true, target);
//! let p = btb.predict(branch, true);
//! assert!(p.taken);
//! assert_eq!(p.target, Some(target));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod btb;
pub mod gshare;

pub use btb::{BlockPrediction, Btb, BtbConfig, BtbStats, Prediction};
pub use gshare::{Gshare, GshareConfig, GshareStats, PredictorKind, Tournament};
