//! A two-level adaptive direction predictor (gshare).
//!
//! The paper's concluding remarks point at "other, more sophisticated
//! predictors … designed for machines with high misprediction penalty"
//! (Yeh's two-level schemes, McFarling's combining predictors) and ask
//! whether such a predictor would make the shifter-based (higher-penalty)
//! collapsing buffer viable. This module provides the gshare member of that
//! family: a global branch-history register XOR-folded into the PC indexes a
//! table of 2-bit saturating counters. Targets still come from the BTB; only
//! the *direction* of conditional branches improves.

use fetchmech_isa::Addr;

/// Configuration of a [`Gshare`] predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GshareConfig {
    /// log2 of the pattern-history-table size (entries = `1 << index_bits`).
    pub index_bits: u32,
    /// Global-history length in branches (<= `index_bits` is typical).
    pub history_bits: u32,
}

impl GshareConfig {
    /// A 4K-entry PHT with 6 bits of global history — a mid-90s-plausible
    /// configuration comparable in storage to the paper's 1024-entry BTB.
    /// (Short histories resist the context dilution caused by uncorrelated
    /// branches interleaved into the global history.)
    #[must_use]
    pub fn default_4k() -> Self {
        Self {
            index_bits: 12,
            history_bits: 6,
        }
    }
}

impl Default for GshareConfig {
    fn default() -> Self {
        Self::default_4k()
    }
}

/// Gshare statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GshareStats {
    /// Direction predictions made.
    pub predictions: u64,
    /// Predictions that matched the outcome.
    pub correct: u64,
}

impl GshareStats {
    /// Direction accuracy in `[0, 1]`.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct as f64 / self.predictions as f64
        }
    }
}

/// The gshare predictor.
///
/// # Examples
///
/// ```
/// use fetchmech_bpred::{Gshare, GshareConfig};
/// use fetchmech_isa::Addr;
///
/// let mut g = Gshare::new(GshareConfig::default());
/// let pc = Addr::new(0x1000);
/// // Train past the point where the global history saturates to all-taken.
/// for _ in 0..64 {
///     let predicted = g.predict(pc);
///     g.update(pc, true, predicted);
/// }
/// assert!(g.predict(pc), "an always-taken branch trains to taken");
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    config: GshareConfig,
    table: Vec<u8>,
    history: u64,
    stats: GshareStats,
}

impl Gshare {
    /// Creates a predictor with all counters weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index_bits <= 24` and `history_bits <= 64`.
    #[must_use]
    pub fn new(config: GshareConfig) -> Self {
        assert!(
            (1..=24).contains(&config.index_bits),
            "index bits must be in 1..=24"
        );
        assert!(config.history_bits <= 64, "history bits must be <= 64");
        Self {
            config,
            table: vec![1; 1 << config.index_bits],
            history: 0,
            stats: GshareStats::default(),
        }
    }

    /// Returns the configuration.
    #[must_use]
    pub fn config(&self) -> &GshareConfig {
        &self.config
    }

    fn index(&self, addr: Addr) -> usize {
        let mask = (1u64 << self.config.index_bits) - 1;
        let hist_mask = if self.config.history_bits == 64 {
            u64::MAX
        } else {
            (1u64 << self.config.history_bits) - 1
        };
        // Fold the history into the *upper* index bits so the PC dominates
        // the low bits: uncorrelated branches then perturb few table entries
        // instead of scattering every branch across the table.
        let shift = self
            .config
            .index_bits
            .saturating_sub(self.config.history_bits);
        let h = (self.history & hist_mask) << shift;
        ((addr.word_index() ^ h) & mask) as usize
    }

    /// Predicts the direction of the conditional branch at `addr`.
    #[must_use]
    pub fn predict(&self, addr: Addr) -> bool {
        self.table[self.index(addr)] >= 2
    }

    /// Trains with the resolved outcome and shifts the global history.
    /// `predicted` is the direction previously returned for this branch
    /// (used only for statistics).
    pub fn update(&mut self, addr: Addr, taken: bool, predicted: bool) {
        self.stats.predictions += 1;
        if predicted == taken {
            self.stats.correct += 1;
        }
        let idx = self.index(addr);
        let c = &mut self.table[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | u64::from(taken);
    }

    /// Returns accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> GshareStats {
        self.stats
    }
}

/// McFarling's combining ("tournament") predictor: a per-branch bimodal
/// table and a [`Gshare`] component, arbitrated by a chooser table of 2-bit
/// counters. This is reference \[11\] of the paper ("Combining branch
/// predictors", DEC WRL TN-36) — the natural reading of the concluding
/// remarks' "more sophisticated predictors".
#[derive(Debug, Clone)]
pub struct Tournament {
    gshare: Gshare,
    /// PC-indexed 2-bit counters (the bimodal component).
    bimodal: Vec<u8>,
    /// PC-indexed chooser: >= 2 selects gshare, < 2 selects bimodal.
    chooser: Vec<u8>,
    index_mask: u64,
    stats: GshareStats,
}

impl Tournament {
    /// Creates a tournament with the given gshare component; the bimodal and
    /// chooser tables share the gshare index width.
    #[must_use]
    pub fn new(config: GshareConfig) -> Self {
        let entries = 1usize << config.index_bits;
        Self {
            gshare: Gshare::new(config),
            bimodal: vec![1; entries],
            // Start neutral-toward-bimodal: the per-branch component warms
            // up faster, and the chooser migrates hard branches to gshare.
            chooser: vec![1; entries],
            index_mask: entries as u64 - 1,
            stats: GshareStats::default(),
        }
    }

    fn pc_index(&self, addr: Addr) -> usize {
        (addr.word_index() & self.index_mask) as usize
    }

    /// Predicts the direction of the conditional branch at `addr`.
    #[must_use]
    pub fn predict(&self, addr: Addr) -> bool {
        let idx = self.pc_index(addr);
        if self.chooser[idx] >= 2 {
            self.gshare.predict(addr)
        } else {
            self.bimodal[idx] >= 2
        }
    }

    /// Trains both components and the chooser with the resolved outcome.
    pub fn update(&mut self, addr: Addr, taken: bool, predicted: bool) {
        self.stats.predictions += 1;
        if predicted == taken {
            self.stats.correct += 1;
        }
        let idx = self.pc_index(addr);
        let g_pred = self.gshare.predict(addr);
        let b_pred = self.bimodal[idx] >= 2;
        // Chooser moves toward whichever component was right when they
        // disagree.
        if g_pred != b_pred {
            let c = &mut self.chooser[idx];
            if g_pred == taken {
                *c = (*c + 1).min(3);
            } else {
                *c = c.saturating_sub(1);
            }
        }
        let b = &mut self.bimodal[idx];
        if taken {
            *b = (*b + 1).min(3);
        } else {
            *b = b.saturating_sub(1);
        }
        self.gshare.update(addr, taken, g_pred);
    }

    /// Returns accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> GshareStats {
        self.stats
    }
}

/// Which direction predictor the front end uses for conditional branches.
/// Targets always come from the BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PredictorKind {
    /// The paper's baseline: 2-bit counters stored in the BTB entries.
    #[default]
    TwoBitBtb,
    /// A gshare two-level predictor alongside the BTB.
    Gshare(GshareConfig),
    /// McFarling's combining predictor (bimodal + gshare + chooser) — the
    /// paper's reference \[11\] and its concluding remarks' "more
    /// sophisticated predictor".
    Tournament(GshareConfig),
}

impl std::fmt::Display for PredictorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictorKind::TwoBitBtb => f.write_str("2-bit BTB"),
            PredictorKind::Gshare(c) => {
                write!(
                    f,
                    "gshare {}K/{}-bit",
                    (1usize << c.index_bits) / 1024,
                    c.history_bits
                )
            }
            PredictorKind::Tournament(c) => {
                write!(
                    f,
                    "tournament {}K/{}-bit",
                    (1usize << c.index_bits) / 1024,
                    c.history_bits
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_taken_branch_trains_quickly() {
        let mut g = Gshare::new(GshareConfig::default());
        let pc = Addr::new(0x1000);
        // More iterations than history bits, so the final index is trained.
        for _ in 0..64 {
            let p = g.predict(pc);
            g.update(pc, true, p);
        }
        assert!(g.predict(pc));
        assert!(g.stats().accuracy() > 0.5);
    }

    #[test]
    fn alternating_pattern_is_learned_via_history() {
        // A strict T/N alternation defeats a per-branch 2-bit counter but is
        // perfectly predictable with global history.
        let mut g = Gshare::new(GshareConfig {
            index_bits: 12,
            history_bits: 8,
        });
        let pc = Addr::new(0x2000);
        let mut correct_tail = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            let p = g.predict(pc);
            if i >= 1000 && p == taken {
                correct_tail += 1;
            }
            g.update(pc, taken, p);
        }
        assert!(
            correct_tail > 950,
            "gshare should learn a strict alternation: {correct_tail}/1000"
        );
    }

    #[test]
    fn short_loop_exit_is_learned() {
        // taken,taken,taken,not-taken repeated: history disambiguates the
        // exit iteration.
        let mut g = Gshare::new(GshareConfig::default());
        let pc = Addr::new(0x3000);
        let mut correct_tail = 0;
        for i in 0..4000u32 {
            let taken = i % 4 != 3;
            let p = g.predict(pc);
            if i >= 2000 && p == taken {
                correct_tail += 1;
            }
            g.update(pc, taken, p);
        }
        assert!(correct_tail > 1900, "loop pattern: {correct_tail}/2000");
    }

    #[test]
    fn stats_track_accuracy() {
        let mut g = Gshare::new(GshareConfig::default());
        let pc = Addr::new(0x100);
        let p = g.predict(pc);
        g.update(pc, p, p);
        assert_eq!(g.stats().predictions, 1);
        assert_eq!(g.stats().correct, 1);
        assert_eq!(g.stats().accuracy(), 1.0);
    }

    #[test]
    fn predictor_kind_displays() {
        assert_eq!(PredictorKind::TwoBitBtb.to_string(), "2-bit BTB");
        assert!(PredictorKind::Gshare(GshareConfig::default_4k())
            .to_string()
            .contains("gshare 4K"));
    }

    #[test]
    fn tournament_never_trails_bimodal_on_random_branches() {
        use fetchmech_isa::rng::Pcg64;
        let mut t = Tournament::new(GshareConfig::default());
        let mut bimodal_only = vec![1u8; 4096];
        let mut rng = Pcg64::new(11);
        let mut t_correct = 0u32;
        let mut b_correct = 0u32;
        // 64 branches with random biases, interleaved.
        let biases: Vec<f64> = (0..64).map(|_| rng.next_f64()).collect();
        for i in 0..60_000u64 {
            let b = (i % 64) as usize;
            let pc = Addr::from_word_index(100 + 16 * b as u64);
            let taken = rng.chance(biases[b]);
            let tp = t.predict(pc);
            let idx = (pc.word_index() & 4095) as usize;
            let bp = bimodal_only[idx] >= 2;
            if i > 20_000 {
                t_correct += u32::from(tp == taken);
                b_correct += u32::from(bp == taken);
            }
            t.update(pc, taken, tp);
            let c = &mut bimodal_only[idx];
            if taken {
                *c = (*c + 1).min(3)
            } else {
                *c = c.saturating_sub(1)
            }
        }
        assert!(
            t_correct as f64 >= b_correct as f64 * 0.98,
            "tournament {t_correct} vs bimodal {b_correct}"
        );
    }

    #[test]
    fn tournament_beats_bimodal_on_alternation() {
        let mut t = Tournament::new(GshareConfig::default());
        let pc = Addr::new(0x4000);
        let mut correct_tail = 0;
        for i in 0..4000u32 {
            let taken = i % 2 == 0;
            let p = t.predict(pc);
            if i >= 2000 && p == taken {
                correct_tail += 1;
            }
            t.update(pc, taken, p);
        }
        // A per-branch 2-bit counter gets ~50% here; the tournament's gshare
        // side learns the alternation and the chooser routes to it.
        assert!(correct_tail > 1800, "alternation: {correct_tail}/2000");
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn zero_index_bits_panics() {
        let _ = Gshare::new(GshareConfig {
            index_bits: 0,
            history_bits: 0,
        });
    }
}
