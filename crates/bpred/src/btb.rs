//! The branch-target buffer (see the crate docs for the paper context).

use std::fmt;

use fetchmech_isa::{Addr, WORD_BYTES};

/// Configuration of the branch-target buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtbConfig {
    /// Number of entries (direct-mapped).
    pub entries: usize,
    /// Saturating-counter width in bits (the paper uses 2).
    pub counter_bits: u8,
    /// Interleave factor — the number of instructions per cache block whose
    /// predictions must be readable in one cycle. Purely structural here
    /// (a monolithic array with per-word indexing behaves identically), but
    /// validated and reported for fidelity.
    pub interleave: u32,
}

impl BtbConfig {
    /// The paper's configuration for the given cache-block size in bytes:
    /// 1024 entries, 2-bit counters, interleave = instructions per block.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is not a multiple of the word size.
    #[must_use]
    pub fn for_block_bytes(block_bytes: u64) -> Self {
        assert!(
            block_bytes.is_multiple_of(WORD_BYTES),
            "block size must be whole words"
        );
        Self {
            entries: 1024,
            counter_bits: 2,
            interleave: (block_bytes / WORD_BYTES) as u32,
        }
    }

    fn counter_max(&self) -> u8 {
        (1u16 << self.counter_bits) as u8 - 1
    }

    /// Threshold at or above which a counter predicts taken.
    fn taken_threshold(&self) -> u8 {
        1u8 << (self.counter_bits - 1)
    }
}

impl Default for BtbConfig {
    /// 1024 entries, 2-bit counters, interleave 4 (the P14 geometry).
    fn default() -> Self {
        Self {
            entries: 1024,
            counter_bits: 2,
            interleave: 4,
        }
    }
}

impl fmt::Display for BtbConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-entry direct-mapped BTB, {}-bit counters, interleave {}",
            self.entries, self.counter_bits, self.interleave
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    /// Full word-index tag (no partial-tag aliasing).
    tag: u64,
    target: Addr,
    counter: u8,
}

/// A single-instruction prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Whether the instruction is predicted to redirect fetch.
    pub taken: bool,
    /// Predicted target; `Some` exactly on a BTB hit.
    pub target: Option<Addr>,
    /// Whether the lookup hit.
    pub hit: bool,
}

impl Prediction {
    /// The not-taken / BTB-miss prediction.
    #[must_use]
    pub fn not_taken() -> Self {
        Self {
            taken: false,
            target: None,
            hit: false,
        }
    }
}

/// Block-level prediction: the output of the interleaved-BTB comparator
/// chain of Figure 5.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPrediction {
    /// One bit per instruction slot from the queried offset to the end of the
    /// block: `true` for slots predicted to execute (up to and including the
    /// first predicted-taken branch).
    pub valid: Vec<bool>,
    /// Predicted address of the next instruction after this block's valid
    /// run: the first predicted-taken branch's target, or the sequential
    /// address after the block.
    pub successor: Addr,
    /// Slot index (relative to the block base) of the first predicted-taken
    /// branch, if any.
    pub taken_slot: Option<u32>,
}

/// Predictor update/lookup statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BtbStats {
    /// Single-instruction lookups.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Updates applied.
    pub updates: u64,
    /// Allocations of a new entry (on a taken transfer).
    pub allocations: u64,
    /// Allocations that evicted a live entry mapping elsewhere.
    pub evictions: u64,
}

/// The branch-target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    config: BtbConfig,
    entries: Vec<Option<Entry>>,
    stats: BtbStats,
}

impl Btb {
    /// Creates an empty BTB.
    ///
    /// # Panics
    ///
    /// Panics if `config.entries` is zero or `config.counter_bits` is not in
    /// `1..=7`.
    #[must_use]
    pub fn new(config: BtbConfig) -> Self {
        assert!(config.entries > 0, "BTB must have at least one entry");
        assert!(
            (1..=7).contains(&config.counter_bits),
            "counter bits must be in 1..=7"
        );
        Self {
            config,
            entries: vec![None; config.entries],
            stats: BtbStats::default(),
        }
    }

    /// Returns the configuration.
    #[must_use]
    pub fn config(&self) -> &BtbConfig {
        &self.config
    }

    fn slot(&self, addr: Addr) -> usize {
        let entries = self.config.entries as u64;
        let w = addr.word_index();
        // Entry counts are powers of two in every machine model; keep the
        // modulo fallback for odd test configurations.
        if entries.is_power_of_two() {
            (w & (entries - 1)) as usize
        } else {
            (w % entries) as usize
        }
    }

    /// Predicts the instruction at `addr`.
    ///
    /// * BTB miss ⇒ predicted not-taken (sequential fetch continues).
    /// * Hit, conditional ⇒ taken iff the 2-bit counter is in a taken state.
    /// * Hit, unconditional (`is_cond == false`) ⇒ always predicted taken to
    ///   the cached target.
    pub fn predict(&mut self, addr: Addr, is_cond: bool) -> Prediction {
        self.stats.lookups += 1;
        let slot = self.slot(addr);
        match self.entries[slot] {
            Some(e) if e.tag == addr.word_index() => {
                self.stats.hits += 1;
                let taken = if is_cond {
                    e.counter >= self.config.taken_threshold()
                } else {
                    true
                };
                Prediction {
                    taken,
                    target: Some(e.target),
                    hit: true,
                }
            }
            _ => Prediction::not_taken(),
        }
    }

    /// Non-mutating variant of [`Btb::predict`] (no statistics update),
    /// used by block-level queries and tests.
    #[must_use]
    pub fn peek(&self, addr: Addr, is_cond: bool) -> Prediction {
        let slot = self.slot(addr);
        match self.entries[slot] {
            Some(e) if e.tag == addr.word_index() => {
                let taken = if is_cond {
                    e.counter >= self.config.taken_threshold()
                } else {
                    true
                };
                Prediction {
                    taken,
                    target: Some(e.target),
                    hit: true,
                }
            }
            _ => Prediction::not_taken(),
        }
    }

    /// Records the resolved outcome of the control transfer at `addr`.
    ///
    /// Entries are allocated on taken transfers (the standard BTB policy: a
    /// never-taken branch never occupies an entry). On a hit, conditional
    /// counters saturate toward the outcome and the cached target is
    /// refreshed when the transfer was taken.
    pub fn update(&mut self, addr: Addr, is_cond: bool, taken: bool, target: Addr) {
        self.stats.updates += 1;
        let slot = self.slot(addr);
        let tag = addr.word_index();
        match &mut self.entries[slot] {
            Some(e) if e.tag == tag => {
                if is_cond {
                    if taken {
                        e.counter = (e.counter + 1).min(self.config.counter_max());
                    } else {
                        e.counter = e.counter.saturating_sub(1);
                    }
                }
                if taken {
                    e.target = target;
                }
            }
            other => {
                if taken {
                    if other.is_some() {
                        self.stats.evictions += 1;
                    }
                    self.stats.allocations += 1;
                    // Allocate weakly-taken: the transfer just went that way.
                    *other = Some(Entry {
                        tag,
                        target,
                        counter: self.config.taken_threshold(),
                    });
                }
            }
        }
    }

    /// Reproduces the interleaved-BTB block query of Figure 5: predictions
    /// for every slot of the cache block at `block_base`, starting from
    /// `from_slot`, for a block of `insts_per_block` instructions.
    ///
    /// The returned valid bits cover slots `from_slot..insts_per_block`; bits
    /// before `from_slot` are conceptually invalid and not included. The
    /// query is non-mutating (the hardware reads all banks in parallel).
    ///
    /// `is_cond` reports, per slot, whether the instruction there is a
    /// conditional branch; the fetch hardware knows this no earlier than
    /// decode, but a BTB hit implies the slot held a control transfer when
    /// it last executed, so passing a decode-assisted closure keeps the model
    /// faithful while letting tests drive arbitrary shapes.
    ///
    /// # Panics
    ///
    /// Panics if `block_base` is not block-aligned or `from_slot` is out of
    /// range.
    #[must_use]
    pub fn query_block(
        &self,
        block_base: Addr,
        insts_per_block: u32,
        from_slot: u32,
        is_cond: impl Fn(Addr) -> bool,
    ) -> BlockPrediction {
        let block_bytes = u64::from(insts_per_block) * WORD_BYTES;
        assert!(
            block_base.byte().is_multiple_of(block_bytes),
            "block base {block_base} not aligned to {block_bytes}-byte blocks"
        );
        assert!(
            from_slot < insts_per_block,
            "from_slot {from_slot} out of range"
        );
        let mut valid = Vec::with_capacity((insts_per_block - from_slot) as usize);
        let mut successor = block_base.add_words(u64::from(insts_per_block));
        let mut taken_slot = None;
        for slot in from_slot..insts_per_block {
            let addr = block_base.add_words(u64::from(slot));
            valid.push(true);
            let p = self.peek(addr, is_cond(addr));
            if p.taken {
                if let Some(t) = p.target {
                    successor = t;
                    taken_slot = Some(slot);
                    break;
                }
            }
        }
        BlockPrediction {
            valid,
            successor,
            taken_slot,
        }
    }

    /// Returns accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Clears all entries and statistics.
    pub fn reset(&mut self) {
        self.entries.fill(None);
        self.stats = BtbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn btb() -> Btb {
        Btb::new(BtbConfig::default())
    }

    #[test]
    fn miss_predicts_not_taken() {
        let mut b = btb();
        let p = b.predict(Addr::new(0x100), true);
        assert!(!p.taken);
        assert!(!p.hit);
        assert_eq!(p.target, None);
    }

    #[test]
    fn taken_allocates_weakly_taken() {
        let mut b = btb();
        b.update(Addr::new(0x100), true, true, Addr::new(0x800));
        let p = b.predict(Addr::new(0x100), true);
        assert!(p.taken);
        assert_eq!(p.target, Some(Addr::new(0x800)));
    }

    #[test]
    fn not_taken_never_allocates() {
        let mut b = btb();
        b.update(Addr::new(0x100), true, false, Addr::new(0x800));
        assert!(!b.predict(Addr::new(0x100), true).hit);
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut b = btb();
        let a = Addr::new(0x100);
        let t = Addr::new(0x800);
        b.update(a, true, true, t); // counter = 2
        b.update(a, true, true, t); // counter = 3
        b.update(a, true, false, t); // counter = 2, still predicts taken
        assert!(
            b.predict(a, true).taken,
            "one not-taken must not flip a saturated counter"
        );
        b.update(a, true, false, t); // counter = 1
        assert!(!b.predict(a, true).taken);
        b.update(a, true, true, t); // counter = 2
        assert!(b.predict(a, true).taken);
    }

    #[test]
    fn unconditional_hit_is_always_taken() {
        let mut b = btb();
        let a = Addr::new(0x200);
        b.update(a, false, true, Addr::new(0x900));
        // Drive the (unused) counter down; unconditional hits stay taken.
        let p = b.predict(a, false);
        assert!(p.taken);
        assert_eq!(p.target, Some(Addr::new(0x900)));
    }

    #[test]
    fn taken_update_refreshes_target() {
        let mut b = btb();
        let a = Addr::new(0x300);
        b.update(a, false, true, Addr::new(0x1000));
        b.update(a, false, true, Addr::new(0x2000));
        assert_eq!(b.predict(a, false).target, Some(Addr::new(0x2000)));
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut b = btb();
        let a1 = Addr::from_word_index(5);
        let a2 = Addr::from_word_index(5 + 1024); // same slot
        b.update(a1, true, true, Addr::new(0x800));
        b.update(a2, true, true, Addr::new(0x900));
        assert!(!b.predict(a1, true).hit, "conflicting entry must evict");
        assert!(b.predict(a2, true).hit);
        assert_eq!(b.stats().evictions, 1);
    }

    #[test]
    fn full_tags_prevent_aliased_hits() {
        let mut b = btb();
        let a1 = Addr::from_word_index(7);
        let a2 = Addr::from_word_index(7 + 1024);
        b.update(a1, true, true, Addr::new(0x800));
        assert!(!b.predict(a2, true).hit);
    }

    #[test]
    fn query_block_no_taken_branch_is_sequential() {
        let b = btb();
        let base = Addr::new(0x1000);
        let q = b.query_block(base, 4, 0, |_| false);
        assert_eq!(q.valid, vec![true; 4]);
        assert_eq!(q.successor, Addr::new(0x1010));
        assert_eq!(q.taken_slot, None);
    }

    #[test]
    fn query_block_stops_at_predicted_taken() {
        let mut b = btb();
        let base = Addr::new(0x1000);
        let branch = base.add_words(2);
        b.update(branch, true, true, Addr::new(0x4000));
        let q = b.query_block(base, 4, 0, |a| a == branch);
        assert_eq!(q.valid, vec![true, true, true]); // slots 0,1,2; 3 masked off
        assert_eq!(q.successor, Addr::new(0x4000));
        assert_eq!(q.taken_slot, Some(2));
    }

    #[test]
    fn query_block_respects_fetch_offset() {
        let mut b = btb();
        let base = Addr::new(0x1000);
        let early = base; // predicted-taken branch at slot 0
        b.update(early, true, true, Addr::new(0x4000));
        // Fetch starting past the branch ignores it.
        let q = b.query_block(base, 4, 1, |a| a == early);
        assert_eq!(q.valid, vec![true, true, true]);
        assert_eq!(q.successor, Addr::new(0x1010));
    }

    #[test]
    fn peek_matches_predict_without_stats() {
        let mut b = btb();
        let a = Addr::new(0x100);
        b.update(a, true, true, Addr::new(0x800));
        let before = b.stats().lookups;
        let peeked = b.peek(a, true);
        assert_eq!(b.stats().lookups, before);
        assert_eq!(peeked, b.predict(a, true));
    }

    #[test]
    fn reset_clears() {
        let mut b = btb();
        b.update(Addr::new(0x100), true, true, Addr::new(0x800));
        b.reset();
        assert!(!b.predict(Addr::new(0x100), true).hit);
    }

    #[test]
    fn config_for_block_bytes() {
        let c = BtbConfig::for_block_bytes(64);
        assert_eq!(c.interleave, 16);
        assert_eq!(c.entries, 1024);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn query_block_requires_alignment() {
        let b = btb();
        let _ = b.query_block(Addr::new(0x1004), 4, 0, |_| false);
    }
}
