//! Model-based property tests for the BTB and the block-level query, plus
//! statistical properties of the direction predictors.

use std::collections::HashMap;

use fetchmech_bpred::{Btb, BtbConfig, Gshare, GshareConfig, Tournament};
use fetchmech_isa::rng::Pcg64;
use fetchmech_isa::Addr;
use proptest::prelude::*;

/// Reference model of a direct-mapped, full-tag BTB with 2-bit counters.
#[derive(Default)]
struct RefBtb {
    entries: usize,
    slots: HashMap<usize, (u64, u64, u8)>, // slot -> (word tag, target byte, counter)
}

impl RefBtb {
    fn new(entries: usize) -> Self {
        Self {
            entries,
            slots: HashMap::new(),
        }
    }

    fn predict(&self, addr: Addr, is_cond: bool) -> (bool, Option<u64>) {
        let word = addr.word_index();
        match self.slots.get(&((word % self.entries as u64) as usize)) {
            Some(&(tag, target, counter)) if tag == word => {
                let taken = if is_cond { counter >= 2 } else { true };
                (taken, Some(target))
            }
            _ => (false, None),
        }
    }

    fn update(&mut self, addr: Addr, is_cond: bool, taken: bool, target: Addr) {
        let word = addr.word_index();
        let slot = (word % self.entries as u64) as usize;
        match self.slots.get_mut(&slot) {
            Some(e) if e.0 == word => {
                if is_cond {
                    e.2 = if taken {
                        (e.2 + 1).min(3)
                    } else {
                        e.2.saturating_sub(1)
                    };
                }
                if taken {
                    e.1 = target.byte();
                }
            }
            _ => {
                if taken {
                    self.slots.insert(slot, (word, target.byte(), 2));
                }
            }
        }
    }
}

#[derive(Debug, Clone)]
struct Op {
    addr_word: u64,
    is_cond: bool,
    taken: bool,
    target_word: u64,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u64..4096, any::<bool>(), any::<bool>(), 0u64..4096).prop_map(
            |(addr_word, is_cond, taken, target_word)| Op {
                addr_word,
                is_cond,
                taken,
                target_word,
            },
        ),
        1..400,
    )
}

proptest! {
    /// Predict/update agree with the reference model over arbitrary
    /// interleavings of branches, aliasing included.
    #[test]
    fn btb_matches_reference_model(ops in arb_ops()) {
        let entries = 256;
        let mut dut = Btb::new(BtbConfig { entries, counter_bits: 2, interleave: 4 });
        let mut model = RefBtb::new(entries);
        for op in ops {
            let addr = Addr::from_word_index(op.addr_word);
            let target = Addr::from_word_index(op.target_word);
            let got = dut.predict(addr, op.is_cond);
            let (taken, tgt) = model.predict(addr, op.is_cond);
            prop_assert_eq!(got.taken, taken, "direction at word {}", op.addr_word);
            prop_assert_eq!(got.target.map(|a| a.byte()), tgt, "target at word {}", op.addr_word);
            dut.update(addr, op.is_cond, op.taken, target);
            model.update(addr, op.is_cond, op.taken, target);
        }
    }

    /// `query_block` is exactly "peek each slot until the first
    /// predicted-taken one".
    #[test]
    fn query_block_matches_slotwise_peeks(
        ops in arb_ops(),
        block in 0u64..64,
        from in 0u32..8,
        cond_mask in any::<u8>(),
    ) {
        let insts_per_block = 8u32;
        let mut btb = Btb::new(BtbConfig { entries: 256, counter_bits: 2, interleave: insts_per_block });
        for op in ops {
            btb.update(
                Addr::from_word_index(op.addr_word),
                op.is_cond,
                op.taken,
                Addr::from_word_index(op.target_word),
            );
        }
        let base = Addr::from_word_index(block * u64::from(insts_per_block));
        let is_cond = |a: Addr| {
            let slot = a.offset_words(u64::from(insts_per_block) * 4);
            cond_mask & (1 << slot) != 0
        };
        let q = btb.query_block(base, insts_per_block, from, is_cond);
        // Replay slot by slot.
        let mut expect_valid = Vec::new();
        let mut expect_succ = base.add_words(u64::from(insts_per_block));
        let mut expect_slot = None;
        for slot in from..insts_per_block {
            let a = base.add_words(u64::from(slot));
            expect_valid.push(true);
            let p = btb.peek(a, is_cond(a));
            if p.taken {
                if let Some(t) = p.target {
                    expect_succ = t;
                    expect_slot = Some(slot);
                    break;
                }
            }
        }
        prop_assert_eq!(q.valid, expect_valid);
        prop_assert_eq!(q.successor, expect_succ);
        prop_assert_eq!(q.taken_slot, expect_slot);
    }

    /// On strongly-biased i.i.d. branches, every predictor family converges
    /// to better-than-chance accuracy.
    #[test]
    fn predictors_learn_biased_branches(seed in 1u64..5000) {
        let mut rng = Pcg64::new(seed);
        let mut gshare = Gshare::new(GshareConfig::default());
        let mut tourney = Tournament::new(GshareConfig::default());
        let n_branches = 16usize;
        let biases: Vec<f64> =
            (0..n_branches).map(|_| if rng.chance(0.5) { 0.92 } else { 0.08 }).collect();
        let rounds = 4000usize;
        let mut g_ok = 0usize;
        let mut t_ok = 0usize;
        let mut total = 0usize;
        for i in 0..rounds {
            let b = i % n_branches;
            let addr = Addr::from_word_index(64 + 8 * b as u64);
            let taken = rng.chance(biases[b]);
            let gp = gshare.predict(addr);
            let tp = tourney.predict(addr);
            if i > rounds / 2 {
                total += 1;
                g_ok += usize::from(gp == taken);
                t_ok += usize::from(tp == taken);
            }
            gshare.update(addr, taken, gp);
            tourney.update(addr, taken, tp);
        }
        // 92/8 biases: chance is 50%, oracle-static is 92%.
        prop_assert!(g_ok * 100 > total * 70, "gshare {g_ok}/{total}");
        prop_assert!(t_ok * 100 > total * 78, "tournament {t_ok}/{total}");
    }
}
