//! Prints dynamic-stream statistics for every benchmark in the suite:
//! branch frequency, taken rate, and the Table 2 intra-block percentages.
//!
//! Run with `cargo run -p fetchmech-workloads --example workload_stats`.

use fetchmech_isa::{Layout, LayoutOptions, TraceStats};
use fetchmech_workloads::{suite, InputId};

fn main() {
    const N: u64 = 200_000;
    println!(
        "{:<10} {:>7} {:>7} {:>6} {:>6}  {:>6} {:>6} {:>6}",
        "bench", "static", "brfreq", "taken", "run", "16B", "32B", "64B"
    );
    for w in suite::full_suite() {
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let mut s16 = TraceStats::new();
        let mut s32 = TraceStats::new();
        let mut s64 = TraceStats::new();
        for d in w.executor(&layout, InputId::TEST, N) {
            s16.observe(&d, 16);
            s32.observe(&d, 32);
            s64.observe(&d, 64);
        }
        println!(
            "{:<10} {:>7} {:>6.1}% {:>5.1}% {:>6.1}  {:>5.1}% {:>5.1}% {:>5.1}%",
            w.spec.name,
            layout.code().len(),
            100.0 * s16.cond_branches as f64 / s16.insts as f64,
            100.0 * s16.taken_rate(),
            s16.insts as f64 / s16.taken_controls.max(1) as f64,
            s16.intra_block_pct(),
            s32.intra_block_pct(),
            s64.intra_block_pct(),
        );
    }
}
