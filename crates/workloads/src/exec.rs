//! The trace executor: walks a laid-out program under a behaviour map and
//! emits the dynamic instruction stream.
//!
//! This is the stand-in for the paper's `spike` tracing tool. The executor is
//! an [`Iterator`] over [`DynInst`], so fetch simulators consume traces
//! without materializing them; a given `(workload, layout, input, seed)`
//! tuple always produces the identical stream.

use fetchmech_isa::rng::{splitmix64, Pcg64};
use fetchmech_isa::{Addr, DynCtrl, DynInst, Layout, OpClass, Program, Terminator};

use crate::behavior::{BehaviorMap, BehaviorState};
use crate::spec::Workload;

/// Which program input to execute (the §4 methodology: inputs 0–4 profile,
/// input 5 tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InputId(pub u32);

impl InputId {
    /// The five profiling inputs.
    pub const PROFILE: [InputId; 5] = [InputId(0), InputId(1), InputId(2), InputId(3), InputId(4)];
    /// The held-out test input used for performance simulation.
    pub const TEST: InputId = InputId(5);
}

/// Iterator over the dynamic instruction stream of one program execution.
pub struct Executor<'a> {
    program: &'a Program,
    layout: &'a Layout,
    behaviors: BehaviorMap,
    state: BehaviorState,
    rng: Pcg64,
    /// Index of the next instruction in `layout.code()`.
    pc: usize,
    call_stack: Vec<Addr>,
    emitted: u64,
    limit: u64,
    restarts: u64,
}

impl std::fmt::Debug for Executor<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("emitted", &self.emitted)
            .field("limit", &self.limit)
            .field("restarts", &self.restarts)
            .finish()
    }
}

impl<'a> Executor<'a> {
    /// Creates an executor over `layout` (which must be a layout of
    /// `program`) with per-input behaviour.
    ///
    /// `limit` bounds the trace length; the program restarts at its entry on
    /// `halt` until the limit is reached.
    ///
    /// # Panics
    ///
    /// Panics if the layout's entry address does not resolve (layout/program
    /// mismatch).
    #[must_use]
    pub fn new(
        program: &'a Program,
        layout: &'a Layout,
        behaviors: BehaviorMap,
        input: InputId,
        seed: u64,
        limit: u64,
    ) -> Self {
        let pc = layout
            .index_of(layout.entry_addr())
            .expect("layout entry address must resolve");
        Self {
            program,
            layout,
            state: BehaviorState::new(behaviors.state_len()),
            behaviors,
            rng: Pcg64::new(splitmix64(seed ^ 0xe8ec ^ (u64::from(input.0) << 32))),
            pc,
            call_stack: Vec::new(),
            emitted: 0,
            limit,
            restarts: 0,
        }
    }

    /// Number of times the program halted and restarted so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    fn goto(&mut self, addr: Addr) {
        self.pc = self
            .layout
            .index_of(addr)
            .unwrap_or_else(|| panic!("control transfer to unmapped address {addr}"));
    }
}

impl Iterator for Executor<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        if self.emitted >= self.limit {
            return None;
        }
        let inst = *self.layout.code().get(self.pc)?;
        let addr = inst.addr;
        let dyn_inst = match inst.op {
            OpClass::CondBranch => {
                let ctrl = inst.ctrl.expect("branch has ctrl");
                let id = ctrl.branch_id.expect("cond branch has id");
                // Duplicated branches (superblock tail duplication) alias
                // their original's state slot and model, so the semantic
                // decision stream is identical to the untransformed program.
                let semantic = self.state.decide(
                    self.behaviors.origin_of(id),
                    self.behaviors.model(id),
                    &mut self.rng,
                );
                let hw_taken = semantic ^ ctrl.inverted;
                let target = ctrl.target.expect("branch target resolved");
                let next_pc = if hw_taken { target } else { addr.add_words(1) };
                if hw_taken {
                    self.goto(target);
                } else {
                    self.pc += 1;
                }
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc,
                    ctrl: Some(DynCtrl {
                        branch_id: Some(id),
                        taken: hw_taken,
                        target,
                        link: None,
                    }),
                }
            }
            OpClass::Jump => {
                let target = inst
                    .ctrl
                    .and_then(|c| c.target)
                    .expect("jump target resolved");
                self.goto(target);
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc: target,
                    ctrl: Some(DynCtrl {
                        branch_id: None,
                        taken: true,
                        target,
                        link: None,
                    }),
                }
            }
            OpClass::Call => {
                let target = inst
                    .ctrl
                    .and_then(|c| c.target)
                    .expect("call target resolved");
                let return_to = match self.program.block(inst.block).terminator {
                    Terminator::Call { return_to, .. } => return_to,
                    other => panic!("call instruction from non-call terminator {other:?}"),
                };
                let link = self.layout.block_addr(return_to);
                self.call_stack.push(link);
                self.goto(target);
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc: target,
                    ctrl: Some(DynCtrl {
                        branch_id: None,
                        taken: true,
                        target,
                        link: Some(link),
                    }),
                }
            }
            OpClass::Return => {
                // An empty stack means a return from the entry function; treat
                // it like a halt restart (cannot happen for generated
                // programs, whose main ends in halt).
                let target = self.call_stack.pop().unwrap_or_else(|| {
                    self.restarts += 1;
                    self.state.reset();
                    self.layout.entry_addr()
                });
                self.goto(target);
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc: target,
                    ctrl: Some(DynCtrl {
                        branch_id: None,
                        taken: true,
                        target,
                        link: None,
                    }),
                }
            }
            OpClass::Halt => {
                let target = self.layout.entry_addr();
                self.restarts += 1;
                self.call_stack.clear();
                self.state.reset();
                self.goto(target);
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc: target,
                    ctrl: Some(DynCtrl {
                        branch_id: None,
                        taken: true,
                        target,
                        link: None,
                    }),
                }
            }
            _ => {
                self.pc += 1;
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc: addr.add_words(1),
                    ctrl: None,
                }
            }
        };
        self.emitted += 1;
        Some(dyn_inst)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        // Generated programs cycle forever via halt-restart, so in practice
        // exactly `limit` instructions are emitted; the lower bound is still 0
        // because a hand-built layout may walk off the end of its code.
        let remaining = usize::try_from(self.limit.saturating_sub(self.emitted)).unwrap_or(0);
        (0, Some(remaining))
    }
}

impl Workload {
    /// Convenience: an executor over this workload with the given layout.
    ///
    /// The behaviour is the workload's base behaviour perturbed for `input`
    /// with the spec's `input_magnitude`; the RNG seed derives from the
    /// workload seed so traces are reproducible.
    #[must_use]
    pub fn executor<'a>(&'a self, layout: &'a Layout, input: InputId, limit: u64) -> Executor<'a> {
        Executor::new(
            &self.program,
            layout,
            self.behaviors.for_input(input.0, self.spec.input_magnitude),
            input,
            self.spec.seed,
            limit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use fetchmech_isa::{LayoutOptions, TraceStats};

    fn workload() -> Workload {
        let mut s = WorkloadSpec::base_int("exec-unit", 99);
        s.funcs = 4;
        s.segments_per_func = (4, 8);
        Workload::generate(s)
    }

    #[test]
    fn trace_is_deterministic() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let a: Vec<_> = w.executor(&l, InputId::TEST, 2000).collect();
        let b: Vec<_> = w.executor(&l, InputId::TEST, 2000).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2000);
    }

    #[test]
    fn size_hint_tracks_the_limit() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let mut e = w.executor(&l, InputId::TEST, 100);
        assert_eq!(e.size_hint(), (0, Some(100)));
        e.next().expect("first instruction");
        assert_eq!(e.size_hint(), (0, Some(99)));
        // A collect sees the upper bound, so pre-sizing via
        // `Vec::with_capacity` at the call site never reallocates.
        let rest: Vec<_> = e.collect();
        assert_eq!(rest.len(), 99);
    }

    #[test]
    fn next_pc_links_the_stream() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let trace: Vec<_> = w.executor(&l, InputId::TEST, 5000).collect();
        for pair in trace.windows(2) {
            assert_eq!(
                pair[0].next_pc, pair[1].addr,
                "broken link after {}",
                pair[0].addr
            );
        }
    }

    #[test]
    fn different_inputs_diverge_but_share_code() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let a: Vec<_> = w.executor(&l, InputId(0), 3000).collect();
        let b: Vec<_> = w.executor(&l, InputId(5), 3000).collect();
        assert_ne!(a, b, "inputs must produce different dynamic paths");
        // Yet every address comes from the same static image.
        for i in a.iter().chain(b.iter()) {
            assert!(l.index_of(i.addr).is_some());
        }
    }

    #[test]
    fn halting_restarts_at_entry() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let trace: Vec<_> = w.executor(&l, InputId::TEST, 200_000).collect();
        let halts: Vec<_> = trace.iter().filter(|i| i.op == OpClass::Halt).collect();
        assert!(!halts.is_empty(), "long trace must wrap around");
        for h in halts {
            assert_eq!(h.next_pc, l.entry_addr());
        }
    }

    #[test]
    fn calls_and_returns_balance() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let mut depth = 0i64;
        for i in w.executor(&l, InputId::TEST, 100_000) {
            match i.op {
                OpClass::Call => depth += 1,
                OpClass::Return => {
                    depth -= 1;
                    assert!(depth >= 0, "return without a call");
                }
                OpClass::Halt => depth = 0,
                _ => {}
            }
        }
    }

    #[test]
    fn return_targets_the_callers_resume_block() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let trace: Vec<_> = w.executor(&l, InputId::TEST, 100_000).collect();
        let mut stack = Vec::new();
        let mut checked = 0;
        for i in &trace {
            match i.op {
                OpClass::Call => {
                    let block = l.inst_at(i.addr).expect("call inst").block;
                    match w.program.block(block).terminator {
                        Terminator::Call { return_to, .. } => stack.push(l.block_addr(return_to)),
                        _ => unreachable!(),
                    }
                }
                OpClass::Return => {
                    if let Some(expect) = stack.pop() {
                        assert_eq!(i.next_pc, expect);
                        checked += 1;
                    }
                }
                OpClass::Halt => stack.clear(),
                _ => {}
            }
        }
        assert!(checked > 0, "trace must contain returns");
    }

    #[test]
    fn int_workload_is_branchy() {
        let w = workload();
        let l = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let mut stats = TraceStats::new();
        for i in w.executor(&l, InputId::TEST, 50_000) {
            stats.observe(&i, 16);
        }
        let branch_freq = stats.cond_branches as f64 / stats.insts as f64;
        assert!(
            branch_freq > 0.08,
            "branch frequency {branch_freq} too low for integer code"
        );
        assert!(stats.taken_controls > 0);
    }

    #[test]
    fn fp_workload_has_longer_runs() {
        let fp = Workload::generate(WorkloadSpec::base_fp("exec-fp", 7));
        let int = workload();
        let lf = Layout::natural(&fp.program, LayoutOptions::new(16)).expect("layout");
        let li = Layout::natural(&int.program, LayoutOptions::new(16)).expect("layout");
        let run = |w: &Workload, l: &Layout| {
            let mut taken = 0u64;
            let mut insts = 0u64;
            for i in w.executor(l, InputId::TEST, 50_000) {
                insts += 1;
                if i.is_taken_control() {
                    taken += 1;
                }
            }
            insts as f64 / taken as f64
        };
        let fp_run = run(&fp, &lf);
        let int_run = run(&int, &li);
        assert!(
            fp_run > int_run,
            "fp mean run length {fp_run} must exceed int {int_run}"
        );
    }
}
