//! The named benchmark suite: synthetic stand-ins for the paper's nine
//! integer benchmarks (six SPECint92 plus `mpeg_play`, `bison`, `flex`) and
//! six SPECfp92 benchmarks.
//!
//! Each spec is calibrated so the *shape* of its dynamic branch stream tracks
//! what the paper reports for the real benchmark — most importantly the
//! Table 2 trend of intra-block taken branches versus cache-block size, which
//! is governed here by hammock density (`hammock_prob`) and skip distance
//! (`hammock_len`), and the integer/floating-point contrast in run length
//! (loop dominance and trip counts). Absolute numbers are not calibrated;
//! DESIGN.md records the substitution rationale.

use crate::spec::{Workload, WorkloadSpec};

/// Names of the integer benchmarks, in the paper's order.
pub const INT_NAMES: [&str; 9] = [
    "bison",
    "compress",
    "eqntott",
    "espresso",
    "flex",
    "gcc",
    "li",
    "mpeg_play",
    "sc",
];

/// Names of the floating-point benchmarks, in the paper's order.
pub const FP_NAMES: [&str; 6] = ["doduc", "mdljdp2", "nasa7", "ora", "tomcatv", "wave5"];

/// Returns the spec for a named benchmark, or `None` for unknown names.
#[must_use]
pub fn spec_for(name: &str) -> Option<WorkloadSpec> {
    let mut s = match name {
        // ---- integer ----------------------------------------------------
        "bison" => {
            // Parser tables: moderate hammocks, short-to-medium skips.
            let mut s = WorkloadSpec::base_int("bison", 0xb150);
            s.hammock_prob = 0.26;
            s.hammock_len = (1, 5);
            s.mean_trips = 8.0;
            s
        }
        "compress" => {
            // Tight compression kernel: very short skips, so many taken
            // branches are intra-block even with 16 B blocks (Table 2: 14.6%).
            let mut s = WorkloadSpec::base_int("compress", 0xc033);
            s.block_len = (2, 5);
            s.hammock_prob = 0.30;
            s.hammock_len = (1, 3);
            s.mean_trips = 5.0;
            s
        }
        "eqntott" => {
            // Extremely branchy bit-vector code; medium skips push the
            // intra-block fraction up sharply at 32 B and 64 B.
            let mut s = WorkloadSpec::base_int("eqntott", 0xe480);
            s.block_len = (1, 4);
            s.hammock_prob = 0.35;
            s.hammock_len = (2, 7);
            s.taken_prob = (0.3, 0.9);
            s.mean_trips = 5.0;
            s
        }
        "espresso" => {
            let mut s = WorkloadSpec::base_int("espresso", 0xe59e);
            s.block_len = (2, 5);
            s.hammock_prob = 0.30;
            s.hammock_len = (3, 9);
            s.mean_trips = 7.0;
            s
        }
        "flex" => {
            let mut s = WorkloadSpec::base_int("flex", 0xf1e8);
            s.hammock_prob = 0.18;
            s.hammock_len = (6, 12);
            s.loop_prob = 0.20;
            s.mean_trips = 12.0;
            s
        }
        "gcc" => {
            // The big one: many functions, deep call graph, mixed shapes.
            let mut s = WorkloadSpec::base_int("gcc", 0x6cc0);
            s.funcs = 14;
            s.segments_per_func = (8, 24);
            s.hammock_prob = 0.28;
            s.hammock_len = (2, 10);
            s.call_prob = 0.18;
            s.mean_trips = 5.0;
            s
        }
        "li" => {
            // Lisp interpreter: call-dominated, few hammocks, short loops.
            let mut s = WorkloadSpec::base_int("li", 0x0115);
            s.hammock_prob = 0.10;
            s.hammock_len = (6, 12);
            s.call_prob = 0.25;
            s.funcs = 12;
            s.mean_trips = 4.0;
            s
        }
        "mpeg_play" => {
            // Media kernel: loopier than the other integer codes, longer
            // blocks, memory heavy; lowest intra-block fraction at 64 B.
            let mut s = WorkloadSpec::base_int("mpeg_play", 0x3be6);
            s.block_len = (4, 9);
            s.hammock_prob = 0.05;
            s.hammock_len = (3, 8);
            s.diamond_prob = 0.20;
            s.loop_prob = 0.30;
            s.mean_trips = 20.0;
            s.mem_ratio = 0.35;
            s
        }
        "sc" => {
            let mut s = WorkloadSpec::base_int("sc", 0x5c5c);
            s.hammock_prob = 0.20;
            s.hammock_len = (6, 12);
            s.mean_trips = 6.0;
            s
        }
        // ---- floating point ---------------------------------------------
        "doduc" => {
            // The branchiest FP code in the suite.
            let mut s = WorkloadSpec::base_fp("doduc", 0xd0d0);
            s.hammock_prob = 0.15;
            s.hammock_len = (2, 8);
            s.diamond_prob = 0.10;
            s.mean_trips = 15.0;
            s.block_len = (5, 10);
            s
        }
        "mdljdp2" => {
            // Long forward skips inside big loop bodies: almost no
            // intra-block branches at 16 B, two-thirds at 64 B (Table 2).
            let mut s = WorkloadSpec::base_fp("mdljdp2", 0x3d1d);
            s.hammock_prob = 0.50;
            s.loop_prob = 0.30;
            s.hammock_len = (2, 6);
            s.mean_trips = 30.0;
            s.block_len = (3, 8);
            s.min_loop_insts = 32;
            s.taken_prob = (0.5, 0.9);
            s
        }
        "nasa7" => {
            // Pure loop nest: essentially no intra-block branches ever.
            let mut s = WorkloadSpec::base_fp("nasa7", 0x4a57);
            s.hammock_prob = 0.0;
            s.diamond_prob = 0.02;
            s.loop_prob = 0.60;
            s.mean_trips = 80.0;
            s.block_len = (10, 16);
            s.min_loop_insts = 48;
            s
        }
        "ora" => {
            let mut s = WorkloadSpec::base_fp("ora", 0x08a0);
            s.hammock_prob = 0.25;
            s.hammock_len = (1, 4);
            s.block_len = (4, 10);
            s.mean_trips = 25.0;
            s
        }
        "tomcatv" => {
            let mut s = WorkloadSpec::base_fp("tomcatv", 0x70c4);
            s.hammock_prob = 0.06;
            s.hammock_len = (5, 10);
            s.loop_prob = 0.55;
            s.mean_trips = 60.0;
            s.block_len = (10, 16);
            s.min_loop_insts = 40;
            s
        }
        "wave5" => {
            let mut s = WorkloadSpec::base_fp("wave5", 0x3a7e);
            s.hammock_prob = 0.40;
            s.hammock_len = (1, 4);
            s.mean_trips = 30.0;
            s.block_len = (3, 8);
            s.taken_prob = (0.4, 0.9);
            s
        }
        _ => return None,
    };
    s.name = leak_check(name);
    Some(s)
}

// `spec_for` sets names from the static tables below so the returned spec
// borrows a `'static` name without allocation.
fn leak_check(name: &str) -> &'static str {
    INT_NAMES
        .iter()
        .chain(FP_NAMES.iter())
        .find(|&&n| n == name)
        .copied()
        .expect("name checked by caller")
}

/// Generates one named benchmark.
#[must_use]
pub fn benchmark(name: &str) -> Option<Workload> {
    spec_for(name).map(Workload::generate)
}

/// Generates the nine integer benchmarks.
#[must_use]
pub fn int_suite() -> Vec<Workload> {
    INT_NAMES
        .iter()
        .map(|n| benchmark(n).expect("known name"))
        .collect()
}

/// Generates the six floating-point benchmarks.
#[must_use]
pub fn fp_suite() -> Vec<Workload> {
    FP_NAMES
        .iter()
        .map(|n| benchmark(n).expect("known name"))
        .collect()
}

/// Generates the full fifteen-benchmark suite, integer first.
#[must_use]
pub fn full_suite() -> Vec<Workload> {
    let mut v = int_suite();
    v.extend(fp_suite());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadClass;

    #[test]
    fn all_names_resolve() {
        for n in INT_NAMES.iter().chain(FP_NAMES.iter()) {
            let w = benchmark(n).unwrap_or_else(|| panic!("{n} missing"));
            assert_eq!(w.spec.name, *n);
        }
        assert!(benchmark("quake").is_none());
    }

    #[test]
    fn classes_are_correct() {
        for w in int_suite() {
            assert_eq!(w.spec.class, WorkloadClass::Int, "{}", w.spec.name);
        }
        for w in fp_suite() {
            assert_eq!(w.spec.class, WorkloadClass::Fp, "{}", w.spec.name);
        }
    }

    #[test]
    fn suite_has_fifteen_distinct_programs() {
        let suite = full_suite();
        assert_eq!(suite.len(), 15);
        for pair in suite.windows(2) {
            assert_ne!(pair[0].program, pair[1].program);
        }
    }

    #[test]
    fn nasa7_has_no_hammocks() {
        let s = spec_for("nasa7").expect("known");
        assert_eq!(s.hammock_prob, 0.0);
    }
}
