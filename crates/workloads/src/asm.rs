//! A small text assembler: hand-write programs (with branch-behaviour
//! annotations) instead of generating them.
//!
//! # Syntax
//!
//! ```text
//! ; comments run to end of line
//! func main                ; starts a function; its first block is the entry
//! block head
//!     alu  r1, r1          ; rd[, rs1[, rs2]]
//!     mul  r2, r1, r2
//!     ld   r3, [r2+8]      ; load rd, [raddr+imm]
//!     st   r3, [r2+12]     ; store rs, [raddr+imm]
//!     fadd f1, f2, f3
//!     nop
//!     br   r1 ? head : exit @loop=20    ; cond branch + behaviour
//! block exit
//!     call helper, return=done          ; helper = another function's name
//! block done
//!     halt
//!
//! func helper
//! block h0
//!     ret
//! ```
//!
//! Branch behaviour annotations (default `@p=0.5`):
//!
//! * `@p=0.7` — Bernoulli, taken edge followed with probability 0.7
//! * `@loop=20` — stochastic loop backedge, mean 20 trips
//! * `@fixed=8` — fixed-trip loop backedge, exactly 8 trips
//! * `@pattern=1101:0.05` — repeating outcome bits (LSB first in source
//!   order), flipped with probability 0.05
//!
//! The program's entry point is the entry block of the *first* function.

use std::collections::HashMap;
use std::fmt;

use fetchmech_isa::{BlockId, FuncId, Inst, OpClass, Program, ProgramBuilder, Reg, ValidateError};

use crate::behavior::{BehaviorMap, BranchModel};

/// A successfully-assembled program.
#[derive(Debug, Clone)]
pub struct AsmProgram {
    /// The control-flow graph.
    pub program: Program,
    /// Behaviour of every conditional branch (from the annotations).
    pub behaviors: BehaviorMap,
    /// Block label → id, for tests and tooling.
    pub labels: HashMap<String, BlockId>,
}

/// An assembly error, with the 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmError {
    /// 1-based line number (0 for whole-program errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

impl From<ValidateError> for AsmError {
    fn from(e: ValidateError) -> Self {
        AsmError {
            line: 0,
            message: format!("invalid program: {e}"),
        }
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// What a block's terminator line said, before labels are resolvable.
#[derive(Debug, Clone)]
enum PendingTerm {
    Fall(String),
    Cond {
        srcs: [Option<Reg>; 2],
        taken: String,
        fall: String,
        model: BranchModel,
    },
    Jump(String),
    Call {
        func: String,
        return_to: String,
    },
    Ret,
    Halt,
}

#[derive(Debug)]
struct PendingBlock {
    line: usize,
    label: String,
    func: usize,
    insts: Vec<Inst>,
    term: Option<(usize, PendingTerm)>,
}

/// Parses assembly text into a program plus its branch behaviours.
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown labels, duplicate labels, missing terminators, or structurally
/// invalid programs (e.g. a `call` to a label that is not a function entry).
pub fn parse_asm(src: &str) -> Result<AsmProgram, AsmError> {
    let mut funcs: Vec<String> = Vec::new();
    let mut blocks: Vec<PendingBlock> = Vec::new();

    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("func ") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(err(line_no, "function needs a name"));
            }
            funcs.push(name.to_owned());
        } else if let Some(rest) = line.strip_prefix("block ") {
            let label = rest.trim();
            if label.is_empty() {
                return Err(err(line_no, "block needs a label"));
            }
            if funcs.is_empty() {
                return Err(err(line_no, "block before any `func`"));
            }
            if blocks.iter().any(|b| b.label == label) {
                return Err(err(line_no, format!("duplicate block label {label:?}")));
            }
            blocks.push(PendingBlock {
                line: line_no,
                label: label.to_owned(),
                func: funcs.len() - 1,
                insts: Vec::new(),
                term: None,
            });
        } else {
            let block = blocks
                .last_mut()
                .ok_or_else(|| err(line_no, "instruction before any `block`"))?;
            if block.term.is_some() {
                return Err(err(line_no, "instruction after the block's terminator"));
            }
            match parse_statement(line, line_no)? {
                Statement::Inst(i) => block.insts.push(i),
                Statement::Term(t) => block.term = Some((line_no, t)),
            }
        }
    }
    if blocks.is_empty() {
        return Err(err(0, "program has no blocks"));
    }

    // Build the program: functions in declaration order, blocks in source
    // order (natural layout = source order).
    let mut builder = ProgramBuilder::new();
    let func_ids: Vec<FuncId> = funcs.iter().map(|_| builder.begin_func()).collect();
    let mut labels: HashMap<String, BlockId> = HashMap::new();
    let mut func_entries: HashMap<String, BlockId> = HashMap::new();
    let mut func_entry_of: Vec<Option<BlockId>> = vec![None; funcs.len()];
    for pb in &blocks {
        let id = builder.new_block(func_ids[pb.func]);
        labels.insert(pb.label.clone(), id);
        if func_entry_of[pb.func].is_none() {
            func_entry_of[pb.func] = Some(id);
            func_entries.insert(funcs[pb.func].clone(), id);
        }
    }
    let mut models = Vec::new();
    for pb in &blocks {
        let id = labels[&pb.label];
        for inst in &pb.insts {
            builder.push_inst(id, *inst);
        }
        let (tline, term) = pb
            .term
            .as_ref()
            .ok_or_else(|| err(pb.line, format!("block {:?} has no terminator", pb.label)))?;
        let resolve = |label: &str| -> Result<BlockId, AsmError> {
            labels
                .get(label)
                .copied()
                .ok_or_else(|| err(*tline, format!("unknown block label {label:?}")))
        };
        use fetchmech_isa::Terminator as T;
        match term {
            PendingTerm::Fall(next) => {
                builder.set_terminator(
                    id,
                    T::FallThrough {
                        next: resolve(next)?,
                    },
                );
            }
            PendingTerm::Cond {
                srcs,
                taken,
                fall,
                model,
            } => {
                let branch = builder.set_cond_branch(id, *srcs, resolve(taken)?, resolve(fall)?);
                debug_assert_eq!(branch.0 as usize, models.len());
                models.push(*model);
            }
            PendingTerm::Jump(target) => {
                builder.set_terminator(
                    id,
                    T::Jump {
                        target: resolve(target)?,
                    },
                );
            }
            PendingTerm::Call { func, return_to } => {
                let callee = func_entries
                    .get(func)
                    .copied()
                    .ok_or_else(|| err(*tline, format!("unknown function {func:?}")))?;
                builder.set_terminator(
                    id,
                    T::Call {
                        callee,
                        return_to: resolve(return_to)?,
                    },
                );
            }
            PendingTerm::Ret => builder.set_terminator(id, T::Return),
            PendingTerm::Halt => builder.set_terminator(id, T::Halt),
        }
    }
    let entry = func_entry_of[0].ok_or_else(|| err(0, "first function has no blocks"))?;
    builder.set_entry(entry);
    let program = builder.finish()?;
    Ok(AsmProgram {
        program,
        behaviors: BehaviorMap::new(models),
        labels,
    })
}

enum Statement {
    Inst(Inst),
    Term(PendingTerm),
}

fn parse_statement(line: &str, ln: usize) -> Result<Statement, AsmError> {
    let (mnemonic, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let stmt = match mnemonic {
        "alu" | "mul" => {
            let op = if mnemonic == "alu" {
                OpClass::IntAlu
            } else {
                OpClass::IntMul
            };
            let (dest, srcs) = parse_reg_list(rest, ln)?;
            Statement::Inst(Inst::new(op, Some(dest), srcs))
        }
        "fadd" | "fmul" => {
            let op = if mnemonic == "fadd" {
                OpClass::FpAdd
            } else {
                OpClass::FpMul
            };
            let (dest, srcs) = parse_reg_list(rest, ln)?;
            Statement::Inst(Inst::new(op, Some(dest), srcs))
        }
        "ld" => {
            let (dest_s, mem) = rest
                .split_once(',')
                .ok_or_else(|| err(ln, "ld needs `rd, [raddr+imm]`"))?;
            let dest = parse_reg(dest_s.trim(), ln)?;
            let (base, imm) = parse_mem(mem.trim(), ln)?;
            Statement::Inst(Inst::new(OpClass::Load, Some(dest), [Some(base), None]).with_imm(imm))
        }
        "st" => {
            let (val_s, mem) = rest
                .split_once(',')
                .ok_or_else(|| err(ln, "st needs `rs, [raddr+imm]`"))?;
            let val = parse_reg(val_s.trim(), ln)?;
            let (base, imm) = parse_mem(mem.trim(), ln)?;
            Statement::Inst(Inst::new(OpClass::Store, None, [Some(val), Some(base)]).with_imm(imm))
        }
        "nop" => Statement::Inst(Inst::nop()),
        "br" => {
            // br r1[, r2] ? taken : fall [@annotation]
            let (cond, targets) = rest
                .split_once('?')
                .ok_or_else(|| err(ln, "br needs `srcs ? taken : fall`"))?;
            let mut srcs = [None, None];
            for (i, s) in cond
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .enumerate()
            {
                if i >= 2 {
                    return Err(err(ln, "br takes at most two source registers"));
                }
                srcs[i] = Some(parse_reg(s, ln)?);
            }
            let (labels_part, model) = match targets.split_once('@') {
                Some((l, anno)) => (l, parse_model(anno.trim(), ln)?),
                None => (targets, BranchModel::Bernoulli(0.5)),
            };
            let (taken, fall) = labels_part
                .split_once(':')
                .ok_or_else(|| err(ln, "br needs `taken : fall` labels"))?;
            Statement::Term(PendingTerm::Cond {
                srcs,
                taken: taken.trim().to_owned(),
                fall: fall.trim().to_owned(),
                model,
            })
        }
        "jmp" => Statement::Term(PendingTerm::Jump(rest.trim().to_owned())),
        "fall" => Statement::Term(PendingTerm::Fall(rest.trim().to_owned())),
        "call" => {
            let (func, ret) = rest
                .split_once(',')
                .ok_or_else(|| err(ln, "call needs `func, return=label`"))?;
            let ret = ret
                .trim()
                .strip_prefix("return=")
                .ok_or_else(|| err(ln, "call needs `return=label`"))?;
            Statement::Term(PendingTerm::Call {
                func: func.trim().to_owned(),
                return_to: ret.trim().to_owned(),
            })
        }
        "ret" => Statement::Term(PendingTerm::Ret),
        "halt" => Statement::Term(PendingTerm::Halt),
        other => return Err(err(ln, format!("unknown mnemonic {other:?}"))),
    };
    Ok(stmt)
}

fn parse_reg(s: &str, ln: usize) -> Result<Reg, AsmError> {
    let (kind, num) = s.split_at(1.min(s.len()));
    let n: u8 = num
        .parse()
        .map_err(|_| err(ln, format!("bad register {s:?}")))?;
    match kind {
        "r" if n < 32 => Ok(Reg::int(n)),
        "f" if n < 32 => Ok(Reg::fp(n)),
        _ => Err(err(ln, format!("bad register {s:?}"))),
    }
}

fn parse_reg_list(rest: &str, ln: usize) -> Result<(Reg, [Option<Reg>; 2]), AsmError> {
    let mut parts = rest.split(',').map(str::trim).filter(|s| !s.is_empty());
    let dest = parse_reg(
        parts.next().ok_or_else(|| err(ln, "missing destination"))?,
        ln,
    )?;
    let mut srcs = [None, None];
    for (i, p) in parts.enumerate() {
        if i >= 2 {
            return Err(err(ln, "too many operands"));
        }
        srcs[i] = Some(parse_reg(p, ln)?);
    }
    Ok((dest, srcs))
}

fn parse_mem(s: &str, ln: usize) -> Result<(Reg, i8), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| err(ln, format!("bad memory operand {s:?} (expected [rN+imm])")))?;
    let (reg_s, imm_s) = match inner.split_once('+') {
        Some((r, i)) => (r.trim(), Some(i.trim())),
        None => (inner.trim(), None),
    };
    let reg = parse_reg(reg_s, ln)?;
    let imm = match imm_s {
        Some(i) => i
            .parse()
            .map_err(|_| err(ln, format!("bad immediate {i:?}")))?,
        None => 0,
    };
    Ok((reg, imm))
}

fn parse_model(anno: &str, ln: usize) -> Result<BranchModel, AsmError> {
    let (key, value) = anno
        .split_once('=')
        .ok_or_else(|| err(ln, format!("bad annotation @{anno}")))?;
    match key.trim() {
        "p" => {
            let p: f64 = value
                .trim()
                .parse()
                .map_err(|_| err(ln, "bad probability"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(err(ln, "probability must be in [0, 1]"));
            }
            Ok(BranchModel::Bernoulli(p))
        }
        "loop" => {
            let m: f64 = value.trim().parse().map_err(|_| err(ln, "bad loop mean"))?;
            if m < 1.0 {
                return Err(err(ln, "loop mean must be >= 1"));
            }
            Ok(BranchModel::Loop { mean_trips: m })
        }
        "fixed" => {
            let t: u64 = value
                .trim()
                .parse()
                .map_err(|_| err(ln, "bad trip count"))?;
            if t == 0 {
                return Err(err(ln, "fixed trips must be >= 1"));
            }
            Ok(BranchModel::FixedLoop { trips: t })
        }
        "pattern" => {
            let (bits_s, noise_s) = value
                .split_once(':')
                .ok_or_else(|| err(ln, "pattern needs `bits:noise`"))?;
            let bits_s = bits_s.trim();
            if bits_s.is_empty() || bits_s.len() > 32 {
                return Err(err(ln, "pattern needs 1..=32 bits"));
            }
            let mut bits = 0u32;
            for (i, c) in bits_s.chars().enumerate() {
                match c {
                    '1' => bits |= 1 << i,
                    '0' => {}
                    _ => return Err(err(ln, "pattern bits must be 0 or 1")),
                }
            }
            let noise: f64 = noise_s
                .trim()
                .parse()
                .map_err(|_| err(ln, "bad pattern noise"))?;
            if !(0.0..=1.0).contains(&noise) {
                return Err(err(ln, "noise must be in [0, 1]"));
            }
            Ok(BranchModel::Pattern {
                bits,
                len: bits_s.len() as u8,
                noise,
            })
        }
        other => Err(err(ln, format!("unknown annotation @{other}="))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Executor, InputId};
    use fetchmech_isa::{Layout, LayoutOptions};

    const DEMO: &str = r"
; a loop with a hammock and a helper call
func main
block head
    alu  r1, r1
    br   r1 ? join : then @p=0.8
block then
    ld   r3, [r1+4]
    fall join
block join
    alu  r4, r1
    br   r4 ? head : out @fixed=10
block out
    call helper, return=done
block done
    halt

func helper
block h0
    st   r4, [r1+8]
    ret
";

    #[test]
    fn demo_assembles_and_executes() {
        let asm = parse_asm(DEMO).expect("valid assembly");
        assert_eq!(asm.program.num_funcs(), 2);
        assert_eq!(asm.program.num_branches(), 2);
        assert_eq!(asm.behaviors.len(), 2);
        let layout = Layout::natural(&asm.program, LayoutOptions::new(16)).expect("layout");
        let trace: Vec<_> = Executor::new(
            &asm.program,
            &layout,
            asm.behaviors.clone(),
            InputId::TEST,
            1,
            5_000,
        )
        .collect();
        assert_eq!(trace.len(), 5_000);
        // The loop runs 10 fixed trips; returns and halts appear.
        assert!(trace.iter().any(|i| i.op == OpClass::Return));
        assert!(trace.iter().any(|i| i.op == OpClass::Halt));
        for pair in trace.windows(2) {
            assert_eq!(pair[0].next_pc, pair[1].addr);
        }
    }

    #[test]
    fn annotations_map_to_models() {
        let src = r"
func main
block a
    br r1 ? a : b @loop=7.5
block b
    br r2 ? a : c @pattern=101:0.1
block c
    halt
";
        let asm = parse_asm(src).expect("valid");
        assert_eq!(
            asm.behaviors.model(fetchmech_isa::BranchId(0)),
            BranchModel::Loop { mean_trips: 7.5 }
        );
        assert_eq!(
            asm.behaviors.model(fetchmech_isa::BranchId(1)),
            BranchModel::Pattern {
                bits: 0b101,
                len: 3,
                noise: 0.1
            }
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            (
                "func main\nblock a\n    wat r1\n    halt",
                3,
                "unknown mnemonic",
            ),
            (
                "func main\nblock a\n    br r1 ? a : nowhere\nblock b\n    halt",
                3,
                "unknown block",
            ),
            (
                "func main\nblock a\n    alu r99\n    halt",
                3,
                "bad register",
            ),
            ("func main\nblock a\n    alu r1", 2, "no terminator"),
            ("block a\n    halt", 1, "before any `func`"),
            (
                "func main\nblock a\n    halt\nblock a\n    halt",
                4,
                "duplicate block label",
            ),
            (
                "func main\nblock a\n    br r1 ? a : a @p=7\n",
                3,
                "probability",
            ),
        ];
        for (src, line, needle) in cases {
            let e = parse_asm(src).expect_err(src);
            assert_eq!(e.line, *line, "{src:?} -> {e}");
            assert!(e.message.contains(needle), "{src:?} -> {e}");
        }
    }

    #[test]
    fn call_to_non_function_label_fails() {
        let src = r"
func main
block a
    call b, return=c
block b
    halt
block c
    halt
";
        // `b` is a block of main, not a function name.
        let e = parse_asm(src).expect_err("must fail");
        assert!(e.message.contains("unknown function"), "{e}");
    }

    #[test]
    fn memory_operands_parse() {
        let src = "func main\nblock a\n    ld r1, [r2+31]\n    st r1, [r2]\n    halt";
        let asm = parse_asm(src).expect("valid");
        let block = asm.program.block(asm.labels["a"]);
        assert_eq!(block.insts[0].imm, 31);
        assert_eq!(block.insts[1].imm, 0);
        assert_eq!(block.insts[1].srcs[0], Some(Reg::int(1)));
    }
}
