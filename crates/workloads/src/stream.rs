//! Native block-stream trace generation.
//!
//! [`Workload::block_stream`] produces the same dynamic instruction sequence
//! as [`Workload::executor`](crate::Executor) — bit-for-bit, including the
//! branch-behaviour RNG consumption — but emits it directly in run-length
//! [`BlockStream`] form, doing O(1) work per *segment* instead of O(1) work
//! per *instruction*. A precomputed next-control table lets the generator hop
//! from control transfer to control transfer; straight-line instructions are
//! materialized only once per interned segment template, so steady-state
//! generation touches a few words per executed segment.
//!
//! The equivalence contract (`block_stream(..).materialize()` equals the
//! executor's output exactly) is enforced by this module's tests and by the
//! simulator's differential oracle.

use std::collections::HashMap;

use fetchmech_isa::rng::{splitmix64, Pcg64};
use fetchmech_isa::{
    Addr, BlockStream, BlockStreamBuilder, DynCtrl, DynInst, LaidInst, Layout, OpClass, Terminator,
};

use crate::behavior::BehaviorState;
use crate::exec::InputId;
use crate::spec::Workload;

/// Dynamic outcome of a segment's terminal instruction, the part of segment
/// identity the static code does not pin down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum SegExit {
    /// Trace limit (or end of code) reached before the next control transfer.
    Cut,
    /// Conditional branch, not taken.
    CondNotTaken,
    /// Conditional branch, taken (static target).
    CondTaken,
    /// Jump, call, or halt — the destination is static.
    Uncond,
    /// Return to a dynamic address.
    Return(Addr),
}

/// True for the ops the executor treats as stream redirect points (emitting
/// a `ctrl` outcome): control transfers plus halt restarts.
fn is_event(op: OpClass) -> bool {
    op.is_control() || op == OpClass::Halt
}

/// Materializes the exact dynamic instructions of one segment:
/// `code[start..start + len]` where only the final instruction may be a
/// control transfer, with the terminal's dynamic fields given by `exit`.
fn materialize_segment(
    code: &[LaidInst],
    entry: Addr,
    start: usize,
    len: usize,
    exit: SegExit,
) -> Vec<DynInst> {
    let mut out = Vec::with_capacity(len);
    let plain_end = match exit {
        SegExit::Cut => start + len,
        _ => start + len - 1,
    };
    for inst in &code[start..plain_end] {
        out.push(DynInst {
            addr: inst.addr,
            op: inst.op,
            dest: inst.dest,
            srcs: inst.srcs,
            next_pc: inst.addr.add_words(1),
            ctrl: None,
        });
    }
    if exit != SegExit::Cut {
        let inst = &code[start + len - 1];
        let addr = inst.addr;
        let dyn_inst = match inst.op {
            OpClass::CondBranch => {
                let ctrl = inst.ctrl.expect("branch has ctrl");
                let target = ctrl.target.expect("branch target resolved");
                let taken = exit == SegExit::CondTaken;
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc: if taken { target } else { addr.add_words(1) },
                    ctrl: Some(DynCtrl {
                        branch_id: Some(ctrl.branch_id.expect("cond branch has id")),
                        taken,
                        target,
                        link: None,
                    }),
                }
            }
            OpClass::Jump | OpClass::Call | OpClass::Halt | OpClass::Return => {
                let (target, link) = match (inst.op, exit) {
                    (OpClass::Return, SegExit::Return(target)) => (target, None),
                    (OpClass::Halt, _) => (entry, None),
                    _ => {
                        let target = inst
                            .ctrl
                            .and_then(|c| c.target)
                            .expect("unconditional target resolved");
                        let link = (inst.op == OpClass::Call).then(|| {
                            // Re-derived by the caller; patched in below.
                            Addr::new(0)
                        });
                        (target, link)
                    }
                };
                DynInst {
                    addr,
                    op: inst.op,
                    dest: inst.dest,
                    srcs: inst.srcs,
                    next_pc: target,
                    ctrl: Some(DynCtrl {
                        branch_id: None,
                        taken: true,
                        target,
                        link,
                    }),
                }
            }
            other => panic!("segment terminal must be a control transfer, got {other}"),
        };
        out.push(dyn_inst);
    }
    out
}

impl Workload {
    /// Generates the dynamic trace for `(layout, input, limit)` directly in
    /// run-length [`BlockStream`] form.
    ///
    /// Equivalent to `self.executor(layout, input, limit).collect()` followed
    /// by [`BlockStream::from_insts`], but walks the program one *segment* at
    /// a time: the behaviour RNG is consumed identically (one decision per
    /// dynamic conditional branch), and repeated (segment, outcome) pairs hit
    /// an interner instead of re-materializing instructions.
    ///
    /// # Panics
    ///
    /// Panics if the layout does not belong to this workload's program (an
    /// entry or control-transfer address fails to resolve).
    #[must_use]
    pub fn block_stream(&self, layout: &Layout, input: InputId, limit: u64) -> BlockStream {
        let behaviors = self.behaviors.for_input(input.0, self.spec.input_magnitude);
        let mut state = BehaviorState::new(behaviors.len());
        let mut rng = Pcg64::new(splitmix64(
            self.spec.seed ^ 0xe8ec ^ (u64::from(input.0) << 32),
        ));
        let code = layout.code();
        let entry = layout.entry_addr();

        // next_event[i] = index of the first control/halt instruction at or
        // after i (code.len() if none remains).
        let mut next_event = vec![code.len() as u32; code.len()];
        let mut nxt = code.len();
        for i in (0..code.len()).rev() {
            if is_event(code[i].op) {
                nxt = i;
            }
            next_event[i] = nxt as u32;
        }

        let mut builder = BlockStreamBuilder::new();
        // (start index, length, exit) → template id. The static code pins the
        // segment body; the exit pins the terminal's dynamic fields.
        let mut interned: HashMap<(u32, u32, SegExit), u32> = HashMap::new();
        let mut intern =
            |builder: &mut BlockStreamBuilder, start: usize, len: usize, exit: SegExit| {
                *interned.entry((start as u32, len as u32, exit)).or_insert_with(|| {
                let mut insts = materialize_segment(code, entry, start, len, exit);
                if exit != SegExit::Cut {
                    if let Some(last) = insts.last_mut() {
                        if last.op == OpClass::Call {
                            // Patch the static call link (the address the
                            // matching return resumes at).
                            let laid = &code[start + len - 1];
                            let return_to = match self.program.block(laid.block).terminator {
                                Terminator::Call { return_to, .. } => return_to,
                                other => {
                                    panic!("call instruction from non-call terminator {other:?}")
                                }
                            };
                            let link = layout.block_addr(return_to);
                            last.ctrl = last.ctrl.map(|mut c| {
                                c.link = Some(link);
                                c
                            });
                        }
                    }
                }
                builder.intern(&insts)
            })
            };

        let mut pc = layout
            .index_of(entry)
            .expect("layout entry address must resolve");
        let mut call_stack: Vec<Addr> = Vec::new();
        let mut emitted = 0u64;
        while emitted < limit && pc < code.len() {
            let avail = limit - emitted;
            let ev = next_event[pc] as usize;
            if ev >= code.len() {
                // Straight-line tail with no further control transfer: the
                // executor walks off the end of the code.
                let run = ((code.len() - pc) as u64).min(avail) as usize;
                let id = intern(&mut builder, pc, run, SegExit::Cut);
                builder.push_record(id);
                break;
            }
            let full = (ev - pc + 1) as u64;
            if full > avail {
                // The limit cuts the segment before its terminal.
                let id = intern(&mut builder, pc, avail as usize, SegExit::Cut);
                builder.push_record(id);
                break;
            }
            // The terminal executes: advance the dynamic state exactly as the
            // per-instruction executor would.
            let term = &code[ev];
            let goto = |layout: &Layout, addr: Addr| {
                layout
                    .index_of(addr)
                    .unwrap_or_else(|| panic!("control transfer to unmapped address {addr}"))
            };
            let (exit, next_pc) = match term.op {
                OpClass::CondBranch => {
                    let ctrl = term.ctrl.expect("branch has ctrl");
                    let id = ctrl.branch_id.expect("cond branch has id");
                    let semantic = state.decide(id, behaviors.model(id), &mut rng);
                    let hw_taken = semantic ^ ctrl.inverted;
                    if hw_taken {
                        let target = ctrl.target.expect("branch target resolved");
                        (SegExit::CondTaken, goto(layout, target))
                    } else {
                        (SegExit::CondNotTaken, ev + 1)
                    }
                }
                OpClass::Jump => {
                    let target = term.ctrl.and_then(|c| c.target).expect("jump target");
                    (SegExit::Uncond, goto(layout, target))
                }
                OpClass::Call => {
                    let target = term.ctrl.and_then(|c| c.target).expect("call target");
                    let return_to = match self.program.block(term.block).terminator {
                        Terminator::Call { return_to, .. } => return_to,
                        other => panic!("call instruction from non-call terminator {other:?}"),
                    };
                    call_stack.push(layout.block_addr(return_to));
                    (SegExit::Uncond, goto(layout, target))
                }
                OpClass::Return => {
                    let target = call_stack.pop().unwrap_or_else(|| {
                        state.reset();
                        entry
                    });
                    (SegExit::Return(target), goto(layout, target))
                }
                OpClass::Halt => {
                    call_stack.clear();
                    state.reset();
                    (SegExit::Uncond, goto(layout, entry))
                }
                other => unreachable!("next_event stopped at non-control {other}"),
            };
            let id = intern(&mut builder, pc, full as usize, exit);
            builder.push_record(id);
            emitted += full;
            pc = next_pc;
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use crate::suite;
    use fetchmech_isa::LayoutOptions;

    fn check_equivalence(w: &Workload, layout: &Layout, input: InputId, limit: u64) {
        let via_exec: Vec<DynInst> = w.executor(layout, input, limit).collect();
        let stream = w.block_stream(layout, input, limit);
        assert_eq!(stream.total_insts(), via_exec.len() as u64);
        assert_eq!(stream.materialize(), via_exec, "{} mismatch", w.spec.name);
        // And the native encoding matches the reference encoder exactly
        // (template numbering included, since both intern in first-seen
        // order).
        assert_eq!(stream, BlockStream::from_insts(&via_exec));
    }

    #[test]
    fn native_stream_matches_executor_across_limits() {
        let mut s = WorkloadSpec::base_int("stream-unit", 42);
        s.funcs = 4;
        s.segments_per_func = (4, 8);
        let w = Workload::generate(s);
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        for limit in [0, 1, 7, 100, 4096, 20_000] {
            check_equivalence(&w, &layout, InputId::TEST, limit);
        }
    }

    #[test]
    fn native_stream_matches_executor_across_inputs() {
        let w = suite::benchmark("compress").expect("known benchmark");
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        for input in InputId::PROFILE.into_iter().chain([InputId::TEST]) {
            check_equivalence(&w, &layout, input, 5000);
        }
    }

    #[test]
    fn native_stream_matches_executor_for_fp_code() {
        let w = Workload::generate(WorkloadSpec::base_fp("stream-fp", 9));
        let layout = Layout::natural(&w.program, LayoutOptions::new(32)).expect("layout");
        check_equivalence(&w, &layout, InputId::TEST, 30_000);
    }

    #[test]
    fn interning_keeps_the_template_table_small() {
        let w = suite::benchmark("compress").expect("known benchmark");
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let stream = w.block_stream(&layout, InputId::TEST, 50_000);
        let stats = stream.stats();
        assert_eq!(stats.insts, 50_000);
        assert!(
            stats.templates < stats.records / 4,
            "templates {} vs records {}: interning ineffective",
            stats.templates,
            stats.records
        );
        assert!(
            stats.compression > 4.0,
            "compression {} too low",
            stats.compression
        );
    }
}
