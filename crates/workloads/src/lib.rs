//! # fetchmech-workloads
//!
//! Synthetic benchmark workloads and the trace executor for the `fetchmech`
//! reproduction of the ISCA '95 fetch-mechanisms paper.
//!
//! The paper drives its simulator with `spike` traces of SPEC92 binaries on
//! HP PA-RISC workstations — inputs this repository cannot reproduce. This
//! crate substitutes **synthetic benchmarks**: deterministic control-flow
//! graph generators ([`WorkloadSpec`], [`Workload::generate`]) calibrated per
//! named benchmark ([`suite`]), per-branch stochastic behaviour models
//! ([`BranchModel`], [`BehaviorMap`]), and an [`Executor`] that walks a laid-
//! out program and emits the dynamic instruction stream. Multiple program
//! *inputs* ([`InputId`]) perturb branch behaviour deterministically,
//! reproducing the profile-vs-test-input methodology of the paper's §4.
//!
//! # Examples
//!
//! Generate the `compress` stand-in and trace 1000 instructions:
//!
//! ```
//! use fetchmech_isa::{Layout, LayoutOptions};
//! use fetchmech_workloads::{suite, InputId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = suite::benchmark("compress").expect("known benchmark");
//! let layout = Layout::natural(&w.program, LayoutOptions::new(16))?;
//! let trace: Vec<_> = w.executor(&layout, InputId::TEST, 1000).collect();
//! assert_eq!(trace.len(), 1000);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod behavior;
pub mod exec;
pub mod spec;
pub mod stream;
pub mod suite;

pub use asm::{parse_asm, AsmError, AsmProgram};
pub use behavior::{BehaviorMap, BehaviorState, BranchModel};
pub use exec::{Executor, InputId};
pub use spec::{Workload, WorkloadClass, WorkloadSpec};
