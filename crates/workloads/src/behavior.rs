//! Per-branch behaviour models.
//!
//! The paper drives its simulator with `spike` traces of SPEC92 binaries. We
//! substitute synthetic programs whose conditional branches follow explicit
//! stochastic models; the models are the "program input". Five *profile*
//! inputs and one *test* input are derived from the base behaviour by
//! deterministic perturbation, reproducing the §4 profile-driven methodology
//! (profiles are measured on inputs 0–4 and the simulation runs input 5).

use fetchmech_isa::rng::{splitmix64, Pcg64};
use fetchmech_isa::BranchId;

/// How a static conditional branch behaves dynamically.
///
/// Decisions are expressed in terms of the branch's *original* taken edge;
/// the executor XORs with the terminator's `inverted` flag after compiler
/// transforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchModel {
    /// Independent coin flips: the original taken edge is followed with the
    /// given probability.
    Bernoulli(f64),
    /// A loop backedge: on loop entry a trip count with the given mean is
    /// sampled; the taken (continue) edge is followed until the count is
    /// exhausted, then the branch exits and re-arms.
    Loop {
        /// Mean trip count (>= 1).
        mean_trips: f64,
    },
    /// A loop backedge with the *same* trip count on every activation (an
    /// inner loop over a fixed-size structure). Perfectly predictable by a
    /// history-based predictor when `trips` fits in the history.
    FixedLoop {
        /// Trip count (>= 1).
        trips: u64,
    },
    /// A repeating outcome pattern with occasional noise — the data-dependent
    /// but *correlated* branches real integer code is full of, and the
    /// reason two-level predictors beat per-branch counters.
    Pattern {
        /// Outcome bits, LSB first; bit `i` is the outcome at step `i`.
        bits: u32,
        /// Pattern length in `1..=32`.
        len: u8,
        /// Probability any step's outcome is flipped.
        noise: f64,
    },
}

impl BranchModel {
    /// The long-run probability of following the original taken edge.
    #[must_use]
    pub fn taken_fraction(&self) -> f64 {
        match *self {
            BranchModel::Bernoulli(p) => p,
            // A loop with mean t trips takes the backedge (t-1)/t of the time.
            BranchModel::Loop { mean_trips } => {
                let t = mean_trips.max(1.0);
                (t - 1.0) / t
            }
            BranchModel::FixedLoop { trips } => {
                let t = trips.max(1) as f64;
                (t - 1.0) / t
            }
            BranchModel::Pattern { bits, len, noise } => {
                let ones = (bits & mask(len)).count_ones() as f64;
                let base = ones / f64::from(len);
                base * (1.0 - noise) + (1.0 - base) * noise
            }
        }
    }
}

fn mask(len: u8) -> u32 {
    if len >= 32 {
        u32::MAX
    } else {
        (1u32 << len) - 1
    }
}

/// The behaviour of every branch in a program, indexed by [`BranchId`].
///
/// Compiler passes that duplicate code (superblock tail duplication) mint
/// fresh branch ids for the copies; [`BehaviorMap::with_origin`] aliases
/// those ids back onto the original branch so every copy shares its
/// original's model *and* runtime state — a duplicated loop backedge
/// continues the same trip count, and the RNG draw sequence is identical to
/// the untransformed program's.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorMap {
    models: Vec<BranchModel>,
    /// `origin[i]` = the base branch whose model/state `BranchId(i)` uses.
    /// Empty means the identity map over `models`.
    origin: Vec<BranchId>,
}

impl BehaviorMap {
    /// Creates a map from dense per-branch models (index = `BranchId.0`).
    #[must_use]
    pub fn new(models: Vec<BranchModel>) -> Self {
        Self {
            models,
            origin: Vec::new(),
        }
    }

    /// Returns the model for `id` (through the origin alias, if any).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn model(&self, id: BranchId) -> BranchModel {
        self.models[self.origin_of(id).0 as usize]
    }

    /// The base branch `id` aliases (itself when no origin map is set).
    ///
    /// # Panics
    ///
    /// Panics if an origin map is set and `id` is out of its range.
    #[must_use]
    pub fn origin_of(&self, id: BranchId) -> BranchId {
        if self.origin.is_empty() {
            id
        } else {
            self.origin[id.0 as usize]
        }
    }

    /// Re-keys this map for a transformed program: `origin[i]` names the
    /// base branch that transformed branch `BranchId(i)` is a copy of
    /// (identity for surviving originals). The result answers queries for
    /// the transformed id space while sharing the base models.
    ///
    /// # Panics
    ///
    /// Panics if any origin entry is outside the base model range.
    #[must_use]
    pub fn with_origin(&self, origin: Vec<BranchId>) -> BehaviorMap {
        for &o in &origin {
            assert!(
                (o.0 as usize) < self.models.len(),
                "origin {o:?} outside the {} base models",
                self.models.len()
            );
        }
        BehaviorMap {
            models: self.models.clone(),
            origin,
        }
    }

    /// Number of branches covered (in the aliased id space, if any).
    #[must_use]
    pub fn len(&self) -> usize {
        if self.origin.is_empty() {
            self.models.len()
        } else {
            self.origin.len()
        }
    }

    /// Number of *base* branches — the index space runtime state
    /// ([`BehaviorState`]) must cover, since aliased branches share slots.
    #[must_use]
    pub fn state_len(&self) -> usize {
        self.models.len()
    }

    /// Returns `true` if no branches are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Derives the behaviour for a particular program *input*.
    ///
    /// Input 0 is close to the base behaviour; each input perturbs branch
    /// probabilities by up to `magnitude` (absolute, clamped to
    /// `[0.02, 0.98]`) and loop trip means by up to ±`magnitude` relative,
    /// deterministically per `(branch, input)`. Distinct inputs therefore
    /// exercise the same code with shifted — but correlated — branch
    /// statistics, exactly the property profile-driven optimization relies
    /// on.
    #[must_use]
    pub fn for_input(&self, input: u32, magnitude: f64) -> BehaviorMap {
        let models = self
            .models
            .iter()
            .enumerate()
            .map(|(i, m)| {
                let mut r = Pcg64::new(splitmix64(
                    0x5eed_0000_0000_0000 ^ (i as u64) << 20 ^ u64::from(input),
                ));
                match *m {
                    BranchModel::Bernoulli(p) => {
                        let delta = (r.next_f64() * 2.0 - 1.0) * magnitude;
                        BranchModel::Bernoulli((p + delta).clamp(0.02, 0.98))
                    }
                    BranchModel::Loop { mean_trips } => {
                        let factor = 1.0 + (r.next_f64() * 2.0 - 1.0) * magnitude;
                        BranchModel::Loop {
                            mean_trips: (mean_trips * factor).max(1.0),
                        }
                    }
                    BranchModel::FixedLoop { trips } => {
                        // Inputs scale the structure size; the count stays
                        // fixed within a run.
                        let factor = 1.0 + (r.next_f64() * 2.0 - 1.0) * magnitude;
                        let scaled = ((trips as f64) * factor).round().max(1.0) as u64;
                        BranchModel::FixedLoop { trips: scaled }
                    }
                    BranchModel::Pattern { bits, len, noise } => {
                        // Inputs shift where the pattern "starts" in the data
                        // (a rotation) and perturb the noise level.
                        let l = u32::from(len.clamp(1, 32));
                        let rot = r.next_u64() as u32 % l;
                        let m = if l >= 32 { u32::MAX } else { (1 << l) - 1 };
                        let b = bits & m;
                        let rotated = ((b >> rot) | (b << (l - rot).min(31))) & m;
                        let delta = (r.next_f64() * 2.0 - 1.0) * magnitude * 0.5;
                        BranchModel::Pattern {
                            bits: rotated,
                            len,
                            noise: (noise + delta).clamp(0.0, 0.4),
                        }
                    }
                }
            })
            .collect();
        // Perturbation is keyed by *base* model index, so aliased branches
        // keep tracking their original across inputs.
        BehaviorMap {
            models,
            origin: self.origin.clone(),
        }
    }
}

/// Runtime state the executor keeps per branch (loop trip counters).
#[derive(Debug, Clone, Default)]
pub struct BehaviorState {
    /// `Some(n)` = a loop is live with `n` continues remaining.
    remaining: Vec<Option<u64>>,
    /// Position within a [`BranchModel::Pattern`].
    position: Vec<u32>,
}

impl BehaviorState {
    /// Creates state for `n` branches.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            remaining: vec![None; n],
            position: vec![0; n],
        }
    }

    /// Decides whether the branch follows its *original taken* edge, updating
    /// loop state.
    pub fn decide(&mut self, id: BranchId, model: BranchModel, rng: &mut Pcg64) -> bool {
        match model {
            BranchModel::Bernoulli(p) => rng.chance(p),
            BranchModel::Loop { mean_trips } => self.run_loop(id, || rng.trip_count(mean_trips)),
            BranchModel::FixedLoop { trips } => self.run_loop(id, || trips.max(1)),
            BranchModel::Pattern { bits, len, noise } => {
                let pos = &mut self.position[id.0 as usize];
                let outcome = (bits >> *pos) & 1 == 1;
                *pos = (*pos + 1) % u32::from(len.clamp(1, 32));
                if noise > 0.0 && rng.chance(noise) {
                    !outcome
                } else {
                    outcome
                }
            }
        }
    }

    /// Shared loop mechanics: `fresh_trips` is consulted only when a new
    /// activation starts.
    fn run_loop(&mut self, id: BranchId, fresh_trips: impl FnOnce() -> u64) -> bool {
        let slot = &mut self.remaining[id.0 as usize];
        let left = match slot {
            Some(left) => *left,
            None => {
                let trips = fresh_trips();
                *slot = Some(trips - 1);
                trips - 1
            }
        };
        if left > 0 {
            *slot = Some(left - 1);
            true
        } else {
            *slot = None;
            false
        }
    }

    /// Clears all live loop counters and pattern positions (used at program
    /// restart).
    pub fn reset(&mut self) {
        self.remaining.fill(None);
        self.position.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_fraction_matches() {
        let mut st = BehaviorState::new(1);
        let mut rng = Pcg64::new(1);
        let m = BranchModel::Bernoulli(0.7);
        let n = 100_000;
        let taken = (0..n)
            .filter(|_| st.decide(BranchId(0), m, &mut rng))
            .count();
        let frac = taken as f64 / n as f64;
        assert!((frac - 0.7).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn loop_model_runs_trips_then_exits() {
        let mut st = BehaviorState::new(1);
        let mut rng = Pcg64::new(2);
        let m = BranchModel::Loop { mean_trips: 8.0 };
        // Execute many loop "entries": count continues per activation.
        let mut activations = 0u64;
        let mut continues = 0u64;
        for _ in 0..200_000 {
            if st.decide(BranchId(0), m, &mut rng) {
                continues += 1;
            } else {
                activations += 1;
            }
        }
        let mean = continues as f64 / activations as f64 + 1.0;
        assert!((mean - 8.0).abs() < 0.3, "observed mean trips {mean}");
    }

    #[test]
    fn loop_taken_fraction_formula() {
        let m = BranchModel::Loop { mean_trips: 10.0 };
        assert!((m.taken_fraction() - 0.9).abs() < 1e-9);
        assert_eq!(BranchModel::Bernoulli(0.25).taken_fraction(), 0.25);
    }

    #[test]
    fn for_input_is_deterministic_and_bounded() {
        let base = BehaviorMap::new(vec![
            BranchModel::Bernoulli(0.5),
            BranchModel::Loop { mean_trips: 10.0 },
        ]);
        let a = base.for_input(3, 0.1);
        let b = base.for_input(3, 0.1);
        assert_eq!(a, b, "same input must derive identical behaviour");
        let c = base.for_input(4, 0.1);
        assert_ne!(a, c, "distinct inputs must differ");
        match a.model(BranchId(0)) {
            BranchModel::Bernoulli(p) => assert!((p - 0.5).abs() <= 0.1 + 1e-9),
            other => panic!("model kind changed: {other:?}"),
        }
        match a.model(BranchId(1)) {
            BranchModel::Loop { mean_trips } => {
                assert!((mean_trips - 10.0).abs() <= 1.0 + 1e-9);
            }
            other => panic!("model kind changed: {other:?}"),
        }
    }

    #[test]
    fn origin_aliases_share_model_and_state() {
        let base = BehaviorMap::new(vec![
            BranchModel::FixedLoop { trips: 4 },
            BranchModel::Bernoulli(0.5),
        ]);
        // Branch 2 is a duplicate of branch 0; 0 and 1 survive as themselves.
        let aliased = base.with_origin(vec![BranchId(0), BranchId(1), BranchId(0)]);
        assert_eq!(aliased.len(), 3);
        assert_eq!(aliased.state_len(), 2);
        assert_eq!(aliased.model(BranchId(2)), base.model(BranchId(0)));
        assert_eq!(aliased.origin_of(BranchId(2)), BranchId(0));

        // Interleaving decisions across the alias continues one trip count:
        // a 4-trip loop yields taken, taken, taken, not-taken regardless of
        // which alias asks.
        let mut st = BehaviorState::new(aliased.state_len());
        let mut rng = Pcg64::new(9);
        let seq: Vec<bool> = [BranchId(0), BranchId(2), BranchId(0), BranchId(2)]
            .iter()
            .map(|&id| st.decide(aliased.origin_of(id), aliased.model(id), &mut rng))
            .collect();
        assert_eq!(seq, vec![true, true, true, false]);

        // for_input preserves the alias and perturbs by base index.
        let perturbed = aliased.for_input(2, 0.1);
        assert_eq!(perturbed.len(), 3);
        assert_eq!(
            perturbed.model(BranchId(2)),
            perturbed.model(BranchId(0)),
            "alias must track its base across inputs"
        );
    }

    #[test]
    fn state_reset_rearms_loops() {
        let mut st = BehaviorState::new(1);
        let mut rng = Pcg64::new(3);
        let m = BranchModel::Loop { mean_trips: 100.0 };
        // Start a loop, then reset mid-flight; the next decision samples a
        // fresh trip count rather than continuing the old one.
        let _ = st.decide(BranchId(0), m, &mut rng);
        assert!(st.remaining[0].is_some());
        st.reset();
        assert!(st.remaining[0].is_none());
    }
}
