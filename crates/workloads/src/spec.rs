//! Parameterized synthetic-program generation.
//!
//! A [`WorkloadSpec`] describes the *shape* of a benchmark — block sizes,
//! hammock density and skip distances, loop structure and trip counts, call
//! graph fan-out, FP/memory op mix, and dependence locality. [`Workload::generate`]
//! deterministically expands a spec into a [`Program`] plus the base
//! [`BehaviorMap`] for its branches. The named SPEC-style suite built from
//! these specs lives in [`crate::suite`].

use fetchmech_isa::rng::Pcg64;
use fetchmech_isa::{BlockId, FuncId, Inst, OpClass, Program, ProgramBuilder, Reg, Terminator};

use crate::behavior::{BehaviorMap, BranchModel};

/// Integer or floating-point benchmark class (the paper reports the two
/// classes separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadClass {
    /// Integer codes: branchy, short blocks, frequent hammocks.
    Int,
    /// Floating-point codes: loop-dominated, long sequential runs.
    Fp,
}

impl std::fmt::Display for WorkloadClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadClass::Int => f.write_str("Int"),
            WorkloadClass::Fp => f.write_str("FP"),
        }
    }
}

/// The generation parameters for one synthetic benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name (matches the paper's benchmark it stands in for).
    pub name: &'static str,
    /// Integer or floating-point.
    pub class: WorkloadClass,
    /// Generation seed; every structural decision derives from it.
    pub seed: u64,
    /// Number of functions (function 0 is `main`).
    pub funcs: usize,
    /// Segments (structured regions) per function, inclusive range.
    pub segments_per_func: (usize, usize),
    /// Body instructions per basic block, inclusive range.
    pub block_len: (usize, usize),
    /// Fraction of body instructions that are floating-point.
    pub fp_ratio: f64,
    /// Fraction of body instructions that are loads/stores.
    pub mem_ratio: f64,
    /// Probability a segment is a hammock (forward branch skipping a short
    /// region — the intra-block branch source).
    pub hammock_prob: f64,
    /// Skipped-region length for hammocks, inclusive range (instructions).
    pub hammock_len: (usize, usize),
    /// Probability a segment is an if-else diamond.
    pub diamond_prob: f64,
    /// Probability a segment is a loop.
    pub loop_prob: f64,
    /// Blocks in a loop body, inclusive range.
    pub loop_body_blocks: (usize, usize),
    /// Mean loop trip count.
    pub mean_trips: f64,
    /// Minimum body instructions per loop iteration (keeps backedges from
    /// being trivially intra-block, as in real inner loops).
    pub min_loop_insts: usize,
    /// Range for Bernoulli taken-probabilities of non-loop branches.
    pub taken_prob: (f64, f64),
    /// Fraction of non-loop branches that follow a correlated repeating
    /// pattern instead of i.i.d. coin flips (what a two-level predictor can
    /// exploit and a per-branch counter cannot).
    pub pattern_prob: f64,
    /// Fraction of loops whose trip count is the same on every activation.
    pub fixed_loop_prob: f64,
    /// Probability a segment is a call (to a later-numbered function).
    pub call_prob: f64,
    /// How many recently-written registers sources may reach back to.
    pub dep_locality: usize,
    /// Perturbation magnitude distinguishing program inputs (see
    /// [`BehaviorMap::for_input`]).
    pub input_magnitude: f64,
}

impl WorkloadSpec {
    /// A generic integer-code shape; named benchmarks tweak from here.
    #[must_use]
    pub fn base_int(name: &'static str, seed: u64) -> Self {
        Self {
            name,
            class: WorkloadClass::Int,
            seed,
            funcs: 8,
            segments_per_func: (6, 18),
            block_len: (2, 7),
            fp_ratio: 0.02,
            mem_ratio: 0.30,
            hammock_prob: 0.30,
            hammock_len: (1, 6),
            diamond_prob: 0.15,
            loop_prob: 0.12,
            loop_body_blocks: (1, 3),
            mean_trips: 6.0,
            min_loop_insts: 12,
            taken_prob: (0.2, 0.8),
            pattern_prob: 0.25,
            fixed_loop_prob: 0.5,
            call_prob: 0.12,
            dep_locality: 4,
            input_magnitude: 0.08,
        }
    }

    /// The spec shell wrapping an *externally supplied* program (frontend
    /// uploads). The structural knobs are degenerate placeholders — the
    /// program and behaviours come from the frontend, not the generator —
    /// but `name`, `seed`, `class`, and `input_magnitude` are live: they
    /// drive trace seeding and per-input behaviour perturbation exactly as
    /// for generated workloads. Never pass this spec to
    /// [`Workload::generate`].
    #[must_use]
    pub fn external(name: &'static str, seed: u64) -> Self {
        Self {
            name,
            class: WorkloadClass::Int,
            seed,
            funcs: 1,
            segments_per_func: (1, 1),
            block_len: (1, 1),
            fp_ratio: 0.0,
            mem_ratio: 0.0,
            hammock_prob: 0.0,
            hammock_len: (1, 1),
            diamond_prob: 0.0,
            loop_prob: 0.0,
            loop_body_blocks: (1, 1),
            mean_trips: 1.0,
            min_loop_insts: 0,
            taken_prob: (0.5, 0.5),
            pattern_prob: 0.0,
            fixed_loop_prob: 0.0,
            call_prob: 0.0,
            dep_locality: 1,
            input_magnitude: 0.08,
        }
    }

    /// A generic floating-point shape; named benchmarks tweak from here.
    #[must_use]
    pub fn base_fp(name: &'static str, seed: u64) -> Self {
        Self {
            name,
            class: WorkloadClass::Fp,
            seed,
            funcs: 5,
            segments_per_func: (4, 10),
            block_len: (6, 14),
            fp_ratio: 0.45,
            mem_ratio: 0.30,
            hammock_prob: 0.06,
            hammock_len: (1, 4),
            diamond_prob: 0.04,
            loop_prob: 0.45,
            loop_body_blocks: (1, 4),
            mean_trips: 40.0,
            min_loop_insts: 28,
            taken_prob: (0.3, 0.7),
            pattern_prob: 0.15,
            fixed_loop_prob: 0.7,
            call_prob: 0.08,
            dep_locality: 6,
            input_magnitude: 0.06,
        }
    }
}

/// A generated benchmark: the immutable program plus its base branch
/// behaviour.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The spec this workload was generated from.
    pub spec: WorkloadSpec,
    /// The control-flow graph.
    pub program: Program,
    /// Base behaviour of every conditional branch (perturb per input with
    /// [`BehaviorMap::for_input`]).
    pub behaviors: BehaviorMap,
}

impl Workload {
    /// Deterministically generates the workload for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero functions, empty ranges, or
    /// probabilities outside `[0, 1]`) — specs are code, not user input.
    #[must_use]
    pub fn generate(spec: WorkloadSpec) -> Self {
        assert!(spec.funcs >= 1, "need at least one function");
        assert!(
            spec.segments_per_func.0 >= 1 && spec.segments_per_func.0 <= spec.segments_per_func.1
        );
        assert!(spec.block_len.0 <= spec.block_len.1);
        assert!(spec.hammock_len.0 >= 1 && spec.hammock_len.0 <= spec.hammock_len.1);
        assert!(spec.loop_body_blocks.0 >= 1 && spec.loop_body_blocks.0 <= spec.loop_body_blocks.1);
        for p in [
            spec.fp_ratio,
            spec.mem_ratio,
            spec.hammock_prob,
            spec.diamond_prob,
            spec.loop_prob,
            spec.call_prob,
            spec.pattern_prob,
            spec.fixed_loop_prob,
        ] {
            assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        }
        assert!(
            spec.hammock_prob + spec.diamond_prob + spec.loop_prob + spec.call_prob <= 1.0 + 1e-9,
            "segment-kind probabilities must not exceed 1"
        );

        let mut gen = Generator::new(&spec);
        gen.build();
        let Generator {
            builder, models, ..
        } = gen;
        let program = builder
            .finish()
            .expect("generator produced an invalid program");
        assert_eq!(
            program.num_branches() as usize,
            models.len(),
            "branch models out of sync with branch ids"
        );
        Workload {
            spec,
            program,
            behaviors: BehaviorMap::new(models),
        }
    }
}

/// Kinds of structured segments a function body is assembled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Segment {
    Straight,
    Hammock,
    Diamond,
    Loop,
    Call,
}

struct Generator<'s> {
    spec: &'s WorkloadSpec,
    builder: ProgramBuilder,
    models: Vec<BranchModel>,
    /// Structural randomness.
    r_struct: Pcg64,
    /// Instruction-mix randomness.
    r_mix: Pcg64,
    /// Probability randomness (branch biases).
    r_prob: Pcg64,
    /// Recently written integer registers (dataflow locality).
    recent_int: Vec<u8>,
    recent_fp: Vec<u8>,
    next_int: u8,
    next_fp: u8,
    /// Body instructions emitted so far (loop-size accounting).
    insts_emitted: usize,
}

impl<'s> Generator<'s> {
    fn new(spec: &'s WorkloadSpec) -> Self {
        Self {
            spec,
            builder: ProgramBuilder::new(),
            models: Vec::new(),
            r_struct: Pcg64::stream(spec.seed, 1),
            r_mix: Pcg64::stream(spec.seed, 2),
            r_prob: Pcg64::stream(spec.seed, 3),
            recent_int: vec![1],
            recent_fp: vec![0],
            next_int: 1,
            next_fp: 0,
            insts_emitted: 0,
        }
    }

    fn build(&mut self) {
        // Declare all functions first so calls can reference later entries.
        let funcs: Vec<FuncId> = (0..self.spec.funcs)
            .map(|_| self.builder.begin_func())
            .collect();
        let mut entries: Vec<Option<BlockId>> = vec![None; funcs.len()];
        for (i, &f) in funcs.iter().enumerate() {
            if entries[i].is_none() {
                let entry = self.build_func(f, i, &funcs, &mut entries);
                entries[i] = Some(entry);
            }
        }
        self.builder.set_entry(entries[0].expect("main generated"));
    }

    /// Builds function `idx`; returns its entry block.
    fn build_func(
        &mut self,
        f: FuncId,
        idx: usize,
        funcs: &[FuncId],
        entries: &mut [Option<BlockId>],
    ) -> BlockId {
        let (lo, hi) = self.spec.segments_per_func;
        let nsegs = self.r_struct.range_usize(lo, hi + 1);
        let entry = self.builder.new_block(f);
        let mut cur = entry;
        self.fill_body(cur);
        for _ in 0..nsegs {
            cur = match self.pick_segment(idx) {
                Segment::Straight => self.seg_straight(f, cur),
                Segment::Hammock => self.seg_hammock(f, cur),
                Segment::Diamond => self.seg_diamond(f, cur),
                Segment::Loop => self.seg_loop(f, cur),
                Segment::Call => {
                    let j = self.r_struct.range_usize(idx + 1, funcs.len());
                    self.seg_call(f, cur, j, funcs, entries)
                }
            };
        }
        // Main invokes every function not already reachable through the call
        // graph, so no generated code is dead and every program exercises
        // calls and returns.
        if idx == 0 {
            for j in 1..funcs.len() {
                if entries[j].is_none() {
                    cur = self.seg_call(f, cur, j, funcs, entries);
                }
            }
        }
        // Close the function.
        let term = if idx == 0 {
            Terminator::Halt
        } else {
            Terminator::Return
        };
        self.builder.set_terminator(cur, term);
        entry
    }

    fn pick_segment(&mut self, func_idx: usize) -> Segment {
        let s = self.spec;
        let can_call = func_idx + 1 < s.funcs;
        let call_p = if can_call { s.call_prob } else { 0.0 };
        let choice = self.r_struct.pick_weighted(&[
            (1.0 - s.hammock_prob - s.diamond_prob - s.loop_prob - call_p).max(0.0),
            s.hammock_prob,
            s.diamond_prob,
            s.loop_prob,
            call_p,
        ]);
        [
            Segment::Straight,
            Segment::Hammock,
            Segment::Diamond,
            Segment::Loop,
            Segment::Call,
        ][choice]
    }

    // ---- segment constructors -------------------------------------------

    /// `cur -> next` straight-line code.
    fn seg_straight(&mut self, f: FuncId, cur: BlockId) -> BlockId {
        let next = self.builder.new_block(f);
        self.fill_body(next);
        self.builder
            .set_terminator(cur, Terminator::FallThrough { next });
        next
    }

    /// `cur -(taken, skips)-> join; cur -fall-> then -> join` — the
    /// intra-block-branch generator. `then` is deliberately short so the
    /// taken target often lands in the same cache block.
    fn seg_hammock(&mut self, f: FuncId, cur: BlockId) -> BlockId {
        let then_blk = self.builder.new_block(f);
        let join = self.builder.new_block(f);
        let (lo, hi) = self.spec.hammock_len;
        let len = self.r_struct.range_usize(lo, hi + 1);
        for _ in 0..len {
            let inst = self.body_inst();
            self.builder.push_inst(then_blk, inst);
        }
        self.insts_emitted += len;
        self.builder
            .set_terminator(then_blk, Terminator::FallThrough { next: join });
        self.fill_body(join);
        let srcs = self.branch_srcs();
        self.builder.set_cond_branch(cur, srcs, join, then_blk);
        let model = self.sample_branch_model();
        self.models.push(model);
        join
    }

    /// `cur -taken-> else; cur -fall-> then; both -> join`.
    fn seg_diamond(&mut self, f: FuncId, cur: BlockId) -> BlockId {
        let then_blk = self.builder.new_block(f);
        let else_blk = self.builder.new_block(f);
        let join = self.builder.new_block(f);
        self.fill_body(then_blk);
        self.fill_body(else_blk);
        self.fill_body(join);
        self.builder
            .set_terminator(then_blk, Terminator::Jump { target: join });
        self.builder
            .set_terminator(else_blk, Terminator::FallThrough { next: join });
        let srcs = self.branch_srcs();
        self.builder.set_cond_branch(cur, srcs, else_blk, then_blk);
        let model = self.sample_branch_model();
        self.models.push(model);
        join
    }

    /// `cur -> head -> body... -> tail -(backedge)-> head; tail -fall-> exit`.
    fn seg_loop(&mut self, f: FuncId, cur: BlockId) -> BlockId {
        let head = self.builder.new_block(f);
        self.fill_body(head);
        self.builder
            .set_terminator(cur, Terminator::FallThrough { next: head });
        let (lo, hi) = self.spec.loop_body_blocks;
        let nbody = self.r_struct.range_usize(lo, hi + 1);
        let mut tail = head;
        // Loop bodies carry the same conditional shapes as straight-line
        // code; since loops dominate dynamic execution, this is what makes
        // hammock branches (and hence intra-block taken branches) frequent
        // in the *dynamic* stream, as Table 2 requires. Bodies also respect
        // a minimum size so backedges are not trivially intra-block.
        let s = self.spec;
        let inner = s.hammock_prob + s.diamond_prob;
        let start = self.insts_emitted;
        let mut segs = 1usize; // the head counts
        while segs < nbody || self.insts_emitted - start + s.block_len.0 < s.min_loop_insts {
            tail = if inner > 0.0 && self.r_struct.chance(inner) {
                if self.r_struct.chance(s.hammock_prob / inner) {
                    self.seg_hammock(f, tail)
                } else {
                    self.seg_diamond(f, tail)
                }
            } else {
                self.seg_straight(f, tail)
            };
            segs += 1;
            if segs > 64 {
                break; // safety bound; never hit for sane specs
            }
        }
        let exit = self.builder.new_block(f);
        self.fill_body(exit);
        let srcs = self.branch_srcs();
        self.builder.set_cond_branch(tail, srcs, head, exit);
        // Perturb the mean slightly so loops differ; a spec-controlled
        // fraction iterate a fixed number of times (predictable exits).
        let mean = (self.spec.mean_trips * (0.6 + 0.8 * self.r_prob.next_f64())).max(1.5);
        let model = if self.r_prob.chance(self.spec.fixed_loop_prob) {
            BranchModel::FixedLoop {
                trips: mean.round().max(2.0) as u64,
            }
        } else {
            BranchModel::Loop { mean_trips: mean }
        };
        self.models.push(model);
        exit
    }

    /// `cur -call-> funcs[j]; resume at next`. Callers pick `j > idx`, so
    /// the call graph is a DAG (no recursion).
    fn seg_call(
        &mut self,
        f: FuncId,
        cur: BlockId,
        j: usize,
        funcs: &[FuncId],
        entries: &mut [Option<BlockId>],
    ) -> BlockId {
        // The callee's entry may not exist yet; generate ahead.
        if entries[j].is_none() {
            let e = self.build_func(funcs[j], j, funcs, entries);
            entries[j] = Some(e);
        }
        let callee = entries[j].expect("callee generated");
        let next = self.builder.new_block(f);
        self.fill_body(next);
        self.builder.set_terminator(
            cur,
            Terminator::Call {
                callee,
                return_to: next,
            },
        );
        next
    }

    // ---- instruction bodies ---------------------------------------------

    fn fill_body(&mut self, block: BlockId) {
        let (lo, hi) = self.spec.block_len;
        let len = self.r_struct.range_usize(lo, hi + 1);
        for _ in 0..len {
            let inst = self.body_inst();
            self.builder.push_inst(block, inst);
        }
        self.insts_emitted += len;
    }

    fn body_inst(&mut self) -> Inst {
        let s = self.spec;
        let roll = self.r_mix.next_f64();
        if roll < s.fp_ratio {
            let op = if self.r_mix.chance(0.5) {
                OpClass::FpAdd
            } else {
                OpClass::FpMul
            };
            let dest = self.alloc_fp();
            let srcs = [self.pick_fp(), self.pick_fp()];
            Inst::new(op, Some(dest), srcs)
        } else if roll < s.fp_ratio + s.mem_ratio {
            if self.r_mix.chance(0.6) {
                // Load: FP codes load into FP registers about half the time.
                let to_fp = s.fp_ratio > 0.2 && self.r_mix.chance(0.5);
                let dest = if to_fp {
                    self.alloc_fp()
                } else {
                    self.alloc_int()
                };
                let addr = self.pick_int();
                Inst::new(OpClass::Load, Some(dest), [addr, None])
                    .with_imm(self.r_mix.range_u64(0, 32) as i8)
            } else {
                let data = if s.fp_ratio > 0.2 && self.r_mix.chance(0.5) {
                    self.pick_fp()
                } else {
                    self.pick_int()
                };
                let addr = self.pick_int();
                Inst::new(OpClass::Store, None, [data, addr])
                    .with_imm(self.r_mix.range_u64(0, 32) as i8)
            }
        } else {
            let op = if self.r_mix.chance(0.1) {
                OpClass::IntMul
            } else {
                OpClass::IntAlu
            };
            let dest = self.alloc_int();
            let srcs = [
                self.pick_int(),
                if self.r_mix.chance(0.5) {
                    self.pick_int()
                } else {
                    None
                },
            ];
            Inst::new(op, Some(dest), srcs)
        }
    }

    /// Samples a branch bias. Real branch biases are strongly bimodal —
    /// most branches go one way almost always, which is what makes 2-bit
    /// counters effective — so 75% of branches land within 0.12 of the range
    /// edges and only 25% are genuinely unpredictable mid-range branches.
    fn sample_taken_prob(&mut self) -> f64 {
        let (lo, hi) = self.spec.taken_prob;
        let u = self.r_prob.next_f64();
        let p = if self.r_prob.chance(0.75) {
            // Strongly biased: within [0.03, 0.15] of an extreme.
            if self.r_prob.chance(0.5) {
                0.03 + 0.12 * u
            } else {
                0.97 - 0.12 * u
            }
        } else {
            lo + (hi - lo) * u
        };
        p.clamp(0.02, 0.98)
    }

    /// Samples a non-loop branch model: usually a biased coin, sometimes a
    /// correlated repeating pattern whose density matches the sampled bias
    /// (so Table 2's taken-rate calibration is unaffected).
    fn sample_branch_model(&mut self) -> BranchModel {
        let p = self.sample_taken_prob();
        if !self.r_prob.chance(self.spec.pattern_prob) {
            return BranchModel::Bernoulli(p);
        }
        let len = self.r_prob.range_u64(3, 13) as u8;
        let ones = ((p * f64::from(len)).round() as u32).clamp(0, u32::from(len));
        // Distribute `ones` taken outcomes across the pattern.
        let mut bits = 0u32;
        let mut placed = 0;
        let mut idx: Vec<u32> = (0..u32::from(len)).collect();
        // Deterministic shuffle.
        for i in (1..idx.len()).rev() {
            let j = self.r_prob.range_usize(0, i + 1);
            idx.swap(i, j);
        }
        for &i in idx.iter().take(ones as usize) {
            bits |= 1 << i;
            placed += 1;
        }
        debug_assert_eq!(placed, ones);
        let noise = 0.01 + 0.07 * self.r_prob.next_f64();
        BranchModel::Pattern { bits, len, noise }
    }

    fn branch_srcs(&mut self) -> [Option<Reg>; 2] {
        [
            self.pick_int(),
            if self.r_mix.chance(0.3) {
                self.pick_int()
            } else {
                None
            },
        ]
    }

    /// Allocates a fresh integer destination register (r1..r24; r31 is the
    /// link register, r25..r30 are left for "globals" picked occasionally).
    fn alloc_int(&mut self) -> Reg {
        self.next_int = if self.next_int >= 24 {
            1
        } else {
            self.next_int + 1
        };
        let r = self.next_int;
        self.recent_int.push(r);
        if self.recent_int.len() > self.spec.dep_locality {
            self.recent_int.remove(0);
        }
        Reg::int(r)
    }

    fn alloc_fp(&mut self) -> Reg {
        self.next_fp = if self.next_fp >= 24 {
            0
        } else {
            self.next_fp + 1
        };
        let r = self.next_fp;
        self.recent_fp.push(r);
        if self.recent_fp.len() > self.spec.dep_locality {
            self.recent_fp.remove(0);
        }
        Reg::fp(r)
    }

    fn pick_int(&mut self) -> Option<Reg> {
        if self.r_mix.chance(0.1) {
            // A long-lived "global" register.
            return Some(Reg::int(25 + self.r_mix.range_u64(0, 6) as u8));
        }
        let r = *self.r_mix.pick(&self.recent_int);
        Some(Reg::int(r))
    }

    fn pick_fp(&mut self) -> Option<Reg> {
        let r = *self.r_mix.pick(&self.recent_fp);
        Some(Reg::fp(r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::Terminator as T;

    fn small_spec() -> WorkloadSpec {
        let mut s = WorkloadSpec::base_int("unit", 42);
        s.funcs = 3;
        s.segments_per_func = (3, 6);
        s
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Workload::generate(small_spec());
        let b = Workload::generate(small_spec());
        assert_eq!(a.program, b.program);
        assert_eq!(a.behaviors, b.behaviors);
    }

    #[test]
    fn different_seeds_differ() {
        let mut s2 = small_spec();
        s2.seed = 43;
        let a = Workload::generate(small_spec());
        let b = Workload::generate(s2);
        assert_ne!(a.program, b.program);
    }

    #[test]
    fn every_branch_has_a_model() {
        let w = Workload::generate(small_spec());
        assert_eq!(w.program.num_branches() as usize, w.behaviors.len());
        assert!(
            !w.behaviors.is_empty(),
            "int workload must contain branches"
        );
    }

    #[test]
    fn main_halts_and_others_return() {
        let w = Workload::generate(small_spec());
        let mut halts = 0;
        let mut returns = 0;
        for b in w.program.blocks() {
            match b.terminator {
                T::Halt => halts += 1,
                T::Return => returns += 1,
                _ => {}
            }
        }
        assert_eq!(halts, 1, "exactly one halt (end of main)");
        assert!(returns >= 1, "non-main functions must return");
    }

    #[test]
    fn fp_spec_has_loops() {
        let w = Workload::generate(WorkloadSpec::base_fp("fp-unit", 7));
        let loops = w.behaviors.len();
        assert!(loops > 0);
        let any_loop = (0..w.behaviors.len()).any(|i| {
            matches!(
                w.behaviors.model(fetchmech_isa::BranchId(i as u32)),
                BranchModel::Loop { .. }
            )
        });
        assert!(any_loop, "fp workload must contain loop branches");
    }

    #[test]
    fn fp_spec_contains_fp_ops() {
        let w = Workload::generate(WorkloadSpec::base_fp("fp-unit", 7));
        let fp_insts = w
            .program
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| i.op.is_fp())
            .count();
        assert!(fp_insts > 0);
    }

    #[test]
    fn int_spec_is_mostly_int() {
        let w = Workload::generate(small_spec());
        let (fp, total) = w
            .program
            .blocks()
            .iter()
            .flat_map(|b| &b.insts)
            .fold((0usize, 0usize), |(fp, tot), i| {
                (fp + usize::from(i.op.is_fp()), tot + 1)
            });
        assert!(total > 50);
        assert!(
            (fp as f64) < 0.1 * total as f64,
            "{fp}/{total} fp ops in int code"
        );
    }

    #[test]
    fn program_sizes_are_reasonable() {
        for spec in [
            WorkloadSpec::base_int("i", 1),
            WorkloadSpec::base_fp("f", 2),
        ] {
            let w = Workload::generate(spec);
            let n = w.program.static_inst_upper_bound();
            assert!(n > 100, "{} too small: {n}", w.spec.name);
            assert!(n < 100_000, "{} too large: {n}", w.spec.name);
        }
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn overfull_segment_probs_panic() {
        let mut s = small_spec();
        s.hammock_prob = 0.6;
        s.diamond_prob = 0.3;
        s.loop_prob = 0.3;
        let _ = Workload::generate(s);
    }
}
