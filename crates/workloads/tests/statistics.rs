//! Statistical properties of the workload suite: behaviour models hit their
//! analytic taken fractions, inputs correlate (the §4 precondition), and the
//! suite's dynamic characteristics stay inside the bands the experiments
//! assume.

use fetchmech_isa::rng::Pcg64;
use fetchmech_isa::{BranchId, Layout, LayoutOptions, OpClass, TraceStats};
use fetchmech_workloads::{suite, BehaviorState, BranchModel, InputId};
use proptest::prelude::*;

proptest! {
    /// Observed taken rates match `BranchModel::taken_fraction` for every
    /// model family.
    #[test]
    fn taken_fraction_is_honest(
        p in 0.02f64..0.98,
        trips in 2u64..40,
        bits in any::<u32>(),
        len in 3u8..24,
        noise in 0.0f64..0.2,
        seed in 1u64..10_000,
    ) {
        let models = [
            BranchModel::Bernoulli(p),
            BranchModel::Loop { mean_trips: trips as f64 },
            BranchModel::FixedLoop { trips },
            BranchModel::Pattern { bits, len, noise },
        ];
        let mut rng = Pcg64::new(seed);
        for (i, model) in models.into_iter().enumerate() {
            let mut st = BehaviorState::new(1);
            let n = 60_000;
            let taken = (0..n).filter(|_| st.decide(BranchId(0), model, &mut rng)).count();
            let observed = taken as f64 / n as f64;
            let expect = model.taken_fraction();
            prop_assert!(
                (observed - expect).abs() < 0.03,
                "model #{i}: observed {observed:.3} vs analytic {expect:.3}"
            );
        }
    }
}

#[test]
fn profile_inputs_predict_the_test_input() {
    // The §4 methodology requires training inputs to be *predictive* of the
    // held-out input: per-branch taken rates must correlate strongly.
    for name in ["compress", "gcc", "tomcatv"] {
        let w = suite::benchmark(name).expect("known");
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let rates = |input: InputId| -> Vec<(u64, u64)> {
            let mut taken = vec![0u64; w.program.num_branches() as usize];
            let mut total = vec![0u64; w.program.num_branches() as usize];
            for i in w.executor(&layout, input, 60_000) {
                if i.op == OpClass::CondBranch {
                    let id = i.ctrl.expect("ctrl").branch_id.expect("id").0 as usize;
                    total[id] += 1;
                    taken[id] += u64::from(i.ctrl.expect("ctrl").taken);
                }
            }
            taken.into_iter().zip(total).collect()
        };
        let profile = rates(InputId(0));
        let test = rates(InputId::TEST);
        let mut agree = 0;
        let mut considered = 0;
        for (p, t) in profile.iter().zip(&test) {
            if p.1 >= 50 && t.1 >= 50 {
                considered += 1;
                let pp = p.0 as f64 / p.1 as f64;
                let tt = t.0 as f64 / t.1 as f64;
                // The *bias direction* must agree for profile-driven layout
                // to work.
                if (pp >= 0.5) == (tt >= 0.5) || (pp - tt).abs() < 0.15 {
                    agree += 1;
                }
            }
        }
        assert!(
            considered >= 10,
            "{name}: too few hot branches ({considered})"
        );
        assert!(
            agree as f64 >= 0.9 * considered as f64,
            "{name}: only {agree}/{considered} branches agree between inputs"
        );
    }
}

#[test]
fn suite_dynamic_characteristics_are_in_band() {
    // The experiments assume integer codes are branchier with shorter runs
    // than FP codes; pin the bands so workload edits cannot silently drift.
    let mut int_runs = Vec::new();
    let mut fp_runs = Vec::new();
    for w in suite::full_suite() {
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let mut stats = TraceStats::new();
        for i in w.executor(&layout, InputId::TEST, 60_000) {
            stats.observe(&i, 16);
        }
        let run = stats.insts as f64 / stats.taken_controls.max(1) as f64;
        match w.spec.class {
            fetchmech_workloads::WorkloadClass::Int => int_runs.push((w.spec.name, run)),
            fetchmech_workloads::WorkloadClass::Fp => fp_runs.push((w.spec.name, run)),
        }
    }
    let mean = |v: &[(&str, f64)]| v.iter().map(|x| x.1).sum::<f64>() / v.len() as f64;
    let int_mean = mean(&int_runs);
    let fp_mean = mean(&fp_runs);
    assert!(
        int_mean > 6.0 && int_mean < 25.0,
        "integer mean run length {int_mean} out of band: {int_runs:?}"
    );
    assert!(
        fp_mean > int_mean,
        "fp mean run {fp_mean} must exceed integer {int_mean}"
    );
    // The paper: "typical length of instruction runs between branches is
    // approximately four to six instructions" — ours are a bit longer but
    // the same order; pin the floor so nobody regresses to branchless code.
    for (name, run) in &int_runs {
        assert!(*run < 40.0, "{name}: run length {run} looks branchless");
    }
}

#[test]
fn every_benchmark_is_exercised_by_every_input() {
    for w in suite::full_suite() {
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        for input in InputId::PROFILE.into_iter().chain([InputId::TEST]) {
            let n = w.executor(&layout, input, 500).count();
            assert_eq!(n, 500, "{} input {input:?}", w.spec.name);
        }
    }
}

#[test]
fn generated_traces_serialize_and_replay() {
    use fetchmech_isa::{read_trace, write_trace};
    let w = suite::benchmark("espresso").expect("known");
    let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
    let trace: Vec<_> = w.executor(&layout, InputId::TEST, 8_000).collect();
    let mut buf = Vec::new();
    write_trace(&mut buf, &trace).expect("write");
    let back = read_trace(buf.as_slice()).expect("read");
    assert_eq!(back, trace, "serialized trace must replay identically");
    // ~34 bytes per record: the format stays compact.
    assert!(
        buf.len() < trace.len() * 40,
        "{} bytes for {} records",
        buf.len(),
        trace.len()
    );
}
