//! Mutation tests for the pass-pipeline translation validator: seed one
//! defect into a genuine `optimize` result and assert the intended
//! `optverify` rule catches it (the per-rule counterpart of the CLI's
//! `fetchmech-lint opt --self-test`).
//!
//! These tests corrupt pipeline artifacts through the public mutators, so
//! they must NOT install the debug hooks (the optimize hook would reject
//! the corrupted result at construction instead of letting the explicit
//! checks report it).

use std::collections::HashSet;

use fetchmech_analysis::{
    check_app_dynamic, check_application, check_opt_static, check_ssa, Diagnostic, DiagnosticSink,
    Severity,
};
use fetchmech_compiler::{
    build_ssa, optimize, LvnRewrite, OptimizeConfig, Optimized, PassEdit, PassKind, Profile,
};
use fetchmech_isa::{BlockId, CfgView, Dominators, Inst, Terminator};
use fetchmech_workloads::{suite, InputId, Workload};

const INSTS: u64 = 20_000;

fn pipeline(name: &str) -> (Workload, Profile, Optimized) {
    let w = suite::benchmark(name).expect("known benchmark");
    let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
    let optimized = optimize(
        &w.program,
        &profile,
        &PassKind::ALL,
        &OptimizeConfig::default(),
    );
    (w, profile, optimized)
}

fn rules(diags: &[Diagnostic]) -> HashSet<&'static str> {
    diags.iter().map(|d| d.rule_id).collect()
}

/// Asserts `rule` fired at Error severity (other collateral rules may fire
/// too — one seeded defect can violate several invariants at once).
fn assert_fires(diags: &[Diagnostic], rule: &str) {
    assert!(
        diags
            .iter()
            .any(|d| d.rule_id == rule && d.severity == Severity::Error),
        "expected {rule} to fire; got {:?}",
        rules(diags)
    );
}

/// Index of the first application of `pass` in the pipeline.
fn app_index(optimized: &Optimized, pass: PassKind) -> usize {
    optimized
        .applications
        .iter()
        .position(|a| a.pass == pass)
        .unwrap_or_else(|| panic!("{pass} ran"))
}

fn static_diags(w: &Workload, profile: &Profile, optimized: &Optimized) -> Vec<Diagnostic> {
    let mut sink = DiagnosticSink::new();
    check_opt_static(&w.program, optimized, Some(profile), &mut sink);
    sink.into_diagnostics()
}

// ----------------------------------------------------------------- baseline

#[test]
fn baseline_pipeline_is_clean() {
    let (w, profile, optimized) = pipeline("compress");
    let diags = static_diags(&w, &profile, &optimized);
    assert!(diags.is_empty(), "clean pipeline flagged: {diags:?}");
}

// ----------------------------------------------------------------- opt.shape

#[test]
fn truncated_rel_block_map_trips_shape() {
    let (w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Superblock);
    optimized.applications[i].rel_block.pop();
    assert_fires(&static_diags(&w, &profile, &optimized), "opt.shape");
}

// -------------------------------------------------------- opt.body-preserved

#[test]
fn undeclared_extra_instruction_trips_body_preserved() {
    let (w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Straighten);
    let app = &mut optimized.applications[i];
    let mut edit = app.after.edit();
    edit.insts_mut(BlockId(0)).push(Inst::nop());
    app.after = edit.finish().expect("still structurally valid");
    // Later applications no longer chain, but the body rule must fire on
    // the corrupted application itself.
    assert_fires(
        &static_diags(&w, &profile, &optimized),
        "opt.body-preserved",
    );
}

// -------------------------------------------------------- opt.lvn-available

#[test]
fn corrupted_lvn_rewrite_trips_lvn_available() {
    let (w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Lvn);
    let app = &mut optimized.applications[i];
    let PassEdit::Lvn { rewrites } = &app.edit else {
        panic!("lvn edit");
    };
    assert!(!rewrites.is_empty(), "compress has LVN rewrites");
    // Claim the copy reads a register nothing in scope holds the value in.
    let mut rewrites: Vec<LvnRewrite> = rewrites.clone();
    let r = &mut rewrites[0];
    let mut after = r.after;
    after.srcs[0] = r.after.dest; // copy from its own (pre-write) dest
    r.after = after;
    // Patch the after program to match the bogus rewrite so only the
    // availability proof (not the body diff) can catch it.
    let mut edit = app.after.edit();
    edit.insts_mut(r.block)[r.inst] = after;
    app.after = edit.finish().expect("still structurally valid");
    let (block, inst) = (r.block, r.inst);
    app.edit = PassEdit::Lvn { rewrites };
    let mut sink = DiagnosticSink::new();
    check_application(&optimized.applications[i], &profile, &mut sink);
    let diags = sink.into_diagnostics();
    assert_fires(&diags, "opt.lvn-available");
    let _ = (w, block, inst);
}

// ------------------------------------------------------------- opt.dce-dead

#[test]
fn bogus_declared_removal_trips_dce_dead() {
    let (_w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Dce);
    let app = &mut optimized.applications[i];
    let PassEdit::Dce { removed, rounds } = &app.edit else {
        panic!("dce edit");
    };
    let mut removed = removed.clone();
    // Declare a removal DCE never performed (the dead-write closure cannot
    // contain it, and the after program still has the instruction).
    let keep = app
        .before
        .blocks()
        .iter()
        .find(|b| !b.insts.is_empty())
        .expect("some body instruction");
    removed.push(fetchmech_compiler::DeadSite {
        block: keep.id,
        inst: 0,
        reg: keep.insts[0].dest.unwrap_or(fetchmech_isa::Reg::int(1)),
    });
    removed.sort_by_key(|s| (s.block.0, s.inst));
    app.edit = PassEdit::Dce {
        removed,
        rounds: *rounds,
    };
    let mut sink = DiagnosticSink::new();
    check_application(&optimized.applications[i], &profile, &mut sink);
    assert_fires(&sink.into_diagnostics(), "opt.dce-dead");
}

#[test]
fn live_write_removed_from_after_trips_dce_dead() {
    let (_w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Dce);
    let app = &mut optimized.applications[i];
    // Actually delete a live instruction from the after program AND declare
    // it: the body diff is consistent, but the removal is not in the
    // dead-write closure.
    let PassEdit::Dce { removed, rounds } = &app.edit else {
        panic!("dce edit");
    };
    let declared: HashSet<(u32, usize)> = removed.iter().map(|s| (s.block.0, s.inst)).collect();
    let (blk, idx, inst) = app
        .before
        .blocks()
        .iter()
        .flat_map(|b| {
            b.insts
                .iter()
                .enumerate()
                .map(move |(j, inst)| (b.id, j, *inst))
        })
        .find(|&(b, j, inst)| inst.dest.is_some() && !declared.contains(&(b.0, j)))
        .expect("a surviving write exists");
    let mut removed = removed.clone();
    removed.push(fetchmech_compiler::DeadSite {
        block: blk,
        inst: idx,
        reg: inst.dest.expect("write"),
    });
    removed.sort_by_key(|s| (s.block.0, s.inst));
    // Rebuild the after body of `blk` from the before body minus all
    // declared removals in that block.
    let gone: HashSet<usize> = removed
        .iter()
        .filter(|s| s.block == blk)
        .map(|s| s.inst)
        .collect();
    let body: Vec<Inst> = app
        .before
        .block(blk)
        .insts
        .iter()
        .enumerate()
        .filter(|(j, _)| !gone.contains(j))
        .map(|(_, inst)| *inst)
        .collect();
    let mut edit = app.after.edit();
    *edit.insts_mut(blk) = body;
    app.after = edit.finish().expect("still structurally valid");
    app.edit = PassEdit::Dce {
        removed,
        rounds: *rounds,
    };
    let mut sink = DiagnosticSink::new();
    check_application(&optimized.applications[i], &profile, &mut sink);
    assert_fires(&sink.into_diagnostics(), "opt.dce-dead");
}

// --------------------------------------------------------- opt.origin-edges

#[test]
fn retargeted_duplicate_edge_trips_origin_edges() {
    let (_w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Superblock);
    let app = &mut optimized.applications[i];
    let PassEdit::Superblock { duplicated, .. } = &app.edit else {
        panic!("superblock edit");
    };
    assert!(!duplicated.is_empty(), "compress duplicates blocks");
    // Point a duplicate's fall-through somewhere its origin never went.
    let (victim, hijack) = app
        .after
        .blocks()
        .iter()
        .filter_map(|b| match b.terminator {
            Terminator::FallThrough { next } => Some((b.id, next)),
            _ => None,
        })
        .find_map(|(id, next)| {
            let func = app.after.block(id).func;
            app.after
                .blocks()
                .iter()
                .find(|c| c.func == func && c.id != next && c.id != id)
                .map(|c| (id, c.id))
        })
        .expect("a retargetable fall-through exists");
    let mut edit = app.after.edit();
    edit.set_terminator(victim, Terminator::FallThrough { next: hijack });
    app.after = edit.finish().expect("still structurally valid");
    let mut sink = DiagnosticSink::new();
    check_application(&optimized.applications[i], &profile, &mut sink);
    assert_fires(&sink.into_diagnostics(), "opt.origin-edges");
}

#[test]
fn inverted_flag_without_edge_swap_trips_origin_edges() {
    let (_w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Straighten);
    let app = &mut optimized.applications[i];
    let victim = app
        .after
        .blocks()
        .iter()
        .find_map(|b| match b.terminator {
            Terminator::CondBranch { .. } => Some(b.id),
            _ => None,
        })
        .expect("a conditional exists");
    let Terminator::CondBranch {
        id,
        srcs,
        taken,
        fall,
        inverted,
    } = app.after.block(victim).terminator
    else {
        unreachable!()
    };
    let mut edit = app.after.edit();
    edit.set_terminator(
        victim,
        Terminator::CondBranch {
            id,
            srcs,
            taken,
            fall,
            inverted: !inverted,
        },
    );
    app.after = edit.finish().expect("still structurally valid");
    let mut sink = DiagnosticSink::new();
    check_application(&optimized.applications[i], &profile, &mut sink);
    assert_fires(&sink.into_diagnostics(), "opt.origin-edges");
}

// -------------------------------------------------------- opt.flow-conserved

#[test]
fn dropped_hot_edge_trips_flow_conserved() {
    let (_w, profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Straighten);
    let app = &mut optimized.applications[i];
    // Fold a hot conditional's fall edge onto its taken edge: the fall-side
    // flow has nowhere to map.
    let prof_before = Profile::from_raw(
        app.block_origin_before
            .iter()
            .map(|&o| profile.block_count(o))
            .collect(),
        app.branch_origin_before
            .iter()
            .map(|&o| profile.branch_counts(o).0)
            .collect(),
        app.branch_origin_before
            .iter()
            .map(|&o| profile.branch_counts(o).1)
            .collect(),
    );
    let victim = app
        .after
        .blocks()
        .iter()
        .filter_map(|b| match b.terminator {
            Terminator::CondBranch {
                id, taken, fall, ..
            } if taken != fall => {
                let (t, n) = prof_before.branch_counts(app.rel_branch[id.0 as usize]);
                (t > 0 && n > t).then_some((b.id, n))
            }
            _ => None,
        })
        .max_by_key(|&(_, n)| n)
        .map(|(id, _)| id)
        .expect("a two-sided executed conditional exists");
    let Terminator::CondBranch {
        id,
        srcs,
        taken,
        inverted,
        ..
    } = app.after.block(victim).terminator
    else {
        unreachable!()
    };
    let mut edit = app.after.edit();
    edit.set_terminator(
        victim,
        Terminator::CondBranch {
            id,
            srcs,
            taken,
            fall: taken,
            inverted,
        },
    );
    app.after = edit.finish().expect("still structurally valid");
    let mut sink = DiagnosticSink::new();
    check_application(&optimized.applications[i], &profile, &mut sink);
    assert_fires(&sink.into_diagnostics(), "opt.flow-conserved");
}

// ------------------------------------------------------------ ssa.phi-arity

#[test]
fn pruned_phi_arm_trips_phi_arity() {
    let w = suite::benchmark("compress").expect("known benchmark");
    let view = CfgView::local(&w.program);
    let dom = Dominators::compute(&w.program, &view);
    let mut form = build_ssa(&w.program, &view, &dom);
    let (block, arm) = form
        .phis
        .iter()
        .enumerate()
        .find_map(|(b, phis)| phis.iter().position(|p| p.args.len() >= 2).map(|p| (b, p)))
        .expect("a multi-arm phi exists");
    form.phis[block][arm].args.pop();
    let mut sink = DiagnosticSink::new();
    check_ssa(&w.program, &view, &dom, &form, &mut sink);
    assert_fires(&sink.into_diagnostics(), "ssa.phi-arity");
}

// --------------------------------------------------------- ssa.use-dominated

#[test]
fn hoisted_use_trips_use_dominated() {
    let w = suite::benchmark("compress").expect("known benchmark");
    let view = CfgView::local(&w.program);
    let dom = Dominators::compute(&w.program, &view);
    let mut form = build_ssa(&w.program, &view, &dom);
    // Rewrite the first body use in block 0 to a value defined in a later
    // block that certainly does not dominate it: the last value defined by
    // an instruction in the highest-numbered block with a definition.
    let (src_block, src_inst) = (0..w.program.num_blocks())
        .rev()
        .find_map(|b| {
            let blk = BlockId(b as u32);
            (b > 0 && !w.program.block(blk).insts.is_empty() && !dom.dominates(blk, BlockId(0)))
                .then_some((blk, 0usize))
        })
        .expect("a non-dominating defining block exists");
    let stolen = form.inst_defs[src_block.0 as usize][src_inst].expect("definition");
    let (ub, ui, us) = form
        .inst_uses
        .iter()
        .enumerate()
        .find_map(|(b, insts)| {
            dom.dominates(BlockId(b as u32), src_block).then_some(())?;
            insts
                .iter()
                .enumerate()
                .find_map(|(i, uses)| (!uses.is_empty()).then_some((b, i, 0usize)))
        })
        .expect("a use in a block dominating the theft source");
    form.inst_uses[ub][ui][us] = stolen;
    let mut sink = DiagnosticSink::new();
    check_ssa(&w.program, &view, &dom, &form, &mut sink);
    assert_fires(&sink.into_diagnostics(), "ssa.use-dominated");
}

// ----------------------------------------------------------- opt.trace-equiv

#[test]
fn swapped_branch_origins_trip_trace_equiv() {
    let (w, _profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Superblock);
    let app = &mut optimized.applications[i];
    // Alias two hot original branches to each other's behavior models: the
    // static rules cannot see behavior identity, but the executed stream
    // diverges from the before program's.
    let prof = Profile::collect(&w, &InputId::PROFILE, INSTS);
    let mut hot: Vec<(u64, usize)> = app
        .branch_origin_after
        .iter()
        .enumerate()
        .map(|(idx, &o)| (prof.branch_counts(o).1, idx))
        .filter(|&(n, _)| n > 0)
        .collect();
    hot.sort_by_key(|&(n, _)| std::cmp::Reverse(n));
    let (a, b) = (hot[0].1, hot[1].1);
    assert_ne!(
        app.branch_origin_after[a], app.branch_origin_after[b],
        "distinct origins"
    );
    app.branch_origin_after.swap(a, b);
    let mut sink = DiagnosticSink::new();
    check_app_dynamic(&w, &optimized.applications[i], INSTS, &mut sink);
    assert_fires(&sink.into_diagnostics(), "opt.trace-equiv");
}

#[test]
fn swapped_edges_without_inversion_trip_trace_equiv() {
    let (w, _profile, mut optimized) = pipeline("compress");
    let i = app_index(&optimized, PassKind::Straighten);
    let app = &mut optimized.applications[i];
    // Swap a hot conditional's hardware edges without toggling `inverted`:
    // semantics flip, and the executed after stream takes the wrong side.
    let prof = Profile::collect(&w, &InputId::PROFILE, INSTS);
    let victim = app
        .after
        .blocks()
        .iter()
        .filter_map(|b| match b.terminator {
            Terminator::CondBranch {
                id, taken, fall, ..
            } if taken != fall => {
                let o = app.branch_origin_after[id.0 as usize];
                let (t, n) = prof.branch_counts(o);
                (t > 0 && n > t).then_some((b.id, n))
            }
            _ => None,
        })
        .max_by_key(|&(_, n)| n)
        .map(|(id, _)| id)
        .expect("a two-sided executed conditional exists");
    let Terminator::CondBranch {
        id,
        srcs,
        taken,
        fall,
        inverted,
    } = app.after.block(victim).terminator
    else {
        unreachable!()
    };
    let mut edit = app.after.edit();
    edit.set_terminator(
        victim,
        Terminator::CondBranch {
            id,
            srcs,
            taken: fall,
            fall: taken,
            inverted,
        },
    );
    app.after = edit.finish().expect("still structurally valid");
    let mut sink = DiagnosticSink::new();
    check_app_dynamic(&w, &optimized.applications[i], INSTS, &mut sink);
    assert_fires(&sink.into_diagnostics(), "opt.trace-equiv");
}
