//! Mutation testing for the cycle sanitizer: feed it event streams with one
//! deliberately injected microarchitectural bug each and assert the *named*
//! rule catches it.
//!
//! The sanitizer's value is that divergence between the simulator and the
//! paper's delivery rules cannot pass silently; each test here is one
//! divergence the engine must keep catching. A well-formed stream is checked
//! first — a rule that fires on legal behaviour is as broken as one that
//! misses a bug.

use fetchmech_analysis::sanitize::{
    check_scheme_dominance, DOMINANCE_TOLERANCE, RULE_BANK_CONFLICT, RULE_COLLAPSE,
    RULE_CORE_STATE, RULE_DOMINANCE, RULE_EXACTLY_ONCE, RULE_LINE_PAIR, RULE_MISPREDICT_TAIL,
    RULE_PACKET_ORDER, RULE_PACKET_WIDTH, RULE_PREDICTOR, RULE_REDIRECT_STALL, RULE_SEQ_BOUNDARY,
    RULE_SPEC_DEPTH, RULE_TAKEN_BREAK, RULE_TOTALS,
};
use fetchmech_analysis::{CycleSanitizer, Diagnostic, FetchEnv, SanitizeConfig, Severity};
use fetchmech_bpred::BtbStats;
use fetchmech_isa::{Addr, BranchId, DynCtrl, DynInst, OpClass};
use fetchmech_pipeline::{FetchPacket, FetchedInst, SchemeKind};

/// 4-wide machine, 16-byte (4-instruction) blocks, 2 banks.
fn env(scheme: SchemeKind, track_issue: bool) -> FetchEnv {
    FetchEnv {
        scheme,
        issue_rate: 4,
        block_bytes: 16,
        banks: 2,
        spec_depth: 4,
        fetch_penalty: 2,
        track_issue,
    }
}

fn alu(addr: u64) -> DynInst {
    DynInst::simple(Addr::new(addr), OpClass::IntAlu, None, [None, None])
}

fn nop(addr: u64) -> DynInst {
    DynInst::simple(Addr::new(addr), OpClass::Nop, None, [None, None])
}

fn jmp(addr: u64, target: u64) -> DynInst {
    DynInst {
        addr: Addr::new(addr),
        op: OpClass::Jump,
        dest: None,
        srcs: [None, None],
        next_pc: Addr::new(target),
        ctrl: Some(DynCtrl {
            branch_id: None,
            taken: true,
            target: Addr::new(target),
            link: None,
        }),
    }
}

fn cond(addr: u64, taken: bool, target: u64) -> DynInst {
    DynInst {
        addr: Addr::new(addr),
        op: OpClass::CondBranch,
        dest: None,
        srcs: [None, None],
        next_pc: Addr::new(if taken { target } else { addr + 4 }),
        ctrl: Some(DynCtrl {
            branch_id: Some(BranchId(0)),
            taken,
            target: Addr::new(target),
            link: None,
        }),
    }
}

fn packet(insts: &[DynInst]) -> FetchPacket {
    FetchPacket {
        insts: insts
            .iter()
            .map(|&inst| FetchedInst {
                inst,
                mispredicted: false,
            })
            .collect(),
    }
}

/// Like [`packet`] but the last instruction carries the mispredict flag.
fn packet_mis(insts: &[DynInst]) -> FetchPacket {
    let mut p = packet(insts);
    p.insts.last_mut().expect("non-empty packet").mispredicted = true;
    p
}

/// Cumulative BTB statistics consistent with `controls` transfers so far.
fn btb(controls: u64) -> BtbStats {
    BtbStats {
        lookups: controls,
        hits: controls,
        updates: controls,
        allocations: 0,
        evictions: 0,
    }
}

fn assert_fires(diags: &[Diagnostic], rule: &str) {
    assert!(
        diags
            .iter()
            .any(|d| d.rule_id == rule && d.severity == Severity::Error),
        "expected {rule} to fire, got: {diags:#?}"
    );
}

// ---------------------------------------------------------------------------
// Baseline: a legal multi-cycle stream produces zero findings.
// ---------------------------------------------------------------------------

#[test]
fn well_formed_stream_is_clean() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, true));
    // Cycle 0: a full-width packet from one block, all issued.
    let p0 = packet(&[alu(0x1000), alu(0x1004), alu(0x1008), alu(0x100c)]);
    san.observe_packet(0, 0, &p0, &btb(0));
    for fi in &p0.insts {
        san.observe_issue(0, fi);
    }
    san.observe_core_state(0, Ok(()));
    // Cycle 1: a mispredicted conditional ends the packet (chained: starts
    // at the previous packet's next_pc).
    let p1 = packet_mis(&[cond(0x1010, true, 0x2000)]);
    san.observe_packet(1, 0, &p1, &btb(1));
    san.observe_issue(1, &p1.insts[0]);
    // Cycles 2-4: fetch stalls (empty packets), the branch executes at
    // cycle 3, delivery legally resumes at 3 + fetch_penalty = 5.
    san.observe_packet(2, 1, &packet(&[]), &btb(1));
    san.observe_resolved(3);
    san.observe_packet(4, 0, &packet(&[]), &btb(1));
    let p2 = packet(&[alu(0x2000), nop(0x2004)]);
    san.observe_packet(5, 0, &p2, &btb(1));
    san.observe_issue(5, &p2.insts[0]);
    san.observe_squash(5, &p2.insts[1]);
    san.observe_core_state(5, Ok(()));
    san.finish(6, 7);
    assert!(
        san.diagnostics().is_empty(),
        "legal stream misreported: {:#?}",
        san.diagnostics()
    );
}

// ---------------------------------------------------------------------------
// Conservation mutations.
// ---------------------------------------------------------------------------

#[test]
fn double_issue_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, true));
    let p = packet(&[alu(0x1000)]);
    san.observe_packet(0, 0, &p, &btb(0));
    san.observe_issue(0, &p.insts[0]);
    san.observe_issue(0, &p.insts[0]); // bug: issued twice
    assert_fires(san.diagnostics(), RULE_EXACTLY_ONCE);
}

#[test]
fn out_of_order_issue_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, true));
    let p = packet(&[alu(0x1000), alu(0x1004)]);
    san.observe_packet(0, 0, &p, &btb(0));
    san.observe_issue(0, &p.insts[1]); // bug: younger instruction first
    assert_fires(san.diagnostics(), RULE_EXACTLY_ONCE);
}

#[test]
fn squashing_a_real_instruction_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, true));
    let p = packet(&[alu(0x1000)]);
    san.observe_packet(0, 0, &p, &btb(0));
    san.observe_squash(0, &p.insts[0]); // bug: only nops may be squashed
    assert_fires(san.diagnostics(), RULE_EXACTLY_ONCE);
}

#[test]
fn lost_instruction_breaks_totals() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, true));
    let p = packet(&[alu(0x1000), alu(0x1004)]);
    san.observe_packet(0, 0, &p, &btb(0));
    san.observe_issue(0, &p.insts[0]);
    san.finish(1, 2); // bug: the second instruction vanished
    assert_fires(san.diagnostics(), RULE_TOTALS);
}

#[test]
fn delivered_count_mismatch_breaks_totals() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, false));
    san.observe_packet(0, 0, &packet(&[alu(0x1000)]), &btb(0));
    san.finish(1, 7); // bug: unit claims 7 delivered, packets summed to 1
    assert_fires(san.diagnostics(), RULE_TOTALS);
}

#[test]
fn over_wide_packet_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    let p = packet(&[
        alu(0x1000),
        alu(0x1004),
        alu(0x1008),
        alu(0x100c),
        alu(0x1010), // bug: 5 instructions on a 4-wide machine
    ]);
    san.observe_packet(0, 0, &p, &btb(0));
    assert_fires(san.diagnostics(), RULE_PACKET_WIDTH);
}

// ---------------------------------------------------------------------------
// Fetch-legality mutations.
// ---------------------------------------------------------------------------

#[test]
fn unchained_packet_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, false));
    // bug: 0x1000's next_pc is 0x1004, not 0x100c (an instruction skipped).
    san.observe_packet(0, 0, &packet(&[alu(0x1000), alu(0x100c)]), &btb(0));
    assert_fires(san.diagnostics(), RULE_PACKET_ORDER);
}

#[test]
fn cross_packet_chain_break_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, false));
    san.observe_packet(0, 0, &packet(&[alu(0x1000)]), &btb(0));
    // bug: previous packet's next_pc was 0x1004 but fetch restarted elsewhere.
    san.observe_packet(1, 0, &packet(&[alu(0x3000)]), &btb(0));
    assert_fires(san.diagnostics(), RULE_PACKET_ORDER);
}

#[test]
fn sequential_block_crossing_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, false));
    // bug: 0x1008..0x1010 spans the 0x1000 and 0x1010 blocks in one cycle.
    san.observe_packet(
        0,
        0,
        &packet(&[alu(0x1008), alu(0x100c), alu(0x1010)]),
        &btb(0),
    );
    assert_fires(san.diagnostics(), RULE_SEQ_BOUNDARY);
}

#[test]
fn interleaved_nonadjacent_pair_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::InterleavedSequential, false));
    // bug: 0x3000 is not the block after 0x1000 (and the scheme cannot
    // follow a taken transfer at all).
    san.observe_packet(0, 0, &packet(&[jmp(0x1000, 0x3000), alu(0x3000)]), &btb(1));
    assert_fires(san.diagnostics(), RULE_SEQ_BOUNDARY);
    assert_fires(san.diagnostics(), RULE_TAKEN_BREAK);
}

#[test]
fn same_bank_pair_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::BankedSequential, false));
    // bug: blocks 0x1000 and 0x2000 both map to bank 0 of 2.
    san.observe_packet(0, 0, &packet(&[jmp(0x1000, 0x2000), alu(0x2000)]), &btb(1));
    assert_fires(san.diagnostics(), RULE_BANK_CONFLICT);
}

#[test]
fn three_block_packet_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::CollapsingBuffer, false));
    // bug: three distinct blocks in one cycle — hardware reads a pair.
    let p = packet(&[jmp(0x1000, 0x1010), jmp(0x1010, 0x1020), alu(0x1020)]);
    san.observe_packet(0, 0, &p, &btb(2));
    assert_fires(san.diagnostics(), RULE_LINE_PAIR);
}

#[test]
fn sequential_delivery_past_taken_transfer_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential, false));
    // bug: intra-block jump, so geometry is legal — but a sequential unit
    // still cannot realign within the cycle.
    san.observe_packet(0, 0, &packet(&[jmp(0x1000, 0x1008), alu(0x1008)]), &btb(1));
    assert_fires(san.diagnostics(), RULE_TAKEN_BREAK);
}

#[test]
fn backward_collapse_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::CollapsingBuffer, false));
    // bug: the collapsing buffer only merges *forward* intra-block targets.
    san.observe_packet(0, 0, &packet(&[jmp(0x1008, 0x1000), alu(0x1000)]), &btb(1));
    assert_fires(san.diagnostics(), RULE_COLLAPSE);
}

#[test]
fn mid_packet_mispredict_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    let mut p = packet(&[cond(0x1000, true, 0x1008), alu(0x1008)]);
    p.insts[0].mispredicted = true; // bug: delivery continued past it
    san.observe_packet(0, 0, &p, &btb(1));
    assert_fires(san.diagnostics(), RULE_MISPREDICT_TAIL);
}

#[test]
fn delivery_while_unresolved_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    san.observe_packet(0, 0, &packet_mis(&[cond(0x1000, true, 0x2000)]), &btb(1));
    // bug: the mispredict never resolved, yet fetch delivered again.
    san.observe_packet(1, 0, &packet(&[alu(0x2000)]), &btb(1));
    assert_fires(san.diagnostics(), RULE_REDIRECT_STALL);
}

#[test]
fn delivery_inside_redirect_penalty_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    san.observe_packet(0, 0, &packet_mis(&[cond(0x1000, true, 0x2000)]), &btb(1));
    san.observe_resolved(3);
    // bug: resolution at 3 plus a 2-cycle penalty allows cycle 5 at the
    // earliest; delivering at 4 ignores the redirect latency.
    san.observe_packet(4, 0, &packet(&[alu(0x2000)]), &btb(1));
    assert_fires(san.diagnostics(), RULE_REDIRECT_STALL);
}

#[test]
fn spurious_resolution_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    san.observe_resolved(0); // bug: nothing was outstanding
    assert_fires(san.diagnostics(), RULE_REDIRECT_STALL);
}

#[test]
fn fetch_past_speculation_depth_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    // bug: 5 unresolved predicted branches on a spec_depth-4 machine.
    san.observe_packet(0, 5, &packet(&[alu(0x1000)]), &btb(0));
    assert_fires(san.diagnostics(), RULE_SPEC_DEPTH);
}

// ---------------------------------------------------------------------------
// Predictor and core mutations.
// ---------------------------------------------------------------------------

#[test]
fn unconsulted_btb_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    // bug: a control transfer was delivered but the BTB saw no traffic.
    san.observe_packet(0, 0, &packet(&[jmp(0x1000, 0x2000)]), &btb(0));
    assert_fires(san.diagnostics(), RULE_PREDICTOR);
}

#[test]
fn phantom_btb_traffic_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, false));
    // bug: the BTB was consulted twice for a packet with no controls.
    san.observe_packet(0, 0, &packet(&[alu(0x1000)]), &btb(2));
    assert_fires(san.diagnostics(), RULE_PREDICTOR);
}

#[test]
fn core_audit_failure_is_caught() {
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect, true));
    san.observe_core_state(0, Err("free list lost a register".to_string()));
    assert_fires(san.diagnostics(), RULE_CORE_STATE);
}

#[test]
fn dominance_inversion_is_caught() {
    // bug: a sequential fetch unit out-issuing the perfect upper bound.
    let diags = check_scheme_dominance(
        "mutant",
        &[
            (SchemeKind::Perfect, 2.0),
            (SchemeKind::CollapsingBuffer, 2.4),
            (SchemeKind::Sequential, 3.0),
        ],
        DOMINANCE_TOLERANCE,
    );
    assert_fires(&diags, RULE_DOMINANCE);
}

// ---------------------------------------------------------------------------
// Reporting discipline.
// ---------------------------------------------------------------------------

#[test]
fn report_cap_bounds_a_systematically_broken_run() {
    let cfg = SanitizeConfig::new();
    let cap = cfg.max_reports_per_rule;
    let mut san = CycleSanitizer::with_config(env(SchemeKind::Sequential, false), cfg);
    // A run broken the same way every cycle must not flood the sink. Chain
    // the over-wide packets legally so only packet-width fires.
    let mut base = 0x1000u64;
    for cycle in 0..(cap as u64 + 12) {
        let p = packet(&[
            alu(base),
            alu(base + 4),
            alu(base + 8),
            alu(base + 12),
            nop(base + 16),
        ]);
        san.observe_packet(cycle, 0, &p, &btb(0));
        base += 20;
    }
    let width_reports = san
        .diagnostics()
        .iter()
        .filter(|d| d.rule_id == RULE_PACKET_WIDTH)
        .count();
    assert_eq!(width_reports, cap, "{:#?}", san.diagnostics());
}
