//! Mutation tests: corrupt one invariant of a valid artifact and assert the
//! verifier reports exactly the intended rule.
//!
//! Every rule id in the registry has at least one seeded corruption here.
//! These tests must NOT install the debug hooks — they deliberately build
//! malformed IR through the raw escape hatches, and hooked constructors
//! would panic before the passes under test ever ran.

use std::collections::HashSet;

use fetchmech_analysis::{
    verify_layout, verify_profile, verify_program, verify_trace_diff, verify_traces,
    verify_transform, Diagnostic, Severity,
};
use fetchmech_compiler::{reorder, select_traces, Profile, Reordered, Trace, TraceSelectConfig};
use fetchmech_isa::{
    Addr, BlockId, BranchId, CtrlAttr, Inst, Layout, LayoutOptions, OpClass, PadMode, Program,
    Terminator,
};
use fetchmech_workloads::{suite, InputId, Workload};

const BLOCK_BYTES: u64 = 16;

fn workload() -> Workload {
    suite::benchmark("compress").expect("known benchmark")
}

fn profiled() -> (Workload, Profile) {
    let w = workload();
    let p = Profile::collect(&w, &InputId::PROFILE, 20_000);
    (w, p)
}

fn reordered() -> (Workload, Profile, Reordered) {
    let (w, p) = profiled();
    let r = reorder(&w.program, &p, &TraceSelectConfig::default());
    (w, p, r)
}

fn rule_set(diags: &[Diagnostic]) -> HashSet<&'static str> {
    diags.iter().map(|d| d.rule_id).collect()
}

/// Asserts `diags` contains `rule` at the given severity.
fn assert_fires(diags: &[Diagnostic], rule: &str, severity: Severity) {
    assert!(
        diags
            .iter()
            .any(|d| d.rule_id == rule && d.severity == severity),
        "expected {rule} at {severity:?}; got {:?}",
        rule_set(diags)
    );
}

/// Corrupts `program` through its raw parts and verifies it.
fn mutate_program(
    program: &Program,
    f: impl FnOnce(&mut fetchmech_isa::RawProgram),
) -> Vec<Diagnostic> {
    let mut raw = program.clone().into_raw();
    f(&mut raw);
    verify_program(&Program::from_raw(raw))
}

/// Finds a block whose terminator satisfies `pred`.
fn find_block(program: &Program, pred: impl Fn(&Terminator) -> bool) -> BlockId {
    program
        .blocks()
        .iter()
        .find(|b| pred(&b.terminator))
        .map(|b| b.id)
        .expect("workload contains the needed terminator kind")
}

// ---------------------------------------------------------------- ProgramPass

#[test]
fn baseline_program_is_clean() {
    let w = workload();
    let diags = verify_program(&w.program);
    assert!(
        diags.is_empty(),
        "expected clean baseline, got {:?}",
        rule_set(&diags)
    );
}

#[test]
fn mut_block_id_dense() {
    let w = workload();
    let diags = mutate_program(&w.program, |raw| {
        raw.blocks[3].id = BlockId(4);
    });
    assert_fires(&diags, "prog.block-id-dense", Severity::Error);
}

#[test]
fn mut_func_valid_bad_entry() {
    let w = workload();
    let diags = mutate_program(&w.program, |raw| {
        raw.func_entries[0] = BlockId(u32::MAX);
    });
    assert_fires(&diags, "prog.func-valid", Severity::Error);
}

#[test]
fn mut_func_valid_bad_block_func() {
    let w = workload();
    let diags = mutate_program(&w.program, |raw| {
        let nf = raw.func_entries.len() as u32;
        raw.blocks[1].func = fetchmech_isa::FuncId(nf + 7);
    });
    assert_fires(&diags, "prog.func-valid", Severity::Error);
}

#[test]
fn mut_entry_valid() {
    let w = workload();
    let diags = mutate_program(&w.program, |raw| {
        raw.entry = BlockId(raw.blocks.len() as u32 + 10);
    });
    assert_fires(&diags, "prog.entry-valid", Severity::Error);
}

#[test]
fn mut_entry_reachable() {
    let w = workload();
    let diags = mutate_program(&w.program, |raw| {
        // Append a block nothing points at.
        let id = BlockId(raw.blocks.len() as u32);
        raw.blocks.push(fetchmech_isa::Block {
            id,
            func: raw.blocks[0].func,
            insts: vec![Inst::new(OpClass::IntAlu, None, [None, None])],
            terminator: Terminator::Return,
        });
    });
    assert_fires(&diags, "prog.entry-reachable", Severity::Warning);
}

#[test]
fn mut_terminator_total() {
    let w = workload();
    let entry = w.program.entry();
    let entry_func = w.program.block(entry).func;
    let diags = mutate_program(&w.program, |raw| {
        // Replace every Return/Halt of the entry function with a jump back
        // to the entry: control can never leave the function again.
        for b in &mut raw.blocks {
            if b.func == entry_func && matches!(b.terminator, Terminator::Return | Terminator::Halt)
            {
                b.terminator = Terminator::Jump { target: entry };
            }
        }
    });
    assert_fires(&diags, "prog.terminator-total", Severity::Error);
}

#[test]
fn mut_edge_target() {
    let w = workload();
    let jumper = find_block(&w.program, |t| matches!(t, Terminator::FallThrough { .. }));
    let diags = mutate_program(&w.program, |raw| {
        raw.blocks[jumper.0 as usize].terminator = Terminator::FallThrough {
            next: BlockId(9_999),
        };
    });
    assert_fires(&diags, "prog.edge-target", Severity::Error);
}

#[test]
fn mut_edge_in_func() {
    let w = workload();
    // Pick a fall-through block and retarget it into a different function.
    let victim = find_block(&w.program, |t| matches!(t, Terminator::FallThrough { .. }));
    let victim_func = w.program.block(victim).func;
    let foreign = w
        .program
        .blocks()
        .iter()
        .find(|b| b.func != victim_func)
        .map(|b| b.id)
        .expect("multi-function workload");
    let diags = mutate_program(&w.program, |raw| {
        raw.blocks[victim.0 as usize].terminator = Terminator::FallThrough { next: foreign };
    });
    assert_fires(&diags, "prog.edge-in-func", Severity::Error);
}

#[test]
fn mut_branch_id_range() {
    let w = workload();
    let brancher = find_block(&w.program, |t| matches!(t, Terminator::CondBranch { .. }));
    let diags = mutate_program(&w.program, |raw| {
        if let Terminator::CondBranch { id, .. } = &mut raw.blocks[brancher.0 as usize].terminator {
            *id = BranchId(raw.num_branches + 5);
        }
    });
    assert_fires(&diags, "prog.branch-id-range", Severity::Error);
}

#[test]
fn mut_branch_id_unique() {
    let w = workload();
    let branchers: Vec<BlockId> = w
        .program
        .blocks()
        .iter()
        .filter(|b| matches!(b.terminator, Terminator::CondBranch { .. }))
        .map(|b| b.id)
        .collect();
    assert!(branchers.len() >= 2, "need two branches to collide");
    let stolen = match w.program.block(branchers[0]).terminator {
        Terminator::CondBranch { id, .. } => id,
        _ => unreachable!(),
    };
    let diags = mutate_program(&w.program, |raw| {
        if let Terminator::CondBranch { id, .. } =
            &mut raw.blocks[branchers[1].0 as usize].terminator
        {
            *id = stolen;
        }
    });
    assert_fires(&diags, "prog.branch-id-unique", Severity::Error);
}

#[test]
fn mut_branch_id_unused() {
    let w = workload();
    let diags = mutate_program(&w.program, |raw| {
        raw.num_branches += 1;
    });
    assert_fires(&diags, "prog.branch-id-unused", Severity::Error);
}

#[test]
fn mut_call_to_entry() {
    let w = workload();
    let caller = find_block(&w.program, |t| matches!(t, Terminator::Call { .. }));
    let (callee, return_to) = match w.program.block(caller).terminator {
        Terminator::Call { callee, return_to } => (callee, return_to),
        _ => unreachable!(),
    };
    // A non-entry block inside the callee's function.
    let callee_func = w.program.block(callee).func;
    let non_entry = w
        .program
        .blocks()
        .iter()
        .find(|b| b.func == callee_func && b.id != callee)
        .map(|b| b.id)
        .expect("callee function has more than one block");
    let diags = mutate_program(&w.program, |raw| {
        raw.blocks[caller.0 as usize].terminator = Terminator::Call {
            callee: non_entry,
            return_to,
        };
    });
    assert_fires(&diags, "prog.call-to-entry", Severity::Error);
}

#[test]
fn mut_body_no_control() {
    let w = workload();
    let diags = mutate_program(&w.program, |raw| {
        raw.blocks[0].insts.push(Inst {
            op: OpClass::Jump,
            dest: None,
            srcs: [None, None],
            imm: 0,
        });
    });
    assert_fires(&diags, "prog.body-no-control", Severity::Error);
}

// ----------------------------------------------------------------- LayoutPass

fn natural_layout(w: &Workload) -> Layout {
    Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES)).expect("layout")
}

/// Corrupts a layout through its raw parts and verifies it.
fn mutate_layout(
    w: &Workload,
    layout: &Layout,
    f: impl FnOnce(&mut fetchmech_isa::RawLayout),
) -> Vec<Diagnostic> {
    let mut raw = layout.clone().into_raw();
    f(&mut raw);
    verify_layout(&w.program, &Layout::from_raw(raw))
}

#[test]
fn baseline_layout_is_clean() {
    let w = workload();
    let diags = verify_layout(&w.program, &natural_layout(&w));
    assert!(
        diags.is_empty(),
        "expected clean baseline, got {:?}",
        rule_set(&diags)
    );
}

#[test]
fn mut_layout_order_permutation() {
    let w = workload();
    let diags = mutate_layout(&w, &natural_layout(&w), |raw| {
        raw.order[1] = raw.order[0];
    });
    assert_fires(&diags, "layout.order-permutation", Severity::Error);
}

#[test]
fn mut_layout_addr_monotonic() {
    let w = workload();
    let diags = mutate_layout(&w, &natural_layout(&w), |raw| {
        let a = raw.code[5].addr;
        raw.code[5].addr = a.add_words(2);
    });
    assert_fires(&diags, "layout.addr-monotonic", Severity::Error);
}

#[test]
fn mut_layout_addr_aligned() {
    let w = workload();
    let diags = mutate_layout(&w, &natural_layout(&w), |raw| {
        raw.code[5].addr = Addr::new(raw.code[5].addr.byte() + 2);
    });
    assert_fires(&diags, "layout.addr-aligned", Severity::Error);
}

#[test]
fn mut_layout_block_addr() {
    let w = workload();
    let diags = mutate_layout(&w, &natural_layout(&w), |raw| {
        // Nudge a non-empty block's recorded address off its first
        // instruction.
        raw.block_addr[0] = raw.block_addr[0].add_words(1);
    });
    assert_fires(&diags, "layout.block-addr", Severity::Error);
}

#[test]
fn mut_layout_target_resolves() {
    let w = workload();
    let layout = natural_layout(&w);
    // Retarget a conditional branch at some other block's start address —
    // still inside the image, but not where its terminator points.
    let (idx, wrong) = layout
        .code()
        .iter()
        .enumerate()
        .find_map(|(i, inst)| {
            if inst.op != OpClass::CondBranch {
                return None;
            }
            let expect = inst.ctrl?.target?;
            let wrong = w
                .program
                .blocks()
                .iter()
                .map(|b| layout.block_addr(b.id))
                .find(|&a| a != expect && layout.index_of(a).is_some())?;
            Some((i, wrong))
        })
        .expect("a retargetable branch exists");
    let diags = mutate_layout(&w, &layout, |raw| {
        let ctrl = raw.code[idx].ctrl.as_mut().expect("branch has ctrl");
        ctrl.target = Some(wrong);
    });
    assert_fires(&diags, "layout.target-resolves", Severity::Error);
}

#[test]
fn mut_layout_ctrl_attr_on_body_inst() {
    let w = workload();
    let layout = natural_layout(&w);
    let idx = layout
        .code()
        .iter()
        .position(|i| i.ctrl.is_none() && i.op != OpClass::Nop)
        .expect("body instruction exists");
    let diags = mutate_layout(&w, &layout, |raw| {
        raw.code[idx].ctrl = Some(CtrlAttr {
            branch_id: None,
            inverted: false,
            target: None,
        });
    });
    assert_fires(&diags, "layout.ctrl-attr", Severity::Error);
}

#[test]
fn mut_layout_ctrl_attr_missing_branch_id() {
    let w = workload();
    let layout = natural_layout(&w);
    let idx = layout
        .code()
        .iter()
        .position(|i| i.op == OpClass::CondBranch)
        .expect("branch exists");
    let diags = mutate_layout(&w, &layout, |raw| {
        raw.code[idx].ctrl.as_mut().expect("ctrl").branch_id = None;
    });
    assert_fires(&diags, "layout.ctrl-attr", Severity::Error);
}

#[test]
fn mut_layout_pad_alignment() {
    let w = workload();
    // Claim pad-all on a layout that was built without padding: blocks do
    // not start on cache-block boundaries, so the claimed alignment is a lie.
    let diags = mutate_layout(&w, &natural_layout(&w), |raw| {
        raw.options.pad = PadMode::PadAll;
    });
    assert_fires(&diags, "layout.pad-alignment", Severity::Error);
}

#[test]
fn mut_layout_pad_accounting() {
    let w = workload();
    let diags = mutate_layout(&w, &natural_layout(&w), |raw| {
        raw.stats.pad_nops += 3;
    });
    assert_fires(&diags, "layout.pad-accounting", Severity::Error);
}

// ------------------------------------------------------------------- FlowPass

/// Extracts the raw count vectors from a profile via its accessors.
fn profile_vectors(p: &Profile) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    let blocks: Vec<u64> = (0..p.num_blocks())
        .map(|i| p.block_count(BlockId(i as u32)))
        .collect();
    let (mut taken, mut total) = (Vec::new(), Vec::new());
    for i in 0..p.num_branches() {
        let (t, n) = p.branch_counts(BranchId(i as u32));
        taken.push(t);
        total.push(n);
    }
    (blocks, taken, total)
}

#[test]
fn baseline_profile_is_clean() {
    let (w, p) = profiled();
    let diags = verify_profile(&w.program, &p, Some(&TraceSelectConfig::default()));
    assert!(
        diags.is_empty(),
        "expected clean baseline, got {:?}",
        rule_set(&diags)
    );
}

#[test]
fn mut_profile_dims() {
    let (w, p) = profiled();
    let (mut blocks, taken, total) = profile_vectors(&p);
    blocks.pop();
    let bad = Profile::from_raw(blocks, taken, total);
    let diags = verify_profile(&w.program, &bad, None);
    assert_fires(&diags, "profile.dims", Severity::Error);
}

#[test]
fn mut_profile_taken_le_total() {
    let (w, p) = profiled();
    let (blocks, mut taken, total) = profile_vectors(&p);
    let hot = (0..total.len())
        .max_by_key(|&i| total[i])
        .expect("branches exist");
    taken[hot] = total[hot] + 10;
    let bad = Profile::from_raw(blocks, taken, total);
    let diags = verify_profile(&w.program, &bad, None);
    assert_fires(&diags, "profile.taken-le-total", Severity::Error);
}

#[test]
fn mut_profile_branch_vs_block() {
    let (w, p) = profiled();
    let (blocks, mut taken, mut total) = profile_vectors(&p);
    let hot = (0..total.len())
        .max_by_key(|&i| total[i])
        .expect("branches exist");
    assert!(
        total[hot] > 200,
        "profiling budget too small for the mutation"
    );
    // Inflate both counts so taken<=total still holds but the branch now
    // executes far more often than its block.
    total[hot] *= 3;
    taken[hot] = total[hot] / 2;
    let bad = Profile::from_raw(blocks, taken, total);
    let diags = verify_profile(&w.program, &bad, None);
    assert_fires(&diags, "profile.branch-vs-block", Severity::Error);
}

#[test]
fn mut_profile_flow_conservation() {
    let (w, p) = profiled();
    let (mut blocks, taken, total) = profile_vectors(&p);
    let hot = (0..blocks.len())
        .max_by_key(|&i| blocks[i])
        .expect("blocks exist");
    assert!(
        blocks[hot] > 200,
        "profiling budget too small for the mutation"
    );
    blocks[hot] *= 2;
    let bad = Profile::from_raw(blocks, taken, total);
    let diags = verify_profile(&w.program, &bad, None);
    assert_fires(&diags, "profile.flow-conservation", Severity::Error);
}

#[test]
fn mut_profile_empty() {
    let (w, p) = profiled();
    let bad = Profile::from_raw(
        vec![0; p.num_blocks()],
        vec![0; p.num_branches()],
        vec![0; p.num_branches()],
    );
    let diags = verify_profile(&w.program, &bad, None);
    assert_fires(&diags, "profile.empty", Severity::Warning);
}

#[test]
fn mut_trace_preconditions_threshold() {
    let (w, p) = profiled();
    let cfg = TraceSelectConfig {
        threshold: f64::NAN,
        max_blocks: 64,
    };
    let diags = verify_profile(&w.program, &p, Some(&cfg));
    assert_fires(&diags, "profile.trace-preconditions", Severity::Error);
}

#[test]
fn mut_trace_preconditions_max_blocks() {
    let (w, p) = profiled();
    let cfg = TraceSelectConfig {
        threshold: 0.6,
        max_blocks: 0,
    };
    let diags = verify_profile(&w.program, &p, Some(&cfg));
    assert_fires(&diags, "profile.trace-preconditions", Severity::Error);
}

#[test]
fn mut_trace_preconditions_low_threshold_warns() {
    let (w, p) = profiled();
    let cfg = TraceSelectConfig {
        threshold: 0.3,
        max_blocks: 64,
    };
    let diags = verify_profile(&w.program, &p, Some(&cfg));
    assert_fires(&diags, "profile.trace-preconditions", Severity::Warning);
}

// ----------------------------------------------------------------- TracesPass

fn selected() -> (Workload, Vec<Trace>) {
    let (w, p) = profiled();
    let traces = select_traces(&w.program, &p, &TraceSelectConfig::default());
    (w, traces)
}

#[test]
fn baseline_traces_are_clean() {
    let (w, traces) = selected();
    let diags = verify_traces(&w.program, &traces);
    assert!(
        diags.is_empty(),
        "expected clean baseline, got {:?}",
        rule_set(&diags)
    );
}

#[test]
fn mut_traces_nonempty() {
    let (w, mut traces) = selected();
    traces.push(Trace {
        blocks: vec![],
        weight: 0,
    });
    let diags = verify_traces(&w.program, &traces);
    assert_fires(&diags, "traces.nonempty", Severity::Error);
}

#[test]
fn mut_traces_partition_duplicate() {
    let (w, mut traces) = selected();
    let dup = traces[0].blocks[0];
    traces.push(Trace {
        blocks: vec![dup],
        weight: 0,
    });
    let diags = verify_traces(&w.program, &traces);
    assert_fires(&diags, "traces.partition", Severity::Error);
}

#[test]
fn mut_traces_partition_uncovered() {
    let (w, mut traces) = selected();
    traces.pop();
    let diags = verify_traces(&w.program, &traces);
    assert_fires(&diags, "traces.partition", Severity::Error);
}

#[test]
fn mut_traces_same_func() {
    let (w, mut traces) = selected();
    // Splice a block from another function onto a trace.
    let f0 = w.program.block(traces[0].blocks[0]).func;
    let foreign = w
        .program
        .blocks()
        .iter()
        .find(|b| b.func != f0)
        .map(|b| b.id)
        .expect("multi-function workload");
    traces[0].blocks.push(foreign);
    let diags = verify_traces(&w.program, &traces);
    assert_fires(&diags, "traces.same-func", Severity::Error);
}

#[test]
fn mut_traces_adjacent_edges() {
    let (w, mut traces) = selected();
    // Append a same-function block that is not a CFG successor of the tail.
    let t = traces
        .iter_mut()
        .find(|t| {
            let func = w.program.block(t.blocks[0]).func;
            let tail = *t.blocks.last().expect("nonempty");
            w.program.blocks().iter().any(|b| {
                b.func == func
                    && !t.blocks.contains(&b.id)
                    && !w
                        .program
                        .block(tail)
                        .terminator
                        .local_successors()
                        .iter()
                        .any(|&(_, s)| s == b.id)
            })
        })
        .expect("an extendable trace exists");
    let func = w.program.block(t.blocks[0]).func;
    let tail = *t.blocks.last().expect("nonempty");
    let non_succ = w
        .program
        .blocks()
        .iter()
        .find(|b| {
            b.func == func
                && !t.blocks.contains(&b.id)
                && !w
                    .program
                    .block(tail)
                    .terminator
                    .local_successors()
                    .iter()
                    .any(|&(_, s)| s == b.id)
        })
        .map(|b| b.id)
        .expect("non-successor exists");
    t.blocks.push(non_succ);
    let diags = verify_traces(&w.program, &traces);
    assert_fires(&diags, "traces.adjacent-edges", Severity::Error);
}

// -------------------------------------------------------------- TransformPass

#[test]
fn baseline_transform_is_clean() {
    let (w, _, r) = reordered();
    let diags = verify_transform(&w.program, &r);
    assert!(
        diags.is_empty(),
        "expected clean baseline, got {:?}",
        rule_set(&diags)
    );
}

#[test]
fn mut_xform_isomorphic() {
    let (w, _, mut r) = reordered();
    let mut raw = r.program.clone().into_raw();
    raw.blocks.pop();
    r.program = Program::from_raw(raw);
    let diags = verify_transform(&w.program, &r);
    assert_fires(&diags, "xform.isomorphic", Severity::Error);
}

#[test]
fn mut_xform_body_preserved() {
    let (w, _, mut r) = reordered();
    let mut raw = r.program.clone().into_raw();
    raw.blocks[0]
        .insts
        .push(Inst::new(OpClass::IntAlu, None, [None, None]));
    r.program = Program::from_raw(raw);
    let diags = verify_transform(&w.program, &r);
    assert_fires(&diags, "xform.body-preserved", Severity::Error);
}

#[test]
fn mut_xform_terminator_equiv_flag_only() {
    let (w, _, mut r) = reordered();
    let mut raw = r.program.clone().into_raw();
    let b = raw
        .blocks
        .iter_mut()
        .find(|b| matches!(b.terminator, Terminator::CondBranch { .. }))
        .expect("branch exists");
    if let Terminator::CondBranch { inverted, .. } = &mut b.terminator {
        *inverted = !*inverted;
    }
    r.program = Program::from_raw(raw);
    let diags = verify_transform(&w.program, &r);
    assert_fires(&diags, "xform.terminator-equiv", Severity::Error);
}

#[test]
fn mut_xform_order_permutation() {
    let (w, _, mut r) = reordered();
    r.order[2] = r.order[1];
    let diags = verify_transform(&w.program, &r);
    assert_fires(&diags, "xform.order-permutation", Severity::Error);
}

#[test]
fn mut_xform_inverted_count() {
    let (w, _, mut r) = reordered();
    r.inverted_branches += 1;
    let diags = verify_transform(&w.program, &r);
    assert_fires(&diags, "xform.inverted-count", Severity::Error);
}

#[test]
fn mut_xform_trace_ends() {
    let (w, _, mut r) = reordered();
    r.trace_ends.insert(BlockId(9_999));
    let diags = verify_transform(&w.program, &r);
    assert_fires(&diags, "xform.trace-ends", Severity::Error);
}

// -------------------------------------------------------------- TraceDiffPass

#[test]
fn baseline_trace_diff_is_clean() {
    let (w, _, r) = reordered();
    let diags = verify_trace_diff(&w, &r, 20_000);
    assert!(
        diags.is_empty(),
        "expected clean baseline, got {:?}",
        rule_set(&diags)
    );
}

#[test]
fn mut_trace_equiv() {
    let (w, p, mut r) = reordered();
    // Change the destination register of a body instruction in the hottest
    // block: placement-identical, computation-different.
    let hot = (0..w.program.num_blocks() as u32)
        .map(BlockId)
        .filter(|&b| !w.program.block(b).insts.is_empty())
        .max_by_key(|&b| p.block_count(b))
        .expect("a hot non-empty block exists");
    let mut raw = r.program.clone().into_raw();
    let inst = &mut raw.blocks[hot.0 as usize].insts[0];
    inst.dest = match inst.dest {
        Some(fetchmech_isa::Reg::Int(n)) => Some(fetchmech_isa::Reg::Int((n + 1) % 30)),
        _ => Some(fetchmech_isa::Reg::int(7)),
    };
    r.program = Program::from_raw(raw);
    let diags = verify_trace_diff(&w, &r, 20_000);
    assert_fires(&diags, "xform.trace-equiv", Severity::Error);
}

#[test]
fn mut_trace_overlap() {
    let (w, _, mut r) = reordered();
    // Hollow out every block body into nops: the reordered side then yields
    // almost no useful instructions, so the comparable overlap collapses.
    let mut raw = r.program.clone().into_raw();
    for b in &mut raw.blocks {
        for inst in &mut b.insts {
            *inst = Inst::new(OpClass::Nop, None, [None, None]);
        }
    }
    r.program = Program::from_raw(raw);
    let diags = verify_trace_diff(&w, &r, 20_000);
    assert_fires(&diags, "xform.trace-overlap", Severity::Warning);
}
