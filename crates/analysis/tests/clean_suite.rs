//! Positive coverage: every artifact the pipeline produces — all fifteen
//! suite benchmarks, their profiles, trace selections, reorders, and all
//! four layout flavours — passes every pass with zero findings, and
//! property-tested generator variations stay clean too.

use fetchmech_analysis::{
    verify_layout, verify_profile, verify_program, verify_traces, verify_transform, Diagnostic,
};
use fetchmech_compiler::{layout_pad_all, reorder, select_traces, Profile, TraceSelectConfig};
use fetchmech_isa::{Layout, LayoutOptions};
use fetchmech_workloads::{suite, InputId, Workload, WorkloadSpec};
use proptest::prelude::*;

const BLOCK_BYTES: u64 = 16;

fn assert_clean(what: &str, diags: &[Diagnostic]) {
    assert!(
        diags.is_empty(),
        "{what}: expected no findings, got:\n{}",
        fetchmech_analysis::report_human(diags)
    );
}

/// Runs every static pass over everything derivable from one workload.
fn verify_workload_pipeline(w: &Workload, profile_len: u64) {
    let name = w.spec.name;
    assert_clean(name, &verify_program(&w.program));

    let natural = Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES)).expect("layout");
    assert_clean(name, &verify_layout(&w.program, &natural));

    let profile = Profile::collect(w, &InputId::PROFILE, profile_len);
    let config = TraceSelectConfig::default();
    assert_clean(name, &verify_profile(&w.program, &profile, Some(&config)));

    let traces = select_traces(&w.program, &profile, &config);
    assert_clean(name, &verify_traces(&w.program, &traces));

    let r = reorder(&w.program, &profile, &config);
    assert_clean(name, &verify_transform(&w.program, &r));
    assert_clean(
        name,
        &verify_layout(&r.program, &r.layout(BLOCK_BYTES).expect("layout")),
    );
    assert_clean(
        name,
        &verify_layout(
            &r.program,
            &r.layout_pad_trace(BLOCK_BYTES).expect("layout"),
        ),
    );
    let pad_all = layout_pad_all(&w.program, BLOCK_BYTES).expect("layout");
    assert_clean(name, &verify_layout(&w.program, &pad_all));
}

#[test]
fn all_fifteen_benchmarks_lint_clean() {
    let names: Vec<&str> = suite::INT_NAMES
        .iter()
        .chain(suite::FP_NAMES.iter())
        .copied()
        .collect();
    assert_eq!(names.len(), 15);
    for name in names {
        let w = suite::benchmark(name).expect("known benchmark");
        verify_workload_pipeline(&w, 10_000);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary generator configurations — not just the calibrated suite —
    /// produce IR that passes every pass end to end.
    #[test]
    fn generated_workloads_always_verify(
        seed in 0u64..100_000,
        funcs in 1usize..5,
        loop_raw in 0.0f64..1.0,
        call_raw in 0.0f64..1.0,
        hammock_raw in 0.0f64..1.0,
        diamond_raw in 0.0f64..1.0,
    ) {
        let mut spec = WorkloadSpec::base_int("prop-verify", seed);
        spec.funcs = funcs;
        // The generator requires the segment-kind probabilities to sum to at
        // most 1; scale the raw draws into that budget.
        let total = loop_raw + call_raw + hammock_raw + diamond_raw;
        let scale = if total > 0.0 { 0.95 / total.max(0.95) } else { 0.0 };
        spec.loop_prob = loop_raw * scale;
        spec.call_prob = call_raw * scale;
        spec.hammock_prob = hammock_raw * scale;
        spec.diamond_prob = diamond_raw * scale;
        let w = Workload::generate(spec);
        verify_workload_pipeline(&w, 5_000);
    }
}
