//! Mutation tests for the block-stream structural pass: corrupt one
//! invariant of a valid stream and assert the verifier reports exactly the
//! intended rule.
//!
//! Corruptions are assembled through [`BlockStream::from_parts`], the
//! unchecked escape hatch that exists precisely so these tests (and future
//! deserializers) have something for the pass to catch.

use fetchmech_analysis::{verify_stream, Diagnostic, Severity};
use fetchmech_isa::{
    Addr, BlockStream, DynCtrl, DynInst, Layout, LayoutOptions, OpClass, SegTemplate,
};
use fetchmech_workloads::{suite, InputId};

fn assert_fires(diags: &[Diagnostic], rule: &str, severity: Severity) {
    assert!(
        diags
            .iter()
            .any(|d| d.rule_id == rule && d.severity == severity),
        "expected {rule} at {severity:?}; got {:?}",
        diags.iter().map(|d| d.rule_id).collect::<Vec<_>>()
    );
}

fn assert_clean(diags: &[Diagnostic]) {
    assert!(
        !diags.iter().any(|d| d.severity == Severity::Error),
        "expected a clean stream; got {diags:?}"
    );
}

fn alu(addr: u64) -> DynInst {
    DynInst::simple(Addr::new(addr), OpClass::IntAlu, None, [None, None])
}

fn branch(addr: u64, taken: bool, target: u64) -> DynInst {
    DynInst {
        addr: Addr::new(addr),
        op: OpClass::CondBranch,
        dest: None,
        srcs: [None, None],
        next_pc: Addr::new(if taken { target } else { addr + 4 }),
        ctrl: Some(DynCtrl {
            branch_id: None,
            taken,
            target: Addr::new(target),
            link: None,
        }),
    }
}

/// A well-formed two-template stream: a loop body taken twice, then a cut
/// tail where the trace ended mid-iteration.
fn good_parts() -> (Vec<SegTemplate>, Vec<u32>, u64) {
    let body = SegTemplate::new(vec![alu(0x100), branch(0x104, true, 0x100)]);
    let tail = SegTemplate::new(vec![alu(0x100), alu(0x104)]);
    assert!(tail.is_cut());
    (vec![body, tail], vec![0, 0, 1], 6)
}

#[test]
fn native_suite_streams_are_clean() {
    for name in ["compress", "tomcatv"] {
        let w = suite::benchmark(name).expect("known benchmark");
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let stream = w.block_stream(&layout, InputId::TEST, 3_000);
        assert_clean(&verify_stream(&stream));
    }
}

#[test]
fn hand_assembled_consistent_stream_is_clean() {
    let (templates, records, total) = good_parts();
    let s = BlockStream::from_parts(templates, records, total);
    assert_clean(&verify_stream(&s));
}

#[test]
fn out_of_range_record_fires_range_rule() {
    let (templates, mut records, total) = good_parts();
    records[1] = 7; // only templates 0 and 1 exist
    let s = BlockStream::from_parts(templates, records, total);
    let diags = verify_stream(&s);
    assert_fires(&diags, "stream.record-template-range", Severity::Error);
    // The bogus record's instructions are also missing from the total.
    assert_fires(&diags, "stream.total-insts", Severity::Error);
}

#[test]
fn wrong_instruction_total_fires_total_rule() {
    let (templates, records, _) = good_parts();
    let s = BlockStream::from_parts(templates, records, 5);
    assert_fires(&verify_stream(&s), "stream.total-insts", Severity::Error);
}

#[test]
fn cut_segment_before_the_end_fires_cut_rule() {
    let (templates, _, _) = good_parts();
    // Template 1 is the cut tail; schedule it in the middle.
    let s = BlockStream::from_parts(templates, vec![0, 1, 0], 6);
    assert_fires(&verify_stream(&s), "stream.cut-final-only", Severity::Error);
}

#[test]
fn unreferenced_template_warns_live_rule() {
    let (templates, _, _) = good_parts();
    let s = BlockStream::from_parts(templates, vec![0, 0], 4);
    let diags = verify_stream(&s);
    assert_fires(&diags, "stream.template-live", Severity::Warning);
    assert_clean(&diags); // dead weight is not an error
}

#[test]
fn broken_record_chain_warns_linkage_rule() {
    let body = SegTemplate::new(vec![alu(0x100), branch(0x104, true, 0x100)]);
    // Starts at 0x200, but the predecessor resumes at 0x100.
    let stranger = SegTemplate::new(vec![alu(0x200)]);
    let s = BlockStream::from_parts(vec![body, stranger], vec![0, 1], 3);
    assert_fires(
        &verify_stream(&s),
        "stream.record-linkage",
        Severity::Warning,
    );
}
