//! Dynamic soundness of the optimization pipeline: the translation
//! validator must come back clean on genuine `optimize` results, for every
//! suite benchmark and for property-generated workloads under arbitrary
//! pass subsets — and the end-to-end executions must actually agree, not
//! just pass the per-application checks.

use std::collections::HashSet;

use fetchmech_analysis::dataflow::{dead_writes, liveness, reachability};
use fetchmech_analysis::{verify_optimized, Severity};
use fetchmech_compiler::{optimize, OptimizeConfig, PassEdit, PassKind, Profile};
use fetchmech_isa::{CfgView, Layout, LayoutOptions, Terminator};
use fetchmech_workloads::{suite, InputId, Workload, WorkloadSpec};
use proptest::prelude::*;

const BLOCK_BYTES: u64 = 16;
const INSTS: u64 = 10_000;

fn generated(seed: u64, funcs: usize, loop_prob: f64, call_prob: f64) -> Workload {
    let mut spec = WorkloadSpec::base_int("prop-opt", seed);
    spec.funcs = funcs;
    let free = (1.0 - spec.hammock_prob - spec.diamond_prob).max(0.0) * 0.95;
    let total = loop_prob + call_prob;
    let scale = if total > 0.0 {
        free / total.max(1.0)
    } else {
        0.0
    };
    spec.loop_prob = loop_prob * scale;
    spec.call_prob = call_prob * scale;
    Workload::generate(spec)
}

/// Sequence of `(original branch id, semantic direction)` pairs executed by
/// the workload, with every branch mapped back through `origin` and the
/// hardware direction un-inverted — layout-independent, unlike block-entry
/// detection (an empty block laid adjacent to its fall-through successor
/// executes no instruction at all).
fn branch_path(
    w: &Workload,
    origin: Option<&[fetchmech_isa::BranchId]>,
    insts: u64,
    limit: usize,
) -> Vec<(u32, bool)> {
    let layout = Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES)).expect("layout");
    let mut inverted = vec![false; w.program.num_branches() as usize];
    for b in w.program.blocks() {
        if let Terminator::CondBranch {
            id, inverted: inv, ..
        } = b.terminator
        {
            inverted[id.0 as usize] = inv;
        }
    }
    let mut path = Vec::new();
    for d in w.executor(&layout, InputId::TEST, insts) {
        let Some(id) = d.ctrl.as_ref().and_then(|c| c.branch_id) else {
            continue;
        };
        let semantic = d.ctrl.as_ref().expect("ctrl").taken ^ inverted[id.0 as usize];
        let orig = origin.map_or(id, |map| map[id.0 as usize]);
        path.push((orig.0, semantic));
        if path.len() == limit {
            break;
        }
    }
    path
}

fn optimized_workload(w: &Workload, optimized: &fetchmech_compiler::Optimized) -> Workload {
    Workload {
        spec: w.spec.clone(),
        program: optimized.program.clone(),
        behaviors: w.behaviors.with_origin(optimized.branch_origin.clone()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any subset of the pass pipeline on a generated workload verifies
    /// clean: statically (per-application invariants, flow conservation)
    /// and dynamically (observable-trace equivalence).
    #[test]
    fn pass_subsets_verify_clean_on_generated_workloads(
        seed in 0u64..100_000,
        funcs in 1usize..4,
        loop_prob in 0.0f64..1.0,
        call_prob in 0.0f64..1.0,
        mask in 1usize..16,
    ) {
        let w = generated(seed, funcs, loop_prob, call_prob);
        let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
        let passes: Vec<PassKind> = PassKind::ALL
            .iter()
            .enumerate()
            .filter(|&(i, _)| mask & (1 << i) != 0)
            .map(|(_, &p)| p)
            .collect();
        let optimized = optimize(&w.program, &profile, &passes, &OptimizeConfig::default());
        let diags = verify_optimized(&w, &profile, &optimized, INSTS);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        prop_assert!(
            errors.is_empty(),
            "passes {passes:?} flagged on seed {seed}: {errors:?}"
        );
    }

    /// End-to-end oracle, independent of the validator: the optimized
    /// program executes the same original branches with the same semantic
    /// directions, in the same order (passes may duplicate blocks and flip
    /// branch senses but never change which source path runs).
    #[test]
    fn optimized_execution_follows_the_original_branch_path(
        seed in 0u64..100_000,
        funcs in 1usize..4,
        loop_prob in 0.0f64..1.0,
        call_prob in 0.0f64..1.0,
    ) {
        let w = generated(seed, funcs, loop_prob, call_prob);
        let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
        let optimized =
            optimize(&w.program, &profile, &PassKind::ALL, &OptimizeConfig::default());
        let w_after = optimized_workload(&w, &optimized);

        // Instruction budgets cut the two runs at different points (DCE
        // shortens bodies), so compare a common prefix of branch outcomes.
        let limit = 256;
        let before = branch_path(&w, None, INSTS, limit);
        let after = branch_path(&w_after, Some(&optimized.branch_origin), INSTS, limit);
        let n = before.len().min(after.len());
        prop_assert!(n > 0, "both executions reach a branch");
        prop_assert_eq!(
            &before[..n],
            &after[..n],
            "origin branch path diverged on seed {}",
            seed
        );
    }
}

/// The full pipeline verifies clean on every suite benchmark — the same
/// gate `fetchmech-lint opt --verify` enforces in CI, as a plain test.
#[test]
fn full_suite_pipeline_verifies_clean() {
    for name in suite::INT_NAMES.iter().chain(suite::FP_NAMES.iter()) {
        let w = suite::benchmark(name).expect("known benchmark");
        let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
        let optimized = optimize(
            &w.program,
            &profile,
            &PassKind::ALL,
            &OptimizeConfig::default(),
        );
        let diags = verify_optimized(&w, &profile, &optimized, INSTS);
        let errors: Vec<_> = diags
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{name}: pipeline flagged: {errors:?}");
    }
}

/// DCE and the static dead-write lint agree: every write the dataflow
/// analysis flags in a reachable block is among DCE's declared removals
/// (two independent algorithms over different lattices).
#[test]
fn dce_removes_every_statically_flagged_dead_write() {
    for name in ["compress", "eqntott", "espresso", "li"] {
        let w = suite::benchmark(name).expect("known benchmark");
        let profile = Profile::collect(&w, &InputId::PROFILE, INSTS);
        let optimized = optimize(
            &w.program,
            &profile,
            &[PassKind::Dce],
            &OptimizeConfig::default(),
        );
        let app = optimized
            .applications
            .iter()
            .find(|a| a.pass == PassKind::Dce)
            .expect("dce ran");
        let PassEdit::Dce { removed, .. } = &app.edit else {
            panic!("dce edit");
        };
        let declared: HashSet<(u32, usize)> = removed.iter().map(|s| (s.block.0, s.inst)).collect();

        let view = CfgView::local(&app.before);
        let live = liveness(&app.before, &view);
        let reach = reachability(&app.before);
        for dw in dead_writes(&app.before, &view, &live) {
            if !reach[dw.block.0 as usize] {
                continue; // DCE skips blocks with no SSA reachability
            }
            assert!(
                declared.contains(&(dw.block.0, dw.inst)),
                "{name}: dead write at B{}[{}] not removed by DCE",
                dw.block.0,
                dw.inst
            );
        }
    }
}
