//! Dynamic soundness of the dataflow analyses: the claims the static lints
//! make are checked against real executions of property-generated
//! workloads.
//!
//! * **Reachability** may under-approximate ("I don't know if this runs")
//!   but never over-approximate: no block an execution actually visits is
//!   ever reported unreachable.
//! * **Dead-write** findings claim the written value is overwritten on
//!   every path before any read — so no execution may read a register
//!   whose last writer was a flagged site.

use std::collections::HashSet;

use fetchmech_analysis::dataflow::{dead_writes, liveness, reachability};
use fetchmech_isa::{Addr, CfgView, Layout, LayoutOptions};
use fetchmech_workloads::{InputId, Workload, WorkloadSpec};
use proptest::prelude::*;

const BLOCK_BYTES: u64 = 16;
const TRACE_LEN: u64 = 4_000;

fn generated(seed: u64, funcs: usize, loop_prob: f64, call_prob: f64) -> Workload {
    let mut spec = WorkloadSpec::base_int("prop-dataflow", seed);
    spec.funcs = funcs;
    // The segment-kind probabilities (loops, calls, hammocks, diamonds)
    // must sum to at most 1; scale the drawn pair into the budget the base
    // spec's hammock/diamond defaults leave free.
    let free = (1.0 - spec.hammock_prob - spec.diamond_prob).max(0.0) * 0.95;
    let total = loop_prob + call_prob;
    let scale = if total > 0.0 {
        free / total.max(1.0)
    } else {
        0.0
    };
    spec.loop_prob = loop_prob * scale;
    spec.call_prob = call_prob * scale;
    Workload::generate(spec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every block an execution visits is statically reachable.
    #[test]
    fn executed_blocks_are_never_reported_unreachable(
        seed in 0u64..100_000,
        funcs in 1usize..5,
        loop_prob in 0.0f64..1.0,
        call_prob in 0.0f64..1.0,
    ) {
        let w = generated(seed, funcs, loop_prob, call_prob);
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES)).expect("layout");
        let reach = reachability(&w.program);

        let mut visited: HashSet<u32> = HashSet::new();
        for d in w.executor(&layout, InputId::TEST, TRACE_LEN) {
            let idx = layout.index_of(d.addr).expect("executed addr is laid");
            visited.insert(layout.code()[idx].block.0);
        }
        prop_assert!(!visited.is_empty(), "execution visits at least the entry");
        for b in visited {
            prop_assert!(
                reach[b as usize],
                "block B{b} executed but reported unreachable"
            );
        }
    }

    /// No execution reads a register whose last writer the dead-write
    /// analysis flagged: "overwritten on every path before any read" must
    /// hold on the real path too.
    #[test]
    fn flagged_dead_writes_are_never_read_at_runtime(
        seed in 0u64..100_000,
        funcs in 1usize..5,
        loop_prob in 0.0f64..1.0,
        call_prob in 0.0f64..1.0,
    ) {
        let w = generated(seed, funcs, loop_prob, call_prob);
        let layout =
            Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES)).expect("layout");

        let view = CfgView::local(&w.program);
        let live = liveness(&w.program, &view);
        // Body instructions are laid first within each block, so site
        // (block, inst) sits at block_addr + 4*inst.
        let sites: HashSet<Addr> = dead_writes(&w.program, &view, &live)
            .iter()
            .map(|dw| layout.block_addr(dw.block).add_words(dw.inst as u64))
            .collect();

        // Walk the execution: reads happen before the writing inst's own
        // def, so check srcs first, then update the per-register flag.
        let mut last_write_flagged = [false; 64];
        for d in w.executor(&layout, InputId::TEST, TRACE_LEN) {
            for src in d.srcs.iter().flatten() {
                prop_assert!(
                    !last_write_flagged[src.file_index()],
                    "register {src} read at {} but its last write was \
                     reported dead",
                    d.addr
                );
            }
            if let Some(dest) = d.dest {
                last_write_flagged[dest.file_index()] = sites.contains(&d.addr);
            }
        }
    }
}
