//! The debug-hook wiring: after `install_debug_hooks`, the whole compile
//! pipeline runs with construction-site verification and stays silent for
//! valid inputs. Kept in its own test binary because hooks are process-global
//! — the mutation tests must run without them.

use fetchmech_analysis::install_debug_hooks;
use fetchmech_compiler::{reorder, Profile, TraceSelectConfig};
use fetchmech_workloads::{suite, InputId};

#[test]
fn hooked_pipeline_constructs_verified_artifacts() {
    assert!(
        install_debug_hooks(),
        "first installation claims the hook slots"
    );
    // Re-installation is a harmless no-op (first install wins).
    assert!(!install_debug_hooks());

    // Everything below now verifies at construction: workload generation
    // (ProgramBuilder::finish), profiling (Layout::natural + Profile),
    // trace selection, reordering (with_terminators + transform check),
    // and the optimized layouts.
    let w = suite::benchmark("espresso").expect("known benchmark");
    let profile = Profile::collect(&w, &InputId::PROFILE, 10_000);
    let r = reorder(&w.program, &profile, &TraceSelectConfig::default());
    let layout = r.layout_pad_trace(16).expect("layout");
    assert!(!layout.code().is_empty());
}
