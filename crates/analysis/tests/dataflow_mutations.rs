//! Mutation tests for the dataflow lints: seed one defect into a valid
//! suite program and assert the `dataflow` pass reports exactly the
//! intended rule (see `tests/mutations.rs` for the structural-rule
//! counterpart, and `tests/static_bound_oracle.rs` in the core crate for
//! the geometry-bound mutations).
//!
//! These tests build malformed IR through the raw escape hatches, so they
//! must NOT install the debug hooks.

use std::collections::HashSet;

use fetchmech_analysis::{
    DataflowPass, Diagnostic, DiagnosticSink, Location, Pass, Severity, Target,
};
use fetchmech_compiler::{select_traces, Profile, Trace, TraceSelectConfig};
use fetchmech_isa::{Block, BlockId, Inst, OpClass, Program, Reg, Terminator};
use fetchmech_workloads::{suite, InputId, Workload};

fn workload() -> Workload {
    suite::benchmark("compress").expect("known benchmark")
}

fn rule_set(diags: &[Diagnostic]) -> HashSet<&'static str> {
    diags.iter().map(|d| d.rule_id).collect()
}

/// Runs one pass instance over one target.
fn run_pass(pass: &DataflowPass, target: &Target<'_>) -> Vec<Diagnostic> {
    let mut sink = DiagnosticSink::new();
    pass.run(target, &mut sink);
    sink.into_diagnostics()
}

/// Asserts every finding is `rule` (at `severity`), and at least one fired.
fn assert_only_rule(diags: &[Diagnostic], rule: &str, severity: Severity) {
    assert!(
        !diags.is_empty(),
        "expected {rule} to fire, got no findings"
    );
    assert!(
        diags
            .iter()
            .all(|d| d.rule_id == rule && d.severity == severity),
        "expected only {rule} at {severity:?}; got {:?}",
        rule_set(diags)
    );
}

/// Appends `n` blocks nothing points at (a chain ending in `Return`) and
/// returns their ids.
fn append_orphan_chain(program: &Program, n: usize) -> (Program, Vec<BlockId>) {
    let mut raw = program.clone().into_raw();
    let base = raw.blocks.len() as u32;
    let func = raw.blocks[0].func;
    let ids: Vec<BlockId> = (0..n as u32).map(|i| BlockId(base + i)).collect();
    for (i, &id) in ids.iter().enumerate() {
        let terminator = if i + 1 < n {
            Terminator::FallThrough { next: ids[i + 1] }
        } else {
            Terminator::Return
        };
        raw.blocks.push(Block {
            id,
            func,
            insts: vec![Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None])],
            terminator,
        });
    }
    (Program::from_raw(raw), ids)
}

// ----------------------------------------------------------------- baselines

#[test]
fn baseline_default_pass_is_clean() {
    let w = workload();
    let pass = DataflowPass::default();
    let diags = run_pass(&pass, &Target::Program(&w.program));
    assert!(
        diags.is_empty(),
        "expected clean baseline, got {:?}",
        rule_set(&diags)
    );

    let profile = Profile::collect(&w, &InputId::PROFILE, 20_000);
    let config = TraceSelectConfig::default();
    let diags = run_pass(
        &pass,
        &Target::Profile {
            program: &w.program,
            profile: &profile,
            config: Some(&config),
        },
    );
    assert!(diags.is_empty(), "profile target: {:?}", rule_set(&diags));

    let traces = select_traces(&w.program, &profile, &config);
    let diags = run_pass(
        &pass,
        &Target::Traces {
            program: &w.program,
            traces: &traces,
        },
    );
    assert!(diags.is_empty(), "traces target: {:?}", rule_set(&diags));
}

// --------------------------------------------------- dataflow.unreachable-block

#[test]
fn mut_unreachable_block_fires() {
    let (mutated, ids) = append_orphan_chain(&workload().program, 1);
    let diags = run_pass(&DataflowPass::default(), &Target::Program(&mutated));
    assert_only_rule(&diags, "dataflow.unreachable-block", Severity::Warning);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].location, Location::Block(ids[0]));
}

/// A whole orphan region — not just the directly unlinked block — is
/// reported: reachability is a fixpoint, not a one-step check.
#[test]
fn mut_unreachable_region_fires_per_block() {
    let (mutated, ids) = append_orphan_chain(&workload().program, 3);
    let diags = run_pass(&DataflowPass::default(), &Target::Program(&mutated));
    assert_only_rule(&diags, "dataflow.unreachable-block", Severity::Warning);
    let flagged: HashSet<Location> = diags.iter().map(|d| d.location).collect();
    for id in ids {
        assert!(flagged.contains(&Location::Block(id)), "missing {id}");
    }
}

// ---------------------------------------------------------- dataflow.dead-write

/// Prepends a write that the very next instruction overwrites. Only the
/// advisory pass reports it; the default registry pass stays silent
/// (generated workloads legitimately contain benign dead writes).
#[test]
fn mut_dead_write_fires_in_advisory_only() {
    let w = workload();
    // A body instruction that defines a register it does not read.
    let (victim_block, reg) = w
        .program
        .blocks()
        .iter()
        .find_map(|b| {
            let inst = b.insts.first()?;
            let reg = inst.dest?;
            (!inst.srcs.contains(&Some(reg))).then_some((b.id, reg))
        })
        .expect("suite program has a defining first instruction");

    let mut raw = w.program.clone().into_raw();
    raw.blocks[victim_block.0 as usize]
        .insts
        .insert(0, Inst::new(OpClass::IntAlu, Some(reg), [None, None]));
    let mutated = Program::from_raw(raw);

    let baseline = run_pass(&DataflowPass::advisory(), &Target::Program(&w.program));
    let diags = run_pass(&DataflowPass::advisory(), &Target::Program(&mutated));
    assert_only_rule(&diags, "dataflow.dead-write", Severity::Info);
    assert_eq!(
        diags.len(),
        baseline.len() + 1,
        "the seeded write adds exactly one finding"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.location == Location::Block(victim_block)
                && d.message.contains("instruction 0")),
        "the seeded site is reported: {:?}",
        diags.iter().map(|d| d.location).collect::<Vec<_>>()
    );

    // Advisory-only: the default (registry) instance must not report it.
    let default_diags = run_pass(&DataflowPass::default(), &Target::Program(&mutated));
    assert!(
        default_diags.is_empty(),
        "dead writes are advisory, got {:?}",
        rule_set(&default_diags)
    );
}

/// Negative control: a write whose value IS read is never reported, even
/// by the advisory pass at the seeded site.
#[test]
fn mut_dead_write_negative_read_value_is_live() {
    let w = workload();
    let (victim_block, reg) = w
        .program
        .blocks()
        .iter()
        .find_map(|b| {
            let inst = b.insts.first()?;
            let reg = inst.dest?;
            (!inst.srcs.contains(&Some(reg))).then_some((b.id, reg))
        })
        .expect("suite program has a defining first instruction");

    // Insert write-then-read: the new write at index 0 is consumed by the
    // new read at index 1 before the original overwrite.
    let mut raw = w.program.clone().into_raw();
    let insts = &mut raw.blocks[victim_block.0 as usize].insts;
    insts.insert(0, Inst::new(OpClass::IntAlu, None, [Some(reg), None]));
    insts.insert(0, Inst::new(OpClass::IntAlu, Some(reg), [None, None]));
    let mutated = Program::from_raw(raw);

    let diags = run_pass(&DataflowPass::advisory(), &Target::Program(&mutated));
    assert!(
        !diags
            .iter()
            .any(|d| d.location == Location::Block(victim_block)
                && d.message.contains("instruction 0")),
        "a read write must not be flagged at its def"
    );
}

// -------------------------------------------- dataflow.profile-unreachable-flow

#[test]
fn mut_profile_unreachable_flow_fires() {
    let w = workload();
    let (mutated, ids) = append_orphan_chain(&w.program, 1);
    // A profile that claims the orphan executed: extend the real profile's
    // block counts by one nonzero entry.
    let profile = Profile::collect(&w, &InputId::PROFILE, 20_000);
    let mut blocks: Vec<u64> = (0..profile.num_blocks())
        .map(|i| profile.block_count(BlockId(i as u32)))
        .collect();
    blocks.push(17);
    let (mut taken, mut total) = (Vec::new(), Vec::new());
    for i in 0..profile.num_branches() {
        let (t, n) = profile.branch_counts(fetchmech_isa::BranchId(i as u32));
        taken.push(t);
        total.push(n);
    }
    let bad = Profile::from_raw(blocks, taken, total);

    let diags = run_pass(
        &DataflowPass::default(),
        &Target::Profile {
            program: &mutated,
            profile: &bad,
            config: None,
        },
    );
    assert_only_rule(&diags, "dataflow.profile-unreachable-flow", Severity::Error);
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].location, Location::Block(ids[0]));
}

/// Negative control: zero recorded flow into unreachable code is fine.
#[test]
fn mut_profile_unreachable_flow_negative_zero_count() {
    let w = workload();
    let (mutated, _) = append_orphan_chain(&w.program, 1);
    let profile = Profile::collect(&w, &InputId::PROFILE, 20_000);
    let diags = run_pass(
        &DataflowPass::default(),
        &Target::Profile {
            program: &mutated,
            profile: &profile,
            config: None,
        },
    );
    assert!(
        diags.is_empty(),
        "no flow into the orphan, got {:?}",
        rule_set(&diags)
    );
}

// ------------------------------------------------------- dataflow.redundant-seed

#[test]
fn mut_redundant_seed_fires() {
    let w = workload();
    let (mutated, ids) = append_orphan_chain(&w.program, 2);
    let traces = vec![Trace {
        blocks: ids.clone(),
        weight: 3,
    }];
    let diags = run_pass(
        &DataflowPass::default(),
        &Target::Traces {
            program: &mutated,
            traces: &traces,
        },
    );
    assert_only_rule(&diags, "dataflow.redundant-seed", Severity::Warning);
    assert_eq!(diags[0].location, Location::Trace(0));
}

/// Negative control: a trace that touches even one reachable block is a
/// legitimate selection, not a redundant seed.
#[test]
fn mut_redundant_seed_negative_mixed_trace() {
    let w = workload();
    let (mutated, ids) = append_orphan_chain(&w.program, 1);
    let traces = vec![Trace {
        blocks: vec![mutated.entry(), ids[0]],
        weight: 3,
    }];
    let diags = run_pass(
        &DataflowPass::default(),
        &Target::Traces {
            program: &mutated,
            traces: &traces,
        },
    );
    assert!(
        diags.is_empty(),
        "mixed trace must not fire, got {:?}",
        rule_set(&diags)
    );
}

// --------------------------------------------------------------- registry wiring

/// The registry's default pass list includes `dataflow`, so plain
/// `verify_program` surfaces the unreachable-block warning too.
#[test]
fn registry_runs_dataflow_pass() {
    let (mutated, _) = append_orphan_chain(&workload().program, 1);
    let diags = fetchmech_analysis::verify_program(&mutated);
    assert!(
        diags
            .iter()
            .any(|d| d.rule_id == "dataflow.unreachable-block"),
        "registry should surface the dataflow rule, got {:?}",
        rule_set(&diags)
    );
}
