//! Worklist dataflow over [`Program`] CFGs, the concrete analyses built on
//! it, and the lint rules they derive.
//!
//! This is the analysis bedrock the ROADMAP's PGO passes (SSA, DCE,
//! superblock formation) will stand on. The pieces:
//!
//! * [`Analysis`] + [`solve`] — a generic iterative worklist solver. An
//!   analysis supplies a lattice (`Fact`, [`Analysis::meet`], the
//!   initial/boundary elements) and a monotone block [`Analysis::transfer`]
//!   function; the solver iterates to the fixpoint over a [`CfgView`] in
//!   reverse postorder (forward) or postorder (backward). See DESIGN.md §10
//!   for the contract a new analysis must satisfy.
//! * Concrete analyses: [`reachability`], [`Dominators`], [`Liveness`]
//!   (with [`dead_writes`]), [`ReachingDefs`], and per-block
//!   [`local_value_numbering`].
//! * [`DataflowPass`] — derived lint rules over registry targets:
//!   unreachable blocks, profile flow into unreachable code, redundant
//!   trace-selection seeds, and (in [`DataflowPass::advisory`] mode) dead
//!   register writes.
//!
//! Conservatism: the toy ISA has no calling convention, so liveness and
//! reaching definitions treat `Call`, `Return`, and `Halt` terminators as
//! reading every register — a value live into a call is never reported dead
//! no matter what the callee does. The soundness property (checked against
//! dynamic truth by `tests/dataflow_soundness.rs`) is one-sided: the
//! analyses may miss dead code, never invent it.

use fetchmech_compiler::{Profile, Trace};
use fetchmech_isa::{Block, BlockId, CfgView, Inst, OpClass, Program, Reg, Terminator};

use crate::diag::{DiagnosticSink, Location, Severity};
use crate::registry::{Pass, Target};

/// Rule ids emitted by [`DataflowPass`].
pub const DATAFLOW_RULES: &[&str] = &[
    RULE_UNREACHABLE,
    RULE_DEAD_WRITE,
    RULE_PROFILE_UNREACHABLE,
    RULE_REDUNDANT_SEED,
];

/// A basic block no path from the program entry can reach.
pub const RULE_UNREACHABLE: &str = "dataflow.unreachable-block";
/// A register write whose value is overwritten on every path before a read.
pub const RULE_DEAD_WRITE: &str = "dataflow.dead-write";
/// A profile that records executions of a statically unreachable block.
pub const RULE_PROFILE_UNREACHABLE: &str = "dataflow.profile-unreachable-flow";
/// A selected trace consisting entirely of unreachable blocks.
pub const RULE_REDUNDANT_SEED: &str = "dataflow.redundant-seed";

// ---------------------------------------------------------------------------
// The generic solver
// ---------------------------------------------------------------------------

/// Direction a dataflow analysis propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors to successors (e.g. reaching defs).
    Forward,
    /// Facts flow from successors to predecessors (e.g. liveness).
    Backward,
}

/// A dataflow analysis: a lattice of facts plus a monotone block transfer
/// function. See DESIGN.md §10 for the full contract; in short, `meet` must
/// be commutative/associative/idempotent, `init` must be the identity of
/// `meet` over the facts the solver ever produces, and `transfer` must be
/// monotone in its input — then the worklist iteration terminates at the
/// unique greatest fixpoint for any traversal order.
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;

    /// Which way facts propagate.
    fn direction(&self) -> Direction;

    /// The fact holding at the boundary (entry of an entry block for
    /// forward analyses; exit of an exit block for backward ones).
    fn boundary(&self) -> Self::Fact;

    /// The optimistic initial fact for every other block boundary.
    fn init(&self) -> Self::Fact;

    /// Folds `input` into `acc` (the lattice meet, in place).
    fn meet(&self, acc: &mut Self::Fact, input: &Self::Fact);

    /// Applies the block's effect to a fact flowing through it.
    fn transfer(&self, block: &Block, fact: &Self::Fact) -> Self::Fact;
}

/// Per-block boundary facts computed by [`solve`], indexed by [`BlockId`].
#[derive(Debug, Clone)]
pub struct Facts<F> {
    /// Fact at block entry (forward: after meeting predecessors' exits;
    /// backward: after applying the block's own transfer).
    pub entry: Vec<F>,
    /// Fact at block exit (forward: after the block's transfer; backward:
    /// after meeting successors' entries).
    pub exit: Vec<F>,
}

/// Runs `analysis` to its fixpoint over `view`.
///
/// `boundaries` are the blocks that receive [`Analysis::boundary`] as their
/// incoming fact from outside the graph (the program entry for forward
/// analyses over the whole program; every `Return`/`Halt` block for
/// backward liveness). Blocks not reachable along the analysis direction
/// keep [`Analysis::init`] at both boundaries.
pub fn solve<A: Analysis>(
    program: &Program,
    view: &CfgView,
    analysis: &A,
    boundaries: &[BlockId],
) -> Facts<A::Fact> {
    let n = program.num_blocks();
    let mut entry: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();
    let mut exit: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();
    let forward = analysis.direction() == Direction::Forward;
    let is_boundary = {
        let mut v = vec![false; n];
        for &b in boundaries {
            if (b.0 as usize) < n {
                v[b.0 as usize] = true;
            }
        }
        v
    };

    // Work in an order that tends to see producers before consumers:
    // reverse postorder from each boundary for forward analyses, and the
    // reverse of that for backward ones.
    let mut order: Vec<BlockId> = Vec::new();
    let mut seen = vec![false; n];
    for &b in boundaries {
        for blk in view.reverse_postorder(b) {
            if !seen[blk.0 as usize] {
                seen[blk.0 as usize] = true;
                order.push(blk);
            }
        }
    }
    // For backward analyses the natural seeds are the *sink* blocks;
    // traversing from the given boundaries still enumerates every block the
    // analysis can affect, we only need the reversed visit order.
    if !forward {
        order.reverse();
    }

    let mut on_list = vec![false; n];
    let mut worklist: std::collections::VecDeque<BlockId> = order.iter().copied().collect();
    for &b in &order {
        on_list[b.0 as usize] = true;
    }

    while let Some(b) = worklist.pop_front() {
        let idx = b.0 as usize;
        on_list[idx] = false;

        // Meet over the incoming side.
        let mut incoming = if is_boundary[idx] {
            analysis.boundary()
        } else {
            analysis.init()
        };
        let sources: &[BlockId] = if forward {
            view.predecessors(b)
        } else {
            view.successors(b)
        };
        for &s in sources {
            let fact = if forward {
                &exit[s.0 as usize]
            } else {
                &entry[s.0 as usize]
            };
            analysis.meet(&mut incoming, fact);
        }

        let outgoing = analysis.transfer(program.block(b), &incoming);
        let (into, out_of) = if forward {
            (&mut entry[idx], &mut exit[idx])
        } else {
            (&mut exit[idx], &mut entry[idx])
        };
        *into = incoming;
        if *out_of != outgoing {
            *out_of = outgoing;
            let dependents: &[BlockId] = if forward {
                view.successors(b)
            } else {
                view.predecessors(b)
            };
            for &d in dependents {
                if !on_list[d.0 as usize] {
                    on_list[d.0 as usize] = true;
                    worklist.push_back(d);
                }
            }
        }
    }

    Facts { entry, exit }
}

// ---------------------------------------------------------------------------
// Reachability
// ---------------------------------------------------------------------------

struct Reachability;

impl Analysis for Reachability {
    type Fact = bool;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> bool {
        true
    }

    fn init(&self) -> bool {
        false
    }

    fn meet(&self, acc: &mut bool, input: &bool) {
        *acc = *acc || *input;
    }

    fn transfer(&self, _block: &Block, fact: &bool) -> bool {
        *fact
    }
}

/// Per-block reachability from the program entry, following local edges
/// plus `Call → callee` edges (a callee body is reachable through its
/// callers).
#[must_use]
pub fn reachability(program: &Program) -> Vec<bool> {
    let view = CfgView::interprocedural(program);
    let facts = solve(program, &view, &Reachability, &[program.entry()]);
    facts.entry
}

// ---------------------------------------------------------------------------
// Dominators
// ---------------------------------------------------------------------------

// The dominator tree moved to `fetchmech_isa::dom` so the compiler's SSA
// construction can use it (this crate depends on the compiler, not the other
// way around); re-exported here for existing callers.
pub use fetchmech_isa::Dominators;

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

/// All 64 architectural registers, as a dense bitmask over
/// [`Reg::file_index`].
pub const ALL_REGS: u64 = u64::MAX;

fn reg_bit(r: Reg) -> u64 {
    1u64 << r.file_index()
}

/// Register-liveness analysis over the intra-procedural CFG.
///
/// Facts are 64-bit masks over [`Reg::file_index`]. `Call`, `Return`, and
/// `Halt` terminators conservatively read every register (no calling
/// convention exists to say otherwise), so cross-function values are always
/// live; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Liveness;

impl Liveness {
    /// Registers the terminator reads, as a mask — [`ALL_REGS`] for the
    /// conservative `Call`/`Return`/`Halt` cases.
    #[must_use]
    pub fn terminator_reads(terminator: &Terminator) -> u64 {
        match terminator {
            Terminator::CondBranch { srcs, .. } => srcs
                .iter()
                .flatten()
                .map(|&r| reg_bit(r))
                .fold(0, |a, b| a | b),
            Terminator::Call { .. } | Terminator::Return | Terminator::Halt => ALL_REGS,
            Terminator::FallThrough { .. } | Terminator::Jump { .. } => 0,
        }
    }
}

impl Analysis for Liveness {
    type Fact = u64;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> u64 {
        0
    }

    fn init(&self) -> u64 {
        0
    }

    fn meet(&self, acc: &mut u64, input: &u64) {
        *acc |= *input;
    }

    fn transfer(&self, block: &Block, live_out: &u64) -> u64 {
        let mut live = *live_out | Self::terminator_reads(&block.terminator);
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.dest {
                live &= !reg_bit(d);
            }
            for &src in inst.srcs.iter().flatten() {
                live |= reg_bit(src);
            }
        }
        live
    }
}

/// Computes live-in ([`Facts::entry`]) and live-out ([`Facts::exit`]) masks
/// for every block.
#[must_use]
pub fn liveness(program: &Program, view: &CfgView) -> Facts<u64> {
    // Every block is a potential sink (Return/Halt read everything through
    // the boundary of their own transfer), so seeding the traversal from
    // the function entries enumerates all blocks; the solver then iterates
    // backward to the fixpoint.
    let boundaries: Vec<BlockId> = program.func_entries().to_vec();
    solve(program, view, &Liveness, &boundaries)
}

/// A register write no path ever reads: `(block, instruction index, reg)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadWrite {
    /// Block containing the write.
    pub block: BlockId,
    /// Index of the writing instruction within the block body.
    pub inst: usize,
    /// The overwritten-before-read destination register.
    pub reg: Reg,
}

/// Finds writes whose value is dead at the writing instruction: on every
/// path from the write, the register is overwritten before any read
/// (conservatively treating calls/returns/halts as reads of everything).
#[must_use]
pub fn dead_writes(program: &Program, view: &CfgView, live: &Facts<u64>) -> Vec<DeadWrite> {
    let _ = view;
    let mut found = Vec::new();
    for block in program.blocks() {
        let mut live_mask =
            live.exit[block.id.0 as usize] | Liveness::terminator_reads(&block.terminator);
        for (idx, inst) in block.insts.iter().enumerate().rev() {
            if let Some(d) = inst.dest {
                if live_mask & reg_bit(d) == 0 {
                    found.push(DeadWrite {
                        block: block.id,
                        inst: idx,
                        reg: d,
                    });
                }
                live_mask &= !reg_bit(d);
            }
            for &src in inst.srcs.iter().flatten() {
                live_mask |= reg_bit(src);
            }
        }
    }
    found.sort_by_key(|d| (d.block.0, d.inst));
    found
}

// ---------------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------------

/// A definition site: block, body-instruction index, and the defined
/// register. (Registers written by materialized terminator instructions —
/// the call link register — exist only in layouts, not in the CFG, and are
/// not def sites.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Block containing the definition.
    pub block: BlockId,
    /// Index of the defining instruction within the block body.
    pub inst: usize,
    /// Register defined.
    pub reg: Reg,
}

/// Reaching-definitions solution: the set of [`DefSite`]s that may reach
/// each block boundary, as bitsets over [`ReachingDefs::defs`].
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites, in `(block, inst)` order; bit `i` of every
    /// bitset refers to `defs[i]`.
    pub defs: Vec<DefSite>,
    /// Per-block bitset of definitions reaching the block entry.
    pub entry: Vec<Vec<u64>>,
    /// Per-block bitset of definitions reaching the block exit.
    pub exit: Vec<Vec<u64>>,
}

struct ReachingAnalysis {
    words: usize,
    /// Per block: defs generated (last def per register wins).
    gen: Vec<Vec<u64>>,
    /// Per block: all defs of registers the block redefines.
    kill: Vec<Vec<u64>>,
}

impl Analysis for ReachingAnalysis {
    type Fact = Vec<u64>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> Vec<u64> {
        vec![0; self.words]
    }

    fn init(&self) -> Vec<u64> {
        vec![0; self.words]
    }

    fn meet(&self, acc: &mut Vec<u64>, input: &Vec<u64>) {
        for (a, b) in acc.iter_mut().zip(input) {
            *a |= *b;
        }
    }

    fn transfer(&self, block: &Block, fact: &Vec<u64>) -> Vec<u64> {
        let idx = block.id.0 as usize;
        fact.iter()
            .zip(&self.kill[idx])
            .zip(&self.gen[idx])
            .map(|((f, k), g)| (f & !k) | g)
            .collect()
    }
}

impl ReachingDefs {
    /// Computes reaching definitions over the intra-procedural CFG (calls
    /// conservatively kill nothing — the callee's definitions are *added*
    /// along the interprocedural edges it does not model, so this is a may
    /// analysis within each function).
    #[must_use]
    pub fn compute(program: &Program, view: &CfgView) -> Self {
        let n = program.num_blocks();
        let mut defs = Vec::new();
        for block in program.blocks() {
            for (idx, inst) in block.insts.iter().enumerate() {
                if let Some(reg) = inst.dest {
                    defs.push(DefSite {
                        block: block.id,
                        inst: idx,
                        reg,
                    });
                }
            }
        }
        let words = defs.len().div_ceil(64).max(1);
        // defs of each register, for kill sets.
        let mut by_reg: Vec<Vec<usize>> = vec![Vec::new(); 64];
        for (i, d) in defs.iter().enumerate() {
            by_reg[d.reg.file_index()].push(i);
        }
        let mut gen = vec![vec![0u64; words]; n];
        let mut kill = vec![vec![0u64; words]; n];
        let mut def_cursor = 0usize;
        for block in program.blocks() {
            let idx = block.id.0 as usize;
            // Last definition of each register in this block generates.
            let mut last: [Option<usize>; 64] = [None; 64];
            for inst in &block.insts {
                if let Some(reg) = inst.dest {
                    last[reg.file_index()] = Some(def_cursor);
                    def_cursor += 1;
                }
            }
            for (file, maybe_def) in last.iter().enumerate() {
                if let Some(def_id) = *maybe_def {
                    gen[idx][def_id / 64] |= 1u64 << (def_id % 64);
                    for &other in &by_reg[file] {
                        if other != def_id {
                            kill[idx][other / 64] |= 1u64 << (other % 64);
                        }
                    }
                }
            }
        }
        let analysis = ReachingAnalysis { words, gen, kill };
        let boundaries: Vec<BlockId> = program.func_entries().to_vec();
        let facts = solve(program, view, &analysis, &boundaries);
        Self {
            defs,
            entry: facts.entry,
            exit: facts.exit,
        }
    }

    /// Number of definitions reaching the entry of `block`.
    #[must_use]
    pub fn reaching_count(&self, block: BlockId) -> usize {
        self.entry[block.0 as usize]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// Local value numbering
// ---------------------------------------------------------------------------

/// Result of value-numbering one block: a value number per body
/// instruction, and the indices of provably redundant computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LvnResult {
    /// Value number assigned to each body instruction's result (instructions
    /// without a destination get a fresh number).
    pub value_numbers: Vec<u32>,
    /// Indices of pure instructions that recompute an already-available
    /// value (a later pass could rewrite them to copies).
    pub redundant: Vec<usize>,
}

fn lvn_pure(op: OpClass) -> bool {
    matches!(
        op,
        OpClass::IntAlu | OpClass::IntMul | OpClass::FpAdd | OpClass::FpMul
    )
}

/// Runs local value numbering over one block's body.
///
/// Only pure arithmetic ([`OpClass::IntAlu`], [`OpClass::IntMul`],
/// [`OpClass::FpAdd`], [`OpClass::FpMul`]) participates; loads, stores, and
/// control never match (memory and side effects are not value-numbered).
#[must_use]
pub fn local_value_numbering(block: &Block) -> LvnResult {
    use std::collections::HashMap;
    let mut next_vn: u32 = 64;
    // Registers start holding their own opaque value number.
    let mut reg_vn: [u32; 64] = core::array::from_fn(|i| i as u32);
    let mut table: HashMap<(OpClass, u32, u32, i8), u32> = HashMap::new();
    let mut value_numbers = Vec::with_capacity(block.insts.len());
    let mut redundant = Vec::new();

    for (idx, inst) in block.insts.iter().enumerate() {
        let vn = if lvn_pure(inst.op) && inst.dest.is_some() {
            let s = |r: Option<Reg>| r.map_or(u32::MAX, |r| reg_vn[r.file_index()]);
            let key = (inst.op, s(inst.srcs[0]), s(inst.srcs[1]), inst.imm);
            if let Some(&vn) = table.get(&key) {
                redundant.push(idx);
                vn
            } else {
                let vn = next_vn;
                next_vn += 1;
                table.insert(key, vn);
                vn
            }
        } else {
            let vn = next_vn;
            next_vn += 1;
            vn
        };
        if let Some(d) = inst.dest {
            reg_vn[d.file_index()] = vn;
        }
        value_numbers.push(vn);
    }
    LvnResult {
        value_numbers,
        redundant,
    }
}

/// Total redundant computations across all blocks, via
/// [`local_value_numbering`].
#[must_use]
pub fn redundant_computations(program: &Program) -> usize {
    program
        .blocks()
        .iter()
        .map(|b| local_value_numbering(b).redundant.len())
        .sum()
}

// ---------------------------------------------------------------------------
// The lint pass
// ---------------------------------------------------------------------------

/// Dataflow-derived lints over registry targets.
///
/// The default instance (registered by
/// [`Registry::with_default_passes`](crate::Registry::with_default_passes))
/// reports only defects that valid pipeline artifacts can never exhibit:
/// unreachable blocks, profile flow into unreachable code, and redundant
/// trace seeds. [`DataflowPass::advisory`] additionally reports dead
/// register writes at [`Severity::Info`] — generated workloads legitimately
/// contain a few (round-robin destination allocation wraps), so the
/// advisory rule is surfaced through `fetchmech-lint analyze` rather than
/// the default lint run, following the [`SanitizerCatalogPass`] precedent
/// of cataloging rules whose emission happens elsewhere.
///
/// [`SanitizerCatalogPass`]: crate::sanitize::SanitizerCatalogPass
#[derive(Debug, Clone, Copy, Default)]
pub struct DataflowPass {
    advisory: bool,
}

impl DataflowPass {
    /// A pass instance that also emits [`RULE_DEAD_WRITE`] findings.
    #[must_use]
    pub fn advisory() -> Self {
        Self { advisory: true }
    }
}

impl Pass for DataflowPass {
    fn name(&self) -> &'static str {
        "dataflow"
    }

    fn description(&self) -> &'static str {
        "worklist-dataflow lints: unreachable blocks, dead register writes, \
         profile flow into unreachable code, redundant trace seeds"
    }

    fn rules(&self) -> &'static [&'static str] {
        DATAFLOW_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(
            target,
            Target::Program(_) | Target::Profile { .. } | Target::Traces { .. }
        )
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        match target {
            Target::Program(p) => {
                check_unreachable(p, sink);
                if self.advisory {
                    check_dead_writes(p, sink);
                }
            }
            Target::Profile {
                program, profile, ..
            } => check_profile_reachability(program, profile, sink),
            Target::Traces { program, traces } => check_trace_seeds(program, traces, sink),
            _ => {}
        }
    }
}

/// Emits [`RULE_UNREACHABLE`] for every block the entry cannot reach.
pub fn check_unreachable(program: &Program, sink: &mut DiagnosticSink) {
    for (idx, reachable) in reachability(program).iter().enumerate() {
        if !reachable {
            let id = BlockId(idx as u32);
            sink.warn(
                RULE_UNREACHABLE,
                Location::Block(id),
                format!("block {id} is unreachable from the program entry"),
            );
        }
    }
}

/// Emits [`RULE_DEAD_WRITE`] (at [`Severity::Info`]) for every dead
/// register write.
pub fn check_dead_writes(program: &Program, sink: &mut DiagnosticSink) {
    let view = CfgView::local(program);
    let live = liveness(program, &view);
    for dw in dead_writes(program, &view, &live) {
        sink.emit(
            RULE_DEAD_WRITE,
            Severity::Info,
            Location::Block(dw.block),
            format!(
                "write to {} at instruction {} of block {} is overwritten on \
                 every path before any read",
                dw.reg, dw.inst, dw.block
            ),
        );
    }
}

/// Emits [`RULE_PROFILE_UNREACHABLE`] when a profile records executions of
/// a block static reachability proves can never run.
pub fn check_profile_reachability(program: &Program, profile: &Profile, sink: &mut DiagnosticSink) {
    let reachable = reachability(program);
    let n = program.num_blocks().min(profile.num_blocks());
    for (idx, reach) in reachable.iter().enumerate().take(n) {
        let id = BlockId(idx as u32);
        let count = profile.block_count(id);
        if !reach && count > 0 {
            sink.error(
                RULE_PROFILE_UNREACHABLE,
                Location::Block(id),
                format!("profile records {count} executions of unreachable block {id}"),
            );
        }
    }
}

/// Emits [`RULE_REDUNDANT_SEED`] for traces consisting entirely of
/// unreachable blocks — their seed was redundant, and laying them out
/// wastes cache space on code that can never run.
pub fn check_trace_seeds(program: &Program, traces: &[Trace], sink: &mut DiagnosticSink) {
    let reachable = reachability(program);
    let in_range = |b: BlockId| (b.0 as usize) < reachable.len();
    for (idx, trace) in traces.iter().enumerate() {
        if !trace.blocks.is_empty()
            && trace
                .blocks
                .iter()
                .all(|&b| in_range(b) && !reachable[b.0 as usize])
        {
            sink.warn(
                RULE_REDUNDANT_SEED,
                Location::Trace(idx),
                format!(
                    "trace {idx} ({} block(s) from seed weight {}) contains only \
                     unreachable code",
                    trace.blocks.len(),
                    trace.weight
                ),
            );
        }
    }
}

// Re-exported for tests that need an `Inst` in scope via this module.
#[allow(unused_imports)]
use Inst as _InstForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::ProgramBuilder;
    use fetchmech_workloads::suite;

    /// Diamond with a loop: entry -> {left, right} -> join -> entry | exit.
    fn diamond() -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let top = b.new_block(f);
        let left = b.new_block(f);
        let right = b.new_block(f);
        let join = b.new_block(f);
        let exit = b.new_block(f);
        b.push_inst(
            top,
            Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
        );
        b.push_inst(
            left,
            Inst::new(
                OpClass::IntAlu,
                Some(Reg::int(2)),
                [Some(Reg::int(1)), None],
            ),
        );
        b.push_inst(
            right,
            Inst::new(OpClass::IntAlu, Some(Reg::int(2)), [None, None]),
        );
        b.push_inst(
            join,
            Inst::new(
                OpClass::IntAlu,
                Some(Reg::int(3)),
                [Some(Reg::int(2)), None],
            ),
        );
        b.set_cond_branch(top, [Some(Reg::int(1)), None], left, right);
        b.set_terminator(left, Terminator::Jump { target: join });
        b.set_terminator(right, Terminator::Jump { target: join });
        b.set_cond_branch(join, [Some(Reg::int(3)), None], top, exit);
        b.set_terminator(exit, Terminator::Halt);
        b.set_entry(top);
        b.finish().expect("valid")
    }

    #[test]
    fn reachability_covers_whole_suite_program() {
        let w = suite::benchmark("compress").expect("known");
        assert!(reachability(&w.program).iter().all(|&r| r));
    }

    #[test]
    fn dominators_of_diamond() {
        let p = diamond();
        let view = CfgView::local(&p);
        let dom = Dominators::compute(&p, &view);
        let (top, left, right, join, exit) =
            (BlockId(0), BlockId(1), BlockId(2), BlockId(3), BlockId(4));
        assert_eq!(dom.idom(top), Some(top));
        assert_eq!(dom.idom(left), Some(top));
        assert_eq!(dom.idom(right), Some(top));
        // join's predecessors sit on disjoint paths: idom is the fork.
        assert_eq!(dom.idom(join), Some(top));
        assert_eq!(dom.idom(exit), Some(join));
        assert!(dom.dominates(top, exit));
        assert!(!dom.dominates(left, join));
        assert_eq!(dom.depth(exit), 2);
    }

    #[test]
    fn dominators_cover_suite_functions() {
        let w = suite::benchmark("li").expect("known");
        let view = CfgView::local(&w.program);
        let dom = Dominators::compute(&w.program, &view);
        for &entry in w.program.func_entries() {
            assert_eq!(dom.idom(entry), Some(entry));
        }
        // Every reachable block's idom dominates it.
        for b in w.program.blocks() {
            if let Some(parent) = dom.idom(b.id) {
                assert!(dom.dominates(parent, b.id));
            }
        }
    }

    #[test]
    fn liveness_flows_through_diamond() {
        let p = diamond();
        let view = CfgView::local(&p);
        let live = liveness(&p, &view);
        // r1 is read by left's body and top's branch: live out of top.
        assert_ne!(live.exit[0] & (1 << Reg::int(1).file_index()), 0);
        // r2 is live out of both left and right (read at join).
        assert_ne!(live.exit[1] & (1 << Reg::int(2).file_index()), 0);
        assert_ne!(live.exit[2] & (1 << Reg::int(2).file_index()), 0);
        // Nothing is live out of the halt block.
        assert_eq!(live.exit[4], 0);
    }

    #[test]
    fn dead_write_detected_and_real_writes_spared() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let blk = b.new_block(f);
        // r1 written, overwritten before any read; r2 written and read.
        b.push_inst(
            blk,
            Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
        );
        b.push_inst(
            blk,
            Inst::new(OpClass::IntAlu, Some(Reg::int(2)), [None, None]),
        );
        b.push_inst(
            blk,
            Inst::new(
                OpClass::IntAlu,
                Some(Reg::int(1)),
                [Some(Reg::int(2)), None],
            ),
        );
        b.set_cond_branch(blk, [Some(Reg::int(1)), None], blk, blk);
        b.set_entry(blk);
        let p = b.finish().expect("valid");
        let view = CfgView::local(&p);
        let live = liveness(&p, &view);
        let dead = dead_writes(&p, &view, &live);
        assert_eq!(
            dead,
            vec![DeadWrite {
                block: BlockId(0),
                inst: 0,
                reg: Reg::int(1),
            }]
        );
    }

    #[test]
    fn calls_keep_values_live() {
        // A write before a call is never dead: the callee may read anything.
        let mut b = ProgramBuilder::new();
        let f0 = b.begin_func();
        let f1 = b.begin_func();
        let a = b.new_block(f0);
        let ret = b.new_block(f0);
        let callee = b.new_block(f1);
        b.push_inst(
            a,
            Inst::new(OpClass::IntAlu, Some(Reg::int(7)), [None, None]),
        );
        // The return block overwrites r7 without reading it — still not dead,
        // because the call edge conservatively reads everything.
        b.push_inst(
            ret,
            Inst::new(OpClass::IntAlu, Some(Reg::int(7)), [None, None]),
        );
        b.set_terminator(
            a,
            Terminator::Call {
                callee,
                return_to: ret,
            },
        );
        b.set_terminator(ret, Terminator::Halt);
        b.set_terminator(callee, Terminator::Return);
        b.set_entry(a);
        let p = b.finish().expect("valid");
        let view = CfgView::local(&p);
        let live = liveness(&p, &view);
        let dead = dead_writes(&p, &view, &live);
        assert!(
            dead.iter().all(|d| d.block != BlockId(0)),
            "write ahead of a call must stay live, got {dead:?}"
        );
    }

    #[test]
    fn reaching_defs_merge_at_join() {
        let p = diamond();
        let view = CfgView::local(&p);
        let rd = ReachingDefs::compute(&p, &view);
        // Both left's and right's definitions of r2 reach the join entry.
        let join_entry = &rd.entry[3];
        let r2_defs: Vec<usize> = rd
            .defs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.reg == Reg::int(2))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(r2_defs.len(), 2);
        for i in r2_defs {
            assert_ne!(
                join_entry[i / 64] & (1 << (i % 64)),
                0,
                "def {i} reaches join"
            );
        }
        assert!(rd.reaching_count(BlockId(3)) >= 2);
    }

    #[test]
    fn lvn_spots_recomputed_values() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let blk = b.new_block(f);
        let add = |dest: u8, s0: u8, s1: u8| {
            Inst::new(
                OpClass::IntAlu,
                Some(Reg::int(dest)),
                [Some(Reg::int(s0)), Some(Reg::int(s1))],
            )
        };
        b.push_inst(blk, add(3, 1, 2));
        b.push_inst(blk, add(4, 1, 2)); // same value as inst 0
        b.push_inst(blk, add(5, 3, 4)); // uses equal VNs — fresh value
        b.push_inst(blk, add(1, 1, 2)); // still the old r1/r2 value: redundant
        b.push_inst(blk, add(6, 1, 2)); // r1 changed: NOT redundant
        b.set_terminator(blk, Terminator::Halt);
        b.set_entry(blk);
        let p = b.finish().expect("valid");
        let lvn = local_value_numbering(&p.blocks()[0]);
        assert_eq!(lvn.redundant, vec![1, 3]);
        assert_eq!(lvn.value_numbers[0], lvn.value_numbers[1]);
        assert_ne!(lvn.value_numbers[4], lvn.value_numbers[1]);
    }

    #[test]
    fn loads_are_never_value_numbered() {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let blk = b.new_block(f);
        let load = Inst::new(OpClass::Load, Some(Reg::int(3)), [Some(Reg::int(1)), None]);
        b.push_inst(blk, load);
        b.push_inst(blk, load);
        b.set_terminator(blk, Terminator::Halt);
        b.set_entry(blk);
        let p = b.finish().expect("valid");
        assert!(local_value_numbering(&p.blocks()[0]).redundant.is_empty());
    }

    #[test]
    fn default_pass_is_quiet_on_suite_program() {
        let w = suite::benchmark("espresso").expect("known");
        let mut sink = DiagnosticSink::new();
        DataflowPass::default().run(&Target::Program(&w.program), &mut sink);
        assert!(sink.diagnostics().is_empty());
    }
}
