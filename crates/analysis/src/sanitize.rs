//! The cycle-level sanitizer: microarchitectural invariant checks over the
//! packet/issue/resolve event stream of a running fetch simulation.
//!
//! The static passes in this crate verify artifacts *before* simulation; the
//! sanitizer verifies the simulation itself. The simulator (the `fetchmech`
//! core crate) feeds a [`CycleSanitizer`] one event per pipeline action —
//! every fetch packet, every dispatched or squashed instruction, every
//! mispredict resolution, plus a per-cycle snapshot of the out-of-order
//! core's self-audit — and the sanitizer replays the paper's delivery rules
//! as a redundant, independently-coded model. Divergence becomes a
//! [`Diagnostic`] with a stable `sanitize.*` rule id.
//!
//! The rule families:
//!
//! * **conservation** — every fetched instruction is issued or squashed
//!   exactly once, packets never exceed the issue width, and the end-of-run
//!   totals balance (`fetched == issued + squashed`);
//! * **fetch legality** — packets respect each scheme's geometry: one block
//!   for *sequential*, an adjacent pair for *interleaved*, conflict-free
//!   bank pairs for *banked*/*collapsing*, in-order delivery, forward-only
//!   intra-block collapsing, at most one inter-block crossing, and no
//!   delivery past a taken transfer the scheme cannot align;
//! * **predictor** — the BTB is consulted and trained exactly once per
//!   delivered control transfer, never while fetch is stalled;
//! * **core** — the out-of-order core's structural self-audit
//!   ([`OooCore::audit_invariants`](fetchmech_pipeline::OooCore::audit_invariants))
//!   holds every cycle;
//! * **dominance** — across schemes on one workload, effective issue rates
//!   obey the paper's ordering (perfect ≥ collapsing ≥ banked/interleaved ≥
//!   sequential), checked by [`check_scheme_dominance`].
//!
//! Every rule can be disabled individually through [`SanitizeConfig`]; the
//! per-rule report cap keeps a systematically-broken run from flooding the
//! sink.

use std::collections::VecDeque;

use fetchmech_bpred::BtbStats;
use fetchmech_isa::{Addr, OpClass};
use fetchmech_pipeline::{FetchPacket, FetchedInst, SchemeKind};

use crate::diag::{Diagnostic, Location, Severity};

/// Packet exceeds the machine's issue width.
pub const RULE_PACKET_WIDTH: &str = "sanitize.conservation.packet-width";
/// An instruction was issued or squashed that was never fetched, out of
/// order, or of the wrong kind (double issue, lost instruction, non-nop
/// squash).
pub const RULE_EXACTLY_ONCE: &str = "sanitize.conservation.exactly-once";
/// End-of-run totals do not balance (`fetched != issued + squashed`, or the
/// sanitizer and the fetch unit disagree on the delivered count).
pub const RULE_TOTALS: &str = "sanitize.conservation.totals";
/// Packet instructions are not a chained subsequence of the dynamic trace
/// (`prev.next_pc != cur.addr`).
pub const RULE_PACKET_ORDER: &str = "sanitize.fetch.packet-order";
/// A hardware packet touched more than two cache blocks, or returned to an
/// earlier block after moving on.
pub const RULE_LINE_PAIR: &str = "sanitize.fetch.line-pair";
/// The sequential scheme crossed a cache-block boundary in one cycle, or the
/// interleaved scheme's second block was not the next sequential block.
pub const RULE_SEQ_BOUNDARY: &str = "sanitize.fetch.sequential-boundary";
/// A banked scheme read two blocks of the same bank in one cycle.
pub const RULE_BANK_CONFLICT: &str = "sanitize.fetch.bank-conflict";
/// Delivery continued past a taken control transfer the scheme cannot fetch
/// across (or crossed blocks more than once in a cycle).
pub const RULE_TAKEN_BREAK: &str = "sanitize.fetch.taken-break";
/// The collapsing buffer collapsed a non-forward intra-block target.
pub const RULE_COLLAPSE: &str = "sanitize.fetch.collapse-legality";
/// A mispredicted instruction was not the last instruction of its packet.
pub const RULE_MISPREDICT_TAIL: &str = "sanitize.fetch.mispredict-tail";
/// The unit delivered instructions while stalled on a mispredict redirect
/// (before resolution, or within the fetch penalty after it).
pub const RULE_REDIRECT_STALL: &str = "sanitize.fetch.redirect-stall";
/// An instruction was fetched past the machine's branch-speculation depth.
pub const RULE_SPEC_DEPTH: &str = "sanitize.fetch.spec-depth";
/// BTB lookup/update counts diverged from the delivered control transfers.
pub const RULE_PREDICTOR: &str = "sanitize.predictor.update-accounting";
/// The out-of-order core's structural self-audit failed.
pub const RULE_CORE_STATE: &str = "sanitize.core.state";
/// Per-workload effective issue rates violate the paper's scheme ordering.
pub const RULE_DOMINANCE: &str = "sanitize.dominance.scheme-order";
/// A measured EIR exceeds the static fetch-geometry upper bound computed by
/// [`crate::geometry::analyze_geometry`] from the program, layout, and
/// machine model alone.
pub const RULE_STATIC_BOUND: &str = "sanitize.static_bound";

/// Every sanitizer rule id, with a one-line summary (the `sanitize --list`
/// catalog).
pub const RULES: &[(&str, &str)] = &[
    (RULE_PACKET_WIDTH, "packets never exceed the issue width"),
    (
        RULE_EXACTLY_ONCE,
        "every fetched instruction is issued or squashed exactly once, in order",
    ),
    (
        RULE_TOTALS,
        "end-of-run totals balance: fetched == issued + squashed",
    ),
    (
        RULE_PACKET_ORDER,
        "packets chain through the trace: prev.next_pc == cur.addr",
    ),
    (
        RULE_LINE_PAIR,
        "hardware packets touch at most two cache blocks, never revisiting one",
    ),
    (
        RULE_SEQ_BOUNDARY,
        "sequential stays in one block; interleaved pairs adjacent blocks",
    ),
    (
        RULE_BANK_CONFLICT,
        "banked schemes never read two same-bank blocks in one cycle",
    ),
    (
        RULE_TAKEN_BREAK,
        "no delivery past a taken transfer the scheme cannot align",
    ),
    (
        RULE_COLLAPSE,
        "collapsing buffer only collapses forward intra-block targets",
    ),
    (
        RULE_MISPREDICT_TAIL,
        "a mispredicted transfer ends its packet",
    ),
    (
        RULE_REDIRECT_STALL,
        "no delivery while stalled on a mispredict redirect",
    ),
    (
        RULE_SPEC_DEPTH,
        "fetch never runs past the branch-speculation depth",
    ),
    (
        RULE_PREDICTOR,
        "BTB consulted and trained exactly once per delivered control transfer",
    ),
    (
        RULE_CORE_STATE,
        "the out-of-order core's structural self-audit holds every cycle",
    ),
    (
        RULE_DOMINANCE,
        "EIR ordering: perfect >= collapsing >= banked/interleaved >= sequential",
    ),
    (
        RULE_STATIC_BOUND,
        "measured EIR never exceeds the static fetch-geometry upper bound",
    ),
];

/// Absolute EIR slack tolerated by the dominance check: warm-up effects and
/// predictor-state noise make near-ties legitimate.
pub const DOMINANCE_TOLERANCE: f64 = 0.05;

/// Which rules run, and how loudly.
#[derive(Debug, Clone)]
pub struct SanitizeConfig {
    disabled: Vec<String>,
    /// Per-rule report cap: once a rule has fired this many times further
    /// findings are dropped (a systematically-broken run would otherwise
    /// flood the sink with one finding per cycle).
    pub max_reports_per_rule: usize,
    /// Absolute EIR slack for [`check_scheme_dominance`].
    pub dominance_tolerance: f64,
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        Self {
            disabled: Vec::new(),
            max_reports_per_rule: 8,
            dominance_tolerance: DOMINANCE_TOLERANCE,
        }
    }
}

impl SanitizeConfig {
    /// The default configuration: every rule enabled.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Disables one rule by id (unknown ids are ignored, so stale CLI flags
    /// degrade gracefully).
    pub fn disable(&mut self, rule: impl Into<String>) {
        self.disabled.push(rule.into());
    }

    /// Returns `true` if `rule` should run.
    #[must_use]
    pub fn is_enabled(&self, rule: &str) -> bool {
        !self.disabled.iter().any(|d| d == rule)
    }
}

/// The machine parameters the sanitizer replays delivery rules against.
///
/// Mirrors the simulator's `FetchConfig`, but lives here so the checker has
/// no dependency on the simulator it audits.
#[derive(Debug, Clone, Copy)]
pub struct FetchEnv {
    /// The alignment scheme under check.
    pub scheme: SchemeKind,
    /// Maximum instructions per packet.
    pub issue_rate: u32,
    /// Cache-block size in bytes.
    pub block_bytes: u64,
    /// Number of cache banks (`block_index % banks` is the bank map).
    pub banks: u32,
    /// Branch-speculation depth limit.
    pub spec_depth: u32,
    /// Cycles between mispredict resolution and the earliest redelivery.
    pub fetch_penalty: u32,
    /// `true` when the pipeline reports issue/squash events (full
    /// simulation); `false` for fetch-only EIR measurement, which skips the
    /// exactly-once ledger.
    pub track_issue: bool,
}

/// One not-yet-retired fetched instruction in the conservation ledger.
#[derive(Debug, Clone, Copy)]
struct PendingInst {
    addr: Addr,
    op: OpClass,
}

/// The cycle-level invariant engine. See the [module docs](self).
#[derive(Debug)]
pub struct CycleSanitizer {
    env: FetchEnv,
    cfg: SanitizeConfig,
    diags: Vec<Diagnostic>,
    /// Per-rule fire counts (parallel to [`RULES`]) for the report cap.
    fired: Vec<usize>,
    /// Fetched but not yet issued/squashed, in delivery order.
    pending: VecDeque<PendingInst>,
    fetched: u64,
    issued: u64,
    squashed: u64,
    /// BTB statistics observed at the previous packet event.
    prev_btb: BtbStats,
    /// Set after a packet ended mispredicted; cleared by
    /// [`CycleSanitizer::observe_resolved`].
    waiting_resolve: bool,
    /// Earliest cycle delivery may resume after the last resolution.
    resume_not_before: u64,
    /// `next_pc` of the last instruction of the previous packet, for
    /// cross-packet chaining of the correct-path trace.
    expect_pc: Option<Addr>,
}

impl CycleSanitizer {
    /// Creates a sanitizer with the default configuration.
    #[must_use]
    pub fn new(env: FetchEnv) -> Self {
        Self::with_config(env, SanitizeConfig::default())
    }

    /// Creates a sanitizer with an explicit rule configuration.
    #[must_use]
    pub fn with_config(env: FetchEnv, cfg: SanitizeConfig) -> Self {
        Self {
            env,
            cfg,
            diags: Vec::new(),
            fired: vec![0; RULES.len()],
            pending: VecDeque::new(),
            fetched: 0,
            issued: 0,
            squashed: 0,
            prev_btb: BtbStats::default(),
            waiting_resolve: false,
            resume_not_before: 0,
            expect_pc: None,
        }
    }

    /// The environment this sanitizer replays rules against.
    #[must_use]
    pub fn env(&self) -> &FetchEnv {
        &self.env
    }

    fn report(&mut self, rule: &'static str, cycle: u64, message: String) {
        if !self.cfg.is_enabled(rule) {
            return;
        }
        let idx = RULES
            .iter()
            .position(|(id, _)| *id == rule)
            .expect("rule id registered in RULES");
        if self.fired[idx] >= self.cfg.max_reports_per_rule {
            return;
        }
        self.fired[idx] += 1;
        self.diags.push(Diagnostic {
            rule_id: rule,
            severity: Severity::Error,
            location: Location::Cycle(cycle),
            message,
        });
    }

    fn bank_of(&self, block: Addr) -> u32 {
        (block.block_index(self.env.block_bytes) % u64::from(self.env.banks.max(1))) as u32
    }

    /// Observes one fetch-unit cycle. Must be called for *every* call the
    /// simulator makes into the fetch unit — empty packets carry stall
    /// information the redirect and predictor rules depend on.
    ///
    /// `unresolved_branches` is the in-flight predicted-conditional count the
    /// simulator passed to the unit; `btb` is the unit's BTB statistics
    /// *after* the cycle.
    pub fn observe_packet(
        &mut self,
        cycle: u64,
        unresolved_branches: u32,
        packet: &FetchPacket,
        btb: &BtbStats,
    ) {
        self.check_predictor_deltas(cycle, packet, btb);
        if packet.is_empty() {
            return;
        }
        self.check_redirect_discipline(cycle, packet);
        self.check_width_and_order(cycle, packet);
        self.check_spec_depth(cycle, unresolved_branches, packet);
        self.check_geometry(cycle, packet);
        self.check_taken_legality(cycle, packet);

        self.fetched += packet.len() as u64;
        if self.env.track_issue {
            for fi in &packet.insts {
                self.pending.push_back(PendingInst {
                    addr: fi.inst.addr,
                    op: fi.inst.op,
                });
            }
        }
        if packet.ends_mispredicted() {
            self.waiting_resolve = true;
            self.expect_pc = None; // redirect: chain restarts at the target
        } else {
            self.expect_pc = packet.insts.last().map(|fi| fi.inst.next_pc);
        }
    }

    /// Observes the pipeline reporting that the outstanding mispredict
    /// executed at `cycle`.
    pub fn observe_resolved(&mut self, cycle: u64) {
        if !self.waiting_resolve {
            self.report(
                RULE_REDIRECT_STALL,
                cycle,
                "mispredict resolution reported with no outstanding mispredict".to_string(),
            );
        }
        self.waiting_resolve = false;
        self.resume_not_before = cycle + u64::from(self.env.fetch_penalty);
    }

    /// Observes one instruction dispatched into the out-of-order core.
    pub fn observe_issue(&mut self, cycle: u64, fi: &FetchedInst) {
        self.retire_pending(cycle, fi, false);
    }

    /// Observes one instruction dropped at dispatch (nop squash: it consumed
    /// fetch bandwidth but never entered the core).
    pub fn observe_squash(&mut self, cycle: u64, fi: &FetchedInst) {
        self.retire_pending(cycle, fi, true);
    }

    /// Observes the out-of-order core's per-cycle structural self-audit.
    pub fn observe_core_state(&mut self, cycle: u64, audit: Result<(), String>) {
        if let Err(msg) = audit {
            self.report(
                RULE_CORE_STATE,
                cycle,
                format!("core self-audit failed: {msg}"),
            );
        }
    }

    /// Finalizes the run: checks end-of-run conservation totals against the
    /// fetch unit's own delivered count.
    pub fn finish(&mut self, cycle: u64, unit_delivered: u64) {
        if self.fetched != unit_delivered {
            self.report(
                RULE_TOTALS,
                cycle,
                format!(
                    "fetch unit reports {unit_delivered} delivered but packets summed to {}",
                    self.fetched
                ),
            );
        }
        if self.env.track_issue {
            if !self.pending.is_empty() {
                self.report(
                    RULE_TOTALS,
                    cycle,
                    format!(
                        "{} fetched instruction(s) were neither issued nor squashed (first: {} {:?})",
                        self.pending.len(),
                        self.pending[0].addr,
                        self.pending[0].op
                    ),
                );
            }
            if self.issued + self.squashed + self.pending.len() as u64 != self.fetched {
                self.report(
                    RULE_TOTALS,
                    cycle,
                    format!(
                        "conservation broken: fetched {} != issued {} + squashed {} + in-flight {}",
                        self.fetched,
                        self.issued,
                        self.squashed,
                        self.pending.len()
                    ),
                );
            }
        }
    }

    /// The findings so far.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// Consumes the sanitizer, returning its findings.
    #[must_use]
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Returns `true` if any error-severity finding was recorded.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        crate::diag::has_errors(&self.diags)
    }

    fn retire_pending(&mut self, cycle: u64, fi: &FetchedInst, squash: bool) {
        if !self.env.track_issue {
            return;
        }
        let verb = if squash { "squashed" } else { "issued" };
        let Some(head) = self.pending.pop_front() else {
            self.report(
                RULE_EXACTLY_ONCE,
                cycle,
                format!(
                    "{verb} {} {:?} but no fetched instruction is outstanding (double retire?)",
                    fi.inst.addr, fi.inst.op
                ),
            );
            return;
        };
        if head.addr != fi.inst.addr || head.op != fi.inst.op {
            self.report(
                RULE_EXACTLY_ONCE,
                cycle,
                format!(
                    "{verb} {} {:?} but the oldest outstanding fetch is {} {:?} (reorder or skip)",
                    fi.inst.addr, fi.inst.op, head.addr, head.op
                ),
            );
        }
        if squash {
            if head.op != OpClass::Nop {
                self.report(
                    RULE_EXACTLY_ONCE,
                    cycle,
                    format!("squashed a non-nop instruction {} {:?}", head.addr, head.op),
                );
            }
            self.squashed += 1;
        } else {
            self.issued += 1;
        }
    }

    fn check_predictor_deltas(&mut self, cycle: u64, packet: &FetchPacket, btb: &BtbStats) {
        let controls = packet
            .insts
            .iter()
            .filter(|fi| fi.inst.ctrl.is_some())
            .count() as u64;
        let d_lookups = btb.lookups.wrapping_sub(self.prev_btb.lookups);
        let d_updates = btb.updates.wrapping_sub(self.prev_btb.updates);
        if d_lookups != controls {
            self.report(
                RULE_PREDICTOR,
                cycle,
                format!(
                    "BTB looked up {d_lookups} time(s) for a packet with {controls} control transfer(s)"
                ),
            );
        }
        if d_updates != controls {
            self.report(
                RULE_PREDICTOR,
                cycle,
                format!(
                    "BTB trained {d_updates} time(s) for a packet with {controls} resolved control transfer(s)"
                ),
            );
        }
        self.prev_btb = *btb;
    }

    fn check_redirect_discipline(&mut self, cycle: u64, packet: &FetchPacket) {
        debug_assert!(!packet.is_empty());
        if self.waiting_resolve {
            self.report(
                RULE_REDIRECT_STALL,
                cycle,
                format!(
                    "delivered {} instruction(s) while an unresolved mispredict is outstanding",
                    packet.len()
                ),
            );
        } else if cycle < self.resume_not_before {
            self.report(
                RULE_REDIRECT_STALL,
                cycle,
                format!(
                    "delivered during the redirect penalty window (resume allowed at cycle {})",
                    self.resume_not_before
                ),
            );
        }
    }

    fn check_width_and_order(&mut self, cycle: u64, packet: &FetchPacket) {
        if packet.len() as u64 > u64::from(self.env.issue_rate) {
            self.report(
                RULE_PACKET_WIDTH,
                cycle,
                format!(
                    "packet of {} instruction(s) exceeds the issue width {}",
                    packet.len(),
                    self.env.issue_rate
                ),
            );
        }
        // In-order delivery: the packet (and the stream of packets between
        // redirects) chains through the dynamic trace.
        if let (Some(expect), Some(first)) = (self.expect_pc, packet.insts.first()) {
            if first.inst.addr != expect {
                self.report(
                    RULE_PACKET_ORDER,
                    cycle,
                    format!(
                        "packet starts at {} but the previous packet's next_pc was {expect}",
                        first.inst.addr
                    ),
                );
            }
        }
        for pair in packet.insts.windows(2) {
            if pair[1].inst.addr != pair[0].inst.next_pc {
                self.report(
                    RULE_PACKET_ORDER,
                    cycle,
                    format!(
                        "{} is followed by {} but its next_pc is {}",
                        pair[0].inst.addr, pair[1].inst.addr, pair[0].inst.next_pc
                    ),
                );
            }
        }
        // At most one — the last — may be mispredicted.
        for (i, fi) in packet.insts.iter().enumerate() {
            if fi.mispredicted && i + 1 != packet.len() {
                self.report(
                    RULE_MISPREDICT_TAIL,
                    cycle,
                    format!(
                        "mispredicted transfer at {} sits at position {i} of a {}-wide packet",
                        fi.inst.addr,
                        packet.len()
                    ),
                );
            }
            if fi.mispredicted && fi.inst.ctrl.is_none() {
                self.report(
                    RULE_MISPREDICT_TAIL,
                    cycle,
                    format!(
                        "non-control instruction {} flagged mispredicted",
                        fi.inst.addr
                    ),
                );
            }
        }
    }

    fn check_spec_depth(&mut self, cycle: u64, unresolved: u32, packet: &FetchPacket) {
        let mut conds = 0u32;
        for fi in &packet.insts {
            if unresolved + conds > self.env.spec_depth {
                self.report(
                    RULE_SPEC_DEPTH,
                    cycle,
                    format!(
                        "fetched {} with {} unresolved branch(es) against a speculation depth of {}",
                        fi.inst.addr,
                        unresolved + conds,
                        self.env.spec_depth
                    ),
                );
                break;
            }
            if fi.inst.is_cond_branch() {
                conds += 1;
            }
        }
    }

    /// Cache-block legality: collapse the packet to its sequence of distinct
    /// consecutive blocks and check it against the scheme's readable region.
    fn check_geometry(&mut self, cycle: u64, packet: &FetchPacket) {
        if self.env.scheme == SchemeKind::Perfect {
            return; // unlimited alignment: any block sequence is legal
        }
        let bs = self.env.block_bytes;
        let mut segments: Vec<Addr> = Vec::new();
        for fi in &packet.insts {
            let blk = fi.inst.addr.block_base(bs);
            if segments.last() != Some(&blk) {
                segments.push(blk);
            }
        }
        if segments.len() > 2 {
            // Covers both >2 distinct blocks and any revisit (A, B, A).
            self.report(
                RULE_LINE_PAIR,
                cycle,
                format!(
                    "packet touches block sequence {segments:?}; hardware reads at most one block pair per cycle"
                ),
            );
            return;
        }
        match self.env.scheme {
            SchemeKind::Sequential => {
                if segments.len() > 1 {
                    self.report(
                        RULE_SEQ_BOUNDARY,
                        cycle,
                        format!(
                            "sequential fetch crossed from block {} to {} in one cycle",
                            segments[0], segments[1]
                        ),
                    );
                }
            }
            SchemeKind::InterleavedSequential => {
                if segments.len() == 2 {
                    let next = segments[0].add_words(bs / fetchmech_isa::WORD_BYTES);
                    if segments[1] != next {
                        self.report(
                            RULE_SEQ_BOUNDARY,
                            cycle,
                            format!(
                                "interleaved pair must be sequential: got {} after {}, expected {next}",
                                segments[1], segments[0]
                            ),
                        );
                    }
                }
            }
            SchemeKind::BankedSequential | SchemeKind::CollapsingBuffer => {
                if segments.len() == 2 && self.bank_of(segments[0]) == self.bank_of(segments[1]) {
                    self.report(
                        RULE_BANK_CONFLICT,
                        cycle,
                        format!(
                            "blocks {} and {} map to bank {} and were read in one cycle",
                            segments[0],
                            segments[1],
                            self.bank_of(segments[0])
                        ),
                    );
                }
            }
            SchemeKind::Perfect => unreachable!("handled above"),
        }
    }

    /// Taken-transfer legality: which correctly-predicted taken transfers a
    /// scheme may keep fetching across within one cycle.
    fn check_taken_legality(&mut self, cycle: u64, packet: &FetchPacket) {
        if self.env.scheme == SchemeKind::Perfect {
            return;
        }
        let bs = self.env.block_bytes;
        let mut crossings = 0u32;
        for (i, pair) in packet.insts.windows(2).enumerate() {
            let (fi, next) = (&pair[0], &pair[1]);
            if !fi.inst.is_taken_control() {
                continue;
            }
            // fi is a non-last taken transfer the unit kept fetching across.
            let cur_blk = fi.inst.addr.block_base(bs);
            let next_blk = next.inst.addr.block_base(bs);
            match self.env.scheme {
                SchemeKind::Sequential | SchemeKind::InterleavedSequential => {
                    self.report(
                        RULE_TAKEN_BREAK,
                        cycle,
                        format!(
                            "{} scheme delivered past the taken transfer at {} (position {i})",
                            self.env.scheme.name(),
                            fi.inst.addr
                        ),
                    );
                }
                SchemeKind::BankedSequential => {
                    if next_blk == cur_blk {
                        self.report(
                            RULE_TAKEN_BREAK,
                            cycle,
                            format!(
                                "banked scheme cannot align the intra-block target of {}",
                                fi.inst.addr
                            ),
                        );
                    } else {
                        crossings += 1;
                    }
                }
                SchemeKind::CollapsingBuffer => {
                    if next_blk == cur_blk {
                        if next.inst.addr <= fi.inst.addr {
                            self.report(
                                RULE_COLLAPSE,
                                cycle,
                                format!(
                                    "collapsed a non-forward intra-block target: {} -> {}",
                                    fi.inst.addr, next.inst.addr
                                ),
                            );
                        }
                    } else {
                        crossings += 1;
                    }
                }
                SchemeKind::Perfect => unreachable!("handled above"),
            }
        }
        if crossings > 1 {
            self.report(
                RULE_TAKEN_BREAK,
                cycle,
                format!("{crossings} inter-block taken transfers crossed in one cycle (limit 1)"),
            );
        }
    }
}

/// Checks the paper's cross-scheme dominance ordering over measured
/// effective issue rates for one workload.
///
/// `eirs` maps each scheme to its measured EIR; missing schemes are skipped.
/// A lower scheme beating a strictly more capable one by more than
/// `tolerance` (absolute EIR) is an error — the alignment hardware can only
/// remove constraints, never add them.
#[must_use]
pub fn check_scheme_dominance(
    label: &str,
    eirs: &[(SchemeKind, f64)],
    tolerance: f64,
) -> Vec<Diagnostic> {
    // (more capable, less capable): the left must not lose by > tolerance.
    const ORDER: &[(SchemeKind, SchemeKind)] = &[
        (SchemeKind::Perfect, SchemeKind::CollapsingBuffer),
        (SchemeKind::CollapsingBuffer, SchemeKind::BankedSequential),
        (
            SchemeKind::CollapsingBuffer,
            SchemeKind::InterleavedSequential,
        ),
        (SchemeKind::BankedSequential, SchemeKind::Sequential),
        (SchemeKind::InterleavedSequential, SchemeKind::Sequential),
    ];
    let eir_of = |k: SchemeKind| eirs.iter().find(|(s, _)| *s == k).map(|&(_, e)| e);
    let mut diags = Vec::new();
    for &(hi, lo) in ORDER {
        let (Some(e_hi), Some(e_lo)) = (eir_of(hi), eir_of(lo)) else {
            continue;
        };
        if e_lo > e_hi + tolerance {
            diags.push(Diagnostic {
                rule_id: RULE_DOMINANCE,
                severity: Severity::Error,
                location: Location::Program,
                message: format!(
                    "{label}: {} EIR {e_lo:.3} exceeds {} EIR {e_hi:.3} (+{tolerance:.2} tolerance)",
                    lo.name(),
                    hi.name()
                ),
            });
        }
    }
    diags
}

/// Floating-point slack for [`check_static_bound`]: the bound and the
/// measurement are both short ratios of small integers, so anything beyond
/// rounding error is a real violation.
pub const STATIC_BOUND_TOLERANCE: f64 = 1e-9;

/// Checks measured EIRs against the static fetch-geometry upper bound
/// ([`RULE_STATIC_BOUND`]).
///
/// Each cell is `(scheme, measured EIR, static bound)` — the bound comes
/// from [`crate::geometry::analyze_geometry`] over the same program,
/// layout, and machine model the measurement ran on. The bound is sound for
/// *any* dynamic trace of that layout (see DESIGN.md §10), so a violation
/// is always a bug: either the simulator delivered a packet its scheme
/// cannot form, or the geometry model mis-describes the scheme.
#[must_use]
pub fn check_static_bound(
    label: &str,
    cells: &[(SchemeKind, f64, f64)],
    tolerance: f64,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for &(scheme, measured, bound) in cells {
        if measured > bound + tolerance {
            diags.push(Diagnostic {
                rule_id: RULE_STATIC_BOUND,
                severity: Severity::Error,
                location: Location::Program,
                message: format!(
                    "{label}: {} measured EIR {measured:.3} exceeds its static \
                     fetch-geometry bound {bound:.3}",
                    scheme.name()
                ),
            });
        }
    }
    diags
}

/// The registry entry documenting the sanitizer's rule family.
///
/// The sanitizer is event-driven — it audits a *running simulation*, not a
/// static artifact — so this pass applies to no [`Target`](crate::Target)
/// and never runs;
/// registering it gives the rules a catalog entry (`fetchmech-lint --list`)
/// and keeps their ids inside the registry's uniqueness check.
#[derive(Debug, Clone, Copy, Default)]
pub struct SanitizerCatalogPass;

/// Rule-id slice for [`SanitizerCatalogPass::rules`] (the trait wants a
/// `&'static [&'static str]`, [`RULES`] carries summaries too).
static RULE_IDS: &[&str] = &[
    RULE_PACKET_WIDTH,
    RULE_EXACTLY_ONCE,
    RULE_TOTALS,
    RULE_PACKET_ORDER,
    RULE_LINE_PAIR,
    RULE_SEQ_BOUNDARY,
    RULE_BANK_CONFLICT,
    RULE_TAKEN_BREAK,
    RULE_COLLAPSE,
    RULE_MISPREDICT_TAIL,
    RULE_REDIRECT_STALL,
    RULE_SPEC_DEPTH,
    RULE_PREDICTOR,
    RULE_CORE_STATE,
    RULE_DOMINANCE,
    RULE_STATIC_BOUND,
];

impl crate::registry::Pass for SanitizerCatalogPass {
    fn name(&self) -> &'static str {
        "sanitize"
    }

    fn description(&self) -> &'static str {
        "cycle-level microarchitectural invariants, driven by the simulator (see `fetchmech-lint sanitize`)"
    }

    fn rules(&self) -> &'static [&'static str] {
        RULE_IDS
    }

    fn applies(&self, _target: &crate::registry::Target<'_>) -> bool {
        false
    }

    fn run(&self, _target: &crate::registry::Target<'_>, _sink: &mut crate::diag::DiagnosticSink) {}
}

/// Runs the sanitizer against built-in corrupted event streams and returns
/// the findings — a self-check that the engine still catches what it claims
/// to catch (`fetchmech-lint sanitize --self-test`).
///
/// Each stream injects one microarchitectural bug; a healthy engine reports
/// at least one error per stream, under the expected rule id.
#[must_use]
pub fn self_test() -> Vec<Diagnostic> {
    use fetchmech_isa::{DynCtrl, DynInst};

    let env = |scheme: SchemeKind| FetchEnv {
        scheme,
        issue_rate: 4,
        block_bytes: 16,
        banks: 2,
        spec_depth: 4,
        fetch_penalty: 2,
        track_issue: false,
    };
    let alu = |addr: u64| DynInst::simple(Addr::new(addr), OpClass::IntAlu, None, [None, None]);
    let jmp = |addr: u64, target: u64| DynInst {
        addr: Addr::new(addr),
        op: OpClass::Jump,
        dest: None,
        srcs: [None, None],
        next_pc: Addr::new(target),
        ctrl: Some(DynCtrl {
            branch_id: None,
            taken: true,
            target: Addr::new(target),
            link: None,
        }),
    };
    let packet = |insts: &[DynInst]| FetchPacket {
        insts: insts
            .iter()
            .map(|&inst| FetchedInst {
                inst,
                mispredicted: false,
            })
            .collect(),
    };
    let mut diags = Vec::new();

    // Stream 1: sequential fetch crossing a block boundary (no control
    // transfers, so zero BTB deltas are the consistent baseline).
    let mut san = CycleSanitizer::new(env(SchemeKind::Sequential));
    san.observe_packet(
        0,
        0,
        &packet(&[alu(0x1008), alu(0x100c), alu(0x1010)]),
        &BtbStats::default(),
    );
    san.finish(1, 3);
    diags.extend(san.into_diagnostics());

    // Stream 2: banked scheme crossing into a same-bank block.
    let mut san = CycleSanitizer::new(env(SchemeKind::BankedSequential));
    let btb = BtbStats {
        lookups: 1,
        hits: 1,
        updates: 1,
        allocations: 0,
        evictions: 0,
    };
    san.observe_packet(0, 0, &packet(&[jmp(0x1000, 0x2000), alu(0x2000)]), &btb);
    san.finish(1, 2);
    diags.extend(san.into_diagnostics());

    // Stream 3: over-wide packet with a BTB that was never consulted for
    // its control transfer.
    let mut san = CycleSanitizer::new(env(SchemeKind::Perfect));
    san.observe_packet(
        0,
        0,
        &packet(&[
            alu(0x1000),
            alu(0x1004),
            alu(0x1008),
            jmp(0x100c, 0x1000),
            alu(0x1000),
        ]),
        &BtbStats::default(),
    );
    san.finish(1, 5);
    diags.extend(san.into_diagnostics());

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_catches_each_injected_bug() {
        let diags = self_test();
        for rule in [
            RULE_SEQ_BOUNDARY,
            RULE_BANK_CONFLICT,
            RULE_PACKET_WIDTH,
            RULE_PREDICTOR,
        ] {
            assert!(
                diags.iter().any(|d| d.rule_id == rule),
                "self-test stream failed to trigger {rule}: {diags:?}"
            );
        }
        assert!(crate::diag::has_errors(&diags));
    }

    #[test]
    fn dominance_flags_inverted_ordering_only() {
        let ok = check_scheme_dominance(
            "compress",
            &[
                (SchemeKind::Perfect, 3.1),
                (SchemeKind::CollapsingBuffer, 2.8),
                (SchemeKind::BankedSequential, 2.5),
                (SchemeKind::InterleavedSequential, 2.52), // within tolerance of nothing it must beat
                (SchemeKind::Sequential, 1.9),
            ],
            DOMINANCE_TOLERANCE,
        );
        assert!(ok.is_empty(), "{ok:?}");

        let bad = check_scheme_dominance(
            "compress",
            &[
                (SchemeKind::CollapsingBuffer, 2.0),
                (SchemeKind::Sequential, 2.6),
                (SchemeKind::BankedSequential, 2.4),
            ],
            DOMINANCE_TOLERANCE,
        );
        assert!(bad.iter().any(|d| d.rule_id == RULE_DOMINANCE), "{bad:?}");
    }

    #[test]
    fn disabled_rule_stays_silent() {
        let mut cfg = SanitizeConfig::new();
        cfg.disable(RULE_PACKET_WIDTH);
        let env = FetchEnv {
            scheme: SchemeKind::Perfect,
            issue_rate: 1,
            block_bytes: 16,
            banks: 2,
            spec_depth: 8,
            fetch_penalty: 2,
            track_issue: false,
        };
        let mut san = CycleSanitizer::with_config(env, cfg);
        let wide = FetchPacket {
            insts: (0..3)
                .map(|i| FetchedInst {
                    inst: fetchmech_isa::DynInst::simple(
                        Addr::from_word_index(i),
                        OpClass::IntAlu,
                        None,
                        [None, None],
                    ),
                    mispredicted: false,
                })
                .collect(),
        };
        san.observe_packet(0, 0, &wide, &BtbStats::default());
        assert!(
            !san.diagnostics()
                .iter()
                .any(|d| d.rule_id == RULE_PACKET_WIDTH),
            "{:?}",
            san.diagnostics()
        );
    }
}
