//! Wires the verifier passes into the debug-build hook slots exposed by
//! `fetchmech_isa::hooks` and `fetchmech_compiler::hooks`.
//!
//! After [`install_debug_hooks`] runs, every `Program`, `Layout`, `Profile`,
//! trace selection, and reorder produced anywhere in the process is verified
//! at its construction site (debug builds only); an invariant violation
//! panics with the full human-readable diagnostic report. The dynamic
//! trace-diff pass is *not* hooked — it executes tens of thousands of
//! instructions per check and is meant for explicit lint runs.

use fetchmech_compiler::{Optimized, Profile, Reordered, Trace};
use fetchmech_isa::{Layout, Program};

use crate::diag::{has_errors, report_human, Diagnostic, DiagnosticSink};

fn gate(diags: Vec<Diagnostic>) -> Result<(), String> {
    if has_errors(&diags) {
        Err(report_human(&diags))
    } else {
        Ok(())
    }
}

fn program_hook(program: &Program) -> Result<(), String> {
    gate(crate::verify_program(program))
}

fn layout_hook(program: &Program, layout: &Layout) -> Result<(), String> {
    gate(crate::verify_layout(program, layout))
}

fn profile_hook(program: &Program, profile: &Profile) -> Result<(), String> {
    gate(crate::verify_profile(program, profile, None))
}

fn traces_hook(program: &Program, traces: &[Trace]) -> Result<(), String> {
    gate(crate::verify_traces(program, traces))
}

fn reorder_hook(original: &Program, reordered: &Reordered) -> Result<(), String> {
    gate(crate::verify_transform(original, reordered))
}

/// Static translation validation only: the hook fires inside `optimize`,
/// where no profile or behaviour models are in scope, so flow conservation
/// and the dynamic trace checks are left to explicit `verify_optimized`
/// runs (the `fetchmech-lint opt --verify` path).
fn optimize_hook(original: &Program, optimized: &Optimized) -> Result<(), String> {
    let mut sink = DiagnosticSink::new();
    crate::optverify::check_opt_static(original, optimized, None, &mut sink);
    gate(sink.into_diagnostics())
}

/// Installs every verifier as a debug-build construction hook.
///
/// Idempotent and race-free: hook slots are first-install-wins, so calling
/// this from multiple tests or experiment entry points is safe. Returns
/// `true` if at least one hook was newly installed.
pub fn install_debug_hooks() -> bool {
    let mut any = false;
    any |= fetchmech_isa::hooks::install_program_hook(program_hook);
    any |= fetchmech_isa::hooks::install_layout_hook(layout_hook);
    any |= fetchmech_compiler::hooks::install_profile_hook(profile_hook);
    any |= fetchmech_compiler::hooks::install_traces_hook(traces_hook);
    any |= fetchmech_compiler::hooks::install_reorder_hook(reorder_hook);
    any |= fetchmech_compiler::hooks::install_optimize_hook(optimize_hook);
    any
}
