//! The static fetch-geometry analyzer: packet-break structure and a sound
//! per-scheme EIR upper bound, computed from a [`Program`] + [`Layout`] +
//! [`MachineModel`] alone — no simulation.
//!
//! The analyzer answers the question the compiler side of the paper keeps
//! asking: *how much issue bandwidth does this layout leave on the table,
//! before any dynamic effect?* Per block it reports cache-line straddles
//! and alignment-induced packet breaks; per scheme it reports the static
//! taken-branch break points and an **EIR upper bound** no run of the cycle
//! simulator may exceed.
//!
//! # Soundness of the bound
//!
//! EIR is delivered instructions over cycles, and every cycle delivers one
//! packet, so `EIR <= max packet size` over any finite trace. The bound is
//! the maximum, over every laid instruction address a packet could start
//! at, of the largest packet the scheme could form there under *best-case
//! dynamic state*: all cache accesses hit, all predictions are correct, no
//! unresolved branches are in flight, and — for the banked schemes — the
//! BTB-predicted successor block is whatever single different-bank block
//! most helps the packet. Conditional branches take the better of their two
//! directions; `ret` (statically unknown target) assumes the packet fills
//! to the issue width whenever the scheme could continue through it. Every
//! relaxation only grows packets, so the walk dominates any packet the
//! hardware model can form, and `measured EIR <= bound` holds for every
//! (workload, scheme, layout) cell. The cross-check lives in
//! [`check_static_bound`](crate::sanitize::check_static_bound)
//! (`sanitize.static_bound`).
//!
//! The walk mirrors the delivery rules in the simulator's fetch unit (and
//! DESIGN.md §10): bandwidth cap at the issue rate, speculation cap at
//! `spec_depth + 1` conditionals per packet, one-block regions for
//! sequential, forced next-sequential pairs for interleaved, one predicted
//! different-bank partner with at most one inter-block crossing for
//! banked/collapsing, forward intra-block collapsing for the collapsing
//! buffer, and no constraint for perfect.

use fetchmech_isa::{Addr, BlockId, Layout, OpClass, Program};
use fetchmech_pipeline::{MachineModel, SchemeKind};

/// Static geometry of one basic block's laid-out footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockGeometry {
    /// The block.
    pub block: BlockId,
    /// Address of the block's first laid instruction.
    pub start: Addr,
    /// Laid instructions belonging to the block (body + materialized
    /// terminator + trailing alignment padding).
    pub insts: u32,
    /// Cache lines the block's footprint touches.
    pub lines: u32,
    /// Cache-line boundaries the footprint crosses (`lines - 1`).
    pub straddles: u32,
    /// Word offset of the block start within its cache line (0 = aligned).
    pub entry_offset: u32,
}

/// Static per-scheme fetch geometry of a whole layout.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeGeometry {
    /// The scheme.
    pub scheme: SchemeKind,
    /// Sound static EIR upper bound: the largest packet the scheme could
    /// form anywhere in the layout under best-case dynamic state.
    pub eir_bound: f64,
    /// Mean best-case packet size over all block entry points — the static
    /// analogue of the paper's fetchable-instructions metric, and the
    /// number layout optimization is actually moving.
    pub mean_entry_packet: f64,
    /// Static control-transfer sites whose taken execution must end a
    /// packet under this scheme even in the best case.
    pub taken_breaks: u64,
    /// Alignment-induced packet breaks: summed over blocks, the extra
    /// packets (beyond the bandwidth-only minimum) needed to stream the
    /// block solo, caused purely by cache-line geometry.
    pub align_breaks: u64,
}

/// The full static-geometry report for one (program, layout, machine).
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryReport {
    /// Machine model name the geometry was computed against.
    pub machine: String,
    /// Per-block footprint geometry, indexed by block id.
    pub blocks: Vec<BlockGeometry>,
    /// Per-scheme geometry, in [`SchemeKind::ALL`] order.
    pub schemes: Vec<SchemeGeometry>,
}

impl GeometryReport {
    /// The scheme entry for `scheme`.
    #[must_use]
    pub fn scheme(&self, scheme: SchemeKind) -> &SchemeGeometry {
        self.schemes
            .iter()
            .find(|s| s.scheme == scheme)
            .expect("all schemes analyzed")
    }

    /// Total cache-line straddles across all blocks.
    #[must_use]
    pub fn total_straddles(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.straddles)).sum()
    }
}

/// Per-path walk state for the best-case packet search.
#[derive(Debug, Clone, Copy)]
struct Walk {
    len: u32,
    conds: u32,
    fetch_block: Addr,
    /// Committed second block, if any.
    second: Option<Addr>,
    /// Banked/collapsing only: the predicted successor has not been
    /// committed yet and may still be chosen freely.
    second_free: bool,
    in_second: bool,
    crossed: bool,
}

/// The analyzer: machine parameters plus the layout's instruction stream.
struct Analyzer<'a> {
    layout: &'a Layout,
    machine: &'a MachineModel,
    scheme: SchemeKind,
}

impl Analyzer<'_> {
    fn bs(&self) -> u64 {
        self.machine.block_bytes
    }

    fn bank_of(&self, block: Addr) -> u64 {
        block.block_index(self.bs()) % u64::from(self.scheme.banks().max(2))
    }

    /// Largest packet the scheme could deliver in one cycle starting at
    /// laid-instruction index `start`, under best-case dynamic state.
    fn best_packet(&self, start: usize) -> u32 {
        let first = self.layout.code()[start].addr;
        let fetch_block = first.block_base(self.bs());
        let second = match self.scheme {
            SchemeKind::Sequential | SchemeKind::Perfect => None,
            SchemeKind::InterleavedSequential => {
                Some(fetch_block.add_words(self.bs() / fetchmech_isa::WORD_BYTES))
            }
            // Deferred: committed at the walk's first departure from the
            // fetch block, to whatever different-bank block it departs to.
            SchemeKind::BankedSequential | SchemeKind::CollapsingBuffer => None,
        };
        self.walk(
            start,
            Walk {
                len: 0,
                conds: 0,
                fetch_block,
                second,
                second_free: self.scheme.predicts_second_block(),
                in_second: false,
                crossed: false,
            },
        )
    }

    /// Recursive best-case packet walk; depth is bounded by the issue rate.
    fn walk(&self, idx: usize, mut w: Walk) -> u32 {
        let code = self.layout.code();
        let Some(inst) = code.get(idx) else {
            // Off the end of the laid stream: no instruction exists here, so
            // no dynamic packet can continue (valid layouts end in control).
            return w.len;
        };
        if w.len >= self.machine.issue_rate {
            return w.len; // bandwidth
        }
        if w.conds > self.machine.spec_depth {
            return w.len; // speculation depth (best case: none in flight)
        }

        // Region admission.
        let blk = inst.addr.block_base(self.bs());
        if self.scheme != SchemeKind::Perfect {
            if blk == w.fetch_block && !w.in_second {
                // still in the fetch block
            } else if Some(blk) == w.second {
                w.in_second = true;
            } else if w.second_free && self.bank_of(blk) != self.bank_of(w.fetch_block) {
                // Commit the predicted successor to this block (fall-through
                // entry: the BTB predicted not-taken into the next line).
                w.second = Some(blk);
                w.second_free = false;
                w.in_second = true;
            } else {
                return w.len; // region end
            }
        }

        w.len += 1;
        let Some(ctrl) = inst.ctrl else {
            return self.walk(idx + 1, w);
        };
        if inst.op == OpClass::CondBranch {
            w.conds += 1;
            // Correct prediction lets either direction continue; the bound
            // takes the better one. (A mispredict ends the packet at len,
            // which both arms dominate.)
            let fall = self.walk(idx + 1, w);
            let taken = match ctrl.target {
                Some(t) => self.taken_continuation(inst.addr, t, w),
                None => w.len,
            };
            return fall.max(taken);
        }
        // Unconditional transfers (jump/call/halt have static targets; ret
        // does not) execute taken.
        match ctrl.target {
            Some(t) => self.taken_continuation(inst.addr, t, w),
            None => self.unknown_target_continuation(w),
        }
    }

    /// Continue the walk through a correctly-predicted taken transfer at
    /// `from` to static target `target`, or end the packet if the scheme
    /// cannot align it.
    fn taken_continuation(&self, from: Addr, target: Addr, mut w: Walk) -> u32 {
        let Some(tidx) = self.layout.index_of(target) else {
            return w.len;
        };
        if self.scheme == SchemeKind::Perfect {
            return self.walk(tidx, w);
        }
        if !self.scheme.crosses_taken() {
            return w.len; // sequential / interleaved break at-taken
        }
        let tblk = target.block_base(self.bs());
        let current = if w.in_second {
            w.second.expect("in_second implies a committed second")
        } else {
            w.fetch_block
        };
        if self.scheme.collapses_forward() && tblk == current && target > from {
            // Forward intra-block: the collapsing buffer squeezes the gap.
            return self.walk(tidx, w);
        }
        let crossable = !w.crossed
            && tblk != current
            && (w.second == Some(tblk)
                || (w.second_free && self.bank_of(tblk) != self.bank_of(w.fetch_block)));
        if crossable {
            w.second = Some(tblk);
            w.second_free = false;
            w.crossed = true;
            w.in_second = true;
            return self.walk(tidx, w);
        }
        w.len
    }

    /// Continue through a `ret` (statically unknown target): if the scheme
    /// could cross it in the best case, assume the packet fills to the
    /// issue width — a sound over-approximation of any real continuation.
    fn unknown_target_continuation(&self, w: Walk) -> u32 {
        let crossable = match self.scheme {
            SchemeKind::Perfect => true,
            SchemeKind::Sequential | SchemeKind::InterleavedSequential => false,
            SchemeKind::BankedSequential | SchemeKind::CollapsingBuffer => {
                // Best case: the dynamic target is exactly the predicted
                // different-bank partner, not yet crossed into.
                !w.crossed && (w.second_free || (!w.in_second && w.second.is_some()))
            }
        };
        if crossable {
            self.machine.issue_rate.max(w.len)
        } else {
            w.len
        }
    }

    /// Does a taken transfer at `from` (targeting `target`) break a packet
    /// even from the most favorable packet state (fresh region at `from`'s
    /// block, successor prediction free)?
    fn taken_breaks_at(&self, from: Addr, target: Option<Addr>) -> bool {
        if self.scheme == SchemeKind::Perfect {
            return false;
        }
        if !self.scheme.crosses_taken() {
            return true;
        }
        let Some(target) = target else {
            return false; // ret: best case the prediction crosses it
        };
        let fblk = from.block_base(self.bs());
        let tblk = target.block_base(self.bs());
        if tblk == fblk {
            // Intra-block: only a forward collapse can survive.
            return !(self.scheme.collapses_forward() && target > from);
        }
        self.bank_of(tblk) == self.bank_of(fblk)
    }

    /// Packets needed to stream `insts` straight-line instructions starting
    /// at `start` (no taken exits, all hits), minus the bandwidth-only
    /// minimum: the purely alignment-induced breaks.
    fn align_breaks_of(&self, start: Addr, insts: u64) -> u64 {
        if insts == 0 {
            return 0;
        }
        let w = u64::from(self.machine.insts_per_block());
        let mut remaining = insts;
        let mut offset = start.offset_words(self.bs());
        let mut packets = 0u64;
        while remaining > 0 {
            let take = u64::from(self.machine.straight_line_packet(self.scheme, offset));
            let take = take.min(remaining);
            remaining -= take;
            offset = (offset + take) % w;
            packets += 1;
        }
        let min_packets = insts.div_ceil(u64::from(self.machine.issue_rate));
        packets - min_packets
    }
}

/// Runs the static fetch-geometry analysis over one (program, layout,
/// machine) triple, covering every scheme in [`SchemeKind::ALL`].
#[must_use]
pub fn analyze_geometry(
    program: &Program,
    layout: &Layout,
    machine: &MachineModel,
) -> GeometryReport {
    let code = layout.code();
    let bs = machine.block_bytes;

    // Per-block footprints: count laid instructions per block (each block's
    // footprint is contiguous, starting at its block_addr).
    let mut insts_per_block = vec![0u32; program.num_blocks()];
    for inst in code {
        insts_per_block[inst.block.0 as usize] += 1;
    }
    let blocks: Vec<BlockGeometry> = (0..program.num_blocks())
        .map(|i| {
            let block = BlockId(i as u32);
            let start = layout.block_addr(block);
            let insts = insts_per_block[i];
            let lines = machine.lines_spanned(start, u64::from(insts)) as u32;
            BlockGeometry {
                block,
                start,
                insts,
                lines,
                straddles: lines.saturating_sub(1),
                entry_offset: start.offset_words(bs) as u32,
            }
        })
        .collect();

    let schemes = SchemeKind::ALL
        .into_iter()
        .map(|scheme| {
            let a = Analyzer {
                layout,
                machine,
                scheme,
            };
            let mut bound = 0u32;
            for idx in 0..code.len() {
                bound = bound.max(a.best_packet(idx));
                if bound >= machine.issue_rate {
                    break; // the walk is capped there; no need to keep looking
                }
            }
            let entry_sum: u64 = blocks
                .iter()
                .filter(|b| b.insts > 0)
                .map(|b| {
                    let idx = layout.index_of(b.start).expect("block start is laid");
                    u64::from(a.best_packet(idx))
                })
                .sum();
            let entries = blocks.iter().filter(|b| b.insts > 0).count().max(1);
            let taken_breaks = code
                .iter()
                .filter_map(|inst| inst.ctrl.map(|c| (inst.addr, c.target)))
                .filter(|&(from, target)| a.taken_breaks_at(from, target))
                .count() as u64;
            let align_breaks = blocks
                .iter()
                .map(|b| a.align_breaks_of(b.start, u64::from(b.insts)))
                .sum();
            SchemeGeometry {
                scheme,
                eir_bound: f64::from(bound),
                mean_entry_packet: entry_sum as f64 / entries as f64,
                taken_breaks,
                align_breaks,
            }
        })
        .collect();

    GeometryReport {
        machine: machine.name.clone(),
        blocks,
        schemes,
    }
}

/// Static predicted EIR under `scheme`: expected delivered instructions
/// per fetch cycle, from a profile-derived *restart* model of the layout.
///
/// The fetch stream is modeled as a sequence of straight-line *runs*: each
/// run begins where fetch redirects (a restart), streams layout-contiguous
/// instructions in scheme-sized packets ([`MachineModel::
/// straight_line_packet`]), and ends at the next redirect. `weights[b]` is
/// how often a run starts at block `b`'s entry (see the pass pipeline's
/// restart weighting) and `run_insts[b]` the expected laid-instruction
/// length of that run. The prediction is then
///
/// ```text
///              sum_b w_b * L_b
///   -------------------------------------------------------
///   sum_b w_b * (packets(entry_offset_b, L_b) + REDIRECT)
/// ```
///
/// — total instructions over total fetch cycles, where every run charges
/// its packet count *plus one redirect cycle* (`REDIRECT_CYCLES`): the
/// expected delivery gap while fetch steers to the run's start (BTB lookup,
/// amortized misprediction and miss costs). Unlike a mean of entry packets,
/// this credits transforms that make runs *longer and rarer* (branch
/// straightening, superblock formation) twice over: fewer restarts amortize
/// both the partial packet wasted at every run boundary and the redirect
/// charge itself. The banked schemes' across-taken crossing is ignored
/// (runs still end at every redirect), a consistent under-credit on both
/// sides of a delta; the perfect scheme has no geometry constraint and
/// predicts the issue rate outright.
#[must_use]
pub fn predicted_eir(
    program: &Program,
    layout: &Layout,
    machine: &MachineModel,
    scheme: SchemeKind,
    weights: &[f64],
    run_insts: &[f64],
) -> f64 {
    /// Expected extra fetch cycles charged per redirect (run start): the
    /// steering gap a taken transfer costs the delivery stream even when
    /// predicted, with misprediction and BTB-miss penalties amortized in.
    /// One cycle is deliberately coarse — the predictor is a *delta* model,
    /// and any constant redirect cost cancels between two layouts with the
    /// same restart flow while penalizing the one that restarts more.
    const REDIRECT_CYCLES: f64 = 1.0;
    if scheme == SchemeKind::Perfect {
        return f64::from(machine.issue_rate);
    }
    let mut insts = 0.0;
    let mut packets = 0.0;
    for i in 0..program.num_blocks() {
        let w = weights.get(i).copied().unwrap_or(0.0);
        let run = run_insts.get(i).copied().unwrap_or(0.0);
        if w <= 0.0 || run <= 0.0 {
            continue;
        }
        let mut offset = layout
            .block_addr(BlockId(i as u32))
            .offset_words(machine.block_bytes);
        let mut remaining = run;
        let mut cycles = 0.0;
        while remaining > 1e-9 {
            let take = f64::from(machine.straight_line_packet(scheme, offset));
            offset += take as u64;
            remaining -= take;
            cycles += 1.0;
        }
        insts += w * run;
        packets += w * (cycles + REDIRECT_CYCLES);
    }
    if packets == 0.0 {
        0.0
    } else {
        (insts / packets).min(f64::from(machine.issue_rate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_isa::{Inst, LayoutOptions, ProgramBuilder, Reg, Terminator};
    use fetchmech_workloads::suite;

    fn machine() -> MachineModel {
        MachineModel::p14()
    }

    /// One straight-line block of `n` ALU instructions ending in halt.
    fn straight(n: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let blk = b.new_block(f);
        for _ in 0..n {
            b.push_inst(
                blk,
                Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
            );
        }
        b.set_terminator(blk, Terminator::Halt);
        b.set_entry(blk);
        b.finish().expect("valid")
    }

    #[test]
    fn straight_line_bounds_by_scheme() {
        let p = straight(32);
        let layout = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        let m = machine();
        let report = analyze_geometry(&p, &layout, &m);
        // An aligned straight-line run: every scheme reaches the issue rate
        // from an aligned start (4 insts fit one 16-byte line).
        for s in &report.schemes {
            assert_eq!(s.eir_bound, 4.0, "{}", s.scheme);
        }
        // Sequential streaming an aligned block has no alignment breaks;
        // neither do the paired schemes.
        assert_eq!(report.scheme(SchemeKind::Sequential).align_breaks, 0);
        assert_eq!(report.scheme(SchemeKind::Perfect).taken_breaks, 0);
        // The halt is a taken transfer the at-taken schemes break on.
        assert!(report.scheme(SchemeKind::Sequential).taken_breaks >= 1);
    }

    #[test]
    fn misaligned_entry_caps_sequential_packets() {
        // Two blocks: a 1-inst block then a long block, so the second block
        // starts mid-line; sequential's entry packet there is < issue rate.
        let mut b = ProgramBuilder::new();
        let f = b.begin_func();
        let a = b.new_block(f);
        let long = b.new_block(f);
        b.push_inst(
            a,
            Inst::new(OpClass::IntAlu, Some(Reg::int(1)), [None, None]),
        );
        // 7 body insts + the materialized halt = 8 laid insts starting at
        // offset 1: sequential needs 3 packets (3, 4, 1) where bandwidth
        // alone needs 2 — one alignment-induced break.
        for _ in 0..7 {
            b.push_inst(
                long,
                Inst::new(OpClass::IntAlu, Some(Reg::int(2)), [None, None]),
            );
        }
        b.set_terminator(a, Terminator::FallThrough { next: long });
        b.set_terminator(long, Terminator::Halt);
        b.set_entry(a);
        let p = b.finish().expect("valid");
        let layout = Layout::natural(&p, LayoutOptions::new(16)).expect("layout");
        let m = machine();
        let report = analyze_geometry(&p, &layout, &m);
        let geo = &report.blocks[1];
        assert_eq!(geo.entry_offset, 1);
        assert!(geo.straddles >= 1, "long block straddles lines");
        // Sequential streaming the misaligned long block needs extra packets.
        assert!(report.scheme(SchemeKind::Sequential).align_breaks > 0);
        // The interleaved pair hides the straddle; its entry-packet mean is
        // at least sequential's.
        let seq = report.scheme(SchemeKind::Sequential).mean_entry_packet;
        let il = report
            .scheme(SchemeKind::InterleavedSequential)
            .mean_entry_packet;
        assert!(il >= seq, "interleaved {il} >= sequential {seq}");
    }

    #[test]
    fn bound_orders_match_scheme_capability() {
        // On real workload layouts the static bounds are ordered like the
        // schemes' capabilities (each extra mechanism only relaxes the walk).
        let w = suite::benchmark("compress").expect("known");
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let m = machine();
        let report = analyze_geometry(&w.program, &layout, &m);
        let bound = |s: SchemeKind| report.scheme(s).eir_bound;
        assert!(bound(SchemeKind::Sequential) <= bound(SchemeKind::InterleavedSequential));
        assert!(bound(SchemeKind::BankedSequential) <= bound(SchemeKind::CollapsingBuffer));
        assert!(bound(SchemeKind::CollapsingBuffer) <= bound(SchemeKind::Perfect));
        for s in &report.schemes {
            assert!(s.eir_bound <= f64::from(m.issue_rate));
            assert!(s.eir_bound >= 1.0, "{}: any start delivers >= 1", s.scheme);
        }
    }

    #[test]
    fn taken_breaks_decrease_with_capability() {
        let w = suite::benchmark("eqntott").expect("known");
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let report = analyze_geometry(&w.program, &layout, &machine());
        let breaks = |s: SchemeKind| report.scheme(s).taken_breaks;
        assert_eq!(breaks(SchemeKind::Perfect), 0);
        assert!(breaks(SchemeKind::CollapsingBuffer) <= breaks(SchemeKind::BankedSequential));
        assert!(breaks(SchemeKind::BankedSequential) <= breaks(SchemeKind::Sequential));
        // Sequential breaks at every control site.
        let ctrl_sites = layout.code().iter().filter(|i| i.ctrl.is_some()).count() as u64;
        assert_eq!(breaks(SchemeKind::Sequential), ctrl_sites);
    }

    #[test]
    fn block_footprints_cover_the_layout() {
        let w = suite::benchmark("ora").expect("known");
        let layout = Layout::natural(&w.program, LayoutOptions::new(16)).expect("layout");
        let report = analyze_geometry(&w.program, &layout, &machine());
        let total: u64 = report.blocks.iter().map(|b| u64::from(b.insts)).sum();
        assert_eq!(total, layout.code().len() as u64);
        for b in &report.blocks {
            assert_eq!(b.straddles, b.lines.saturating_sub(1));
        }
    }
}
