//! Structural verification of [`Program`]s and [`Layout`]s — the
//! LLVM-verifier-style invariants everything downstream assumes.

use std::collections::VecDeque;

use fetchmech_isa::{BlockId, Layout, OpClass, PadMode, Program, Terminator, WORD_BYTES};

use crate::diag::{DiagnosticSink, Location, Severity};
use crate::registry::{Pass, Target};

/// Rule ids emitted by [`ProgramPass`].
pub const PROGRAM_RULES: &[&str] = &[
    "prog.block-id-dense",
    "prog.func-valid",
    "prog.entry-valid",
    "prog.entry-reachable",
    "prog.terminator-total",
    "prog.edge-target",
    "prog.edge-in-func",
    "prog.branch-id-range",
    "prog.branch-id-unique",
    "prog.branch-id-unused",
    "prog.call-to-entry",
    "prog.body-no-control",
];

/// Structural verifier over a [`Program`]: id density, edge sanity,
/// reachability, branch-id bookkeeping, and terminator totality.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProgramPass;

impl Pass for ProgramPass {
    fn name(&self) -> &'static str {
        "structural-program"
    }

    fn description(&self) -> &'static str {
        "CFG invariants: block/function ids, edge targets, branch-id uniqueness, \
         entry reachability, terminator totality"
    }

    fn rules(&self) -> &'static [&'static str] {
        PROGRAM_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(
            target,
            Target::Program(_) | Target::Layout { .. } | Target::Transform { .. }
        )
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        match target {
            Target::Program(p) => check_program(p, sink),
            Target::Layout { program, .. } => check_program(program, sink),
            Target::Transform {
                original,
                reordered,
            } => {
                check_program(original, sink);
                check_program(&reordered.program, sink);
            }
            _ => {}
        }
    }
}

/// Runs every [`ProgramPass`] rule over `program`.
pub fn check_program(program: &Program, sink: &mut DiagnosticSink) {
    let n = program.num_blocks();
    let nf = program.num_funcs();
    let in_range = |b: BlockId| (b.0 as usize) < n;

    // prog.block-id-dense: stored ids must equal table indices.
    for (idx, b) in program.blocks().iter().enumerate() {
        if b.id.0 as usize != idx {
            sink.error(
                "prog.block-id-dense",
                Location::Block(b.id),
                format!("block at index {idx} carries id {}", b.id),
            );
        }
    }

    // prog.func-valid: function references and entry ownership.
    if nf == 0 {
        sink.error(
            "prog.func-valid",
            Location::Program,
            "program has no functions",
        );
    }
    for (fi, &fe) in program.func_entries().iter().enumerate() {
        if !in_range(fe) {
            sink.error(
                "prog.func-valid",
                Location::Func(fetchmech_isa::FuncId(fi as u32)),
                format!("function entry {fe} is out of range"),
            );
        } else if program.block(fe).func.0 as usize != fi {
            sink.error(
                "prog.func-valid",
                Location::Func(fetchmech_isa::FuncId(fi as u32)),
                format!("entry {fe} belongs to function {}", program.block(fe).func),
            );
        }
    }
    for b in program.blocks() {
        if b.func.0 as usize >= nf {
            sink.error(
                "prog.func-valid",
                Location::Block(b.id),
                format!("block references unknown function {}", b.func),
            );
        }
    }

    // prog.entry-valid: the program entry must exist and be its function's
    // entry (execution begins there; a mid-function entry would make the
    // halt-restart semantics re-enter a loop body).
    if !in_range(program.entry()) {
        sink.error(
            "prog.entry-valid",
            Location::Block(program.entry()),
            "program entry is out of range",
        );
        return; // Everything below needs a valid entry.
    }

    // prog.edge-target / prog.edge-in-func / prog.call-to-entry /
    // prog.branch-id-*: terminator edge checks.
    let num_branches = program.num_branches();
    let mut branch_uses: Vec<Vec<BlockId>> = vec![Vec::new(); num_branches as usize];
    for b in program.blocks() {
        let mut local_edge = |to: BlockId| {
            if !in_range(to) {
                sink.error(
                    "prog.edge-target",
                    Location::Block(b.id),
                    format!("edge {} -> {to} targets a nonexistent block", b.id),
                );
            } else if program.block(to).func != b.func {
                sink.error(
                    "prog.edge-in-func",
                    Location::Block(b.id),
                    format!(
                        "edge {} -> {to} crosses from {} into {}",
                        b.id,
                        b.func,
                        program.block(to).func
                    ),
                );
            }
        };
        match b.terminator {
            Terminator::FallThrough { next } => local_edge(next),
            Terminator::Jump { target } => local_edge(target),
            Terminator::CondBranch {
                id, taken, fall, ..
            } => {
                local_edge(taken);
                local_edge(fall);
                if id.0 >= num_branches {
                    sink.error(
                        "prog.branch-id-range",
                        Location::Branch(id),
                        format!(
                            "{} uses branch id {id} outside the allocated range 0..{num_branches}",
                            b.id
                        ),
                    );
                } else {
                    branch_uses[id.0 as usize].push(b.id);
                }
            }
            Terminator::Call { callee, return_to } => {
                local_edge(return_to);
                if !in_range(callee) {
                    sink.error(
                        "prog.edge-target",
                        Location::Block(b.id),
                        format!("call in {} targets nonexistent block {callee}", b.id),
                    );
                } else {
                    let cf = program.block(callee).func;
                    if program.func_entries().get(cf.0 as usize) != Some(&callee) {
                        sink.error(
                            "prog.call-to-entry",
                            Location::Block(b.id),
                            format!("{} calls {callee}, which is not a function entry", b.id),
                        );
                    }
                }
            }
            Terminator::Return | Terminator::Halt => {}
        }
        // prog.body-no-control: bodies are straight-line by construction.
        for inst in &b.insts {
            if inst.op.is_control() || inst.op == OpClass::Halt {
                sink.error(
                    "prog.body-no-control",
                    Location::Block(b.id),
                    format!("control op {} in the body of {}", inst.op, b.id),
                );
            }
        }
    }
    for (id, uses) in branch_uses.iter().enumerate() {
        let id = fetchmech_isa::BranchId(id as u32);
        if uses.len() > 1 {
            sink.error(
                "prog.branch-id-unique",
                Location::Branch(id),
                format!(
                    "branch id {id} is used by {} blocks ({})",
                    uses.len(),
                    uses.iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            );
        } else if uses.is_empty() {
            sink.error(
                "prog.branch-id-unused",
                Location::Branch(id),
                format!("allocated branch id {id} is not used by any block"),
            );
        }
    }

    // prog.entry-reachable: every block must be reachable from the program
    // entry, following intra-procedural edges plus call edges. Unreachable
    // code is dead weight the workload generators never emit; profiles and
    // trace selection silently treat it as cold, so flag it.
    let mut reachable = vec![false; n];
    let mut queue = VecDeque::new();
    let push = |q: &mut VecDeque<BlockId>, r: &mut Vec<bool>, b: BlockId| {
        if in_range(b) && !r[b.0 as usize] {
            r[b.0 as usize] = true;
            q.push_back(b);
        }
    };
    push(&mut queue, &mut reachable, program.entry());
    while let Some(b) = queue.pop_front() {
        let blk = program.block(b);
        for (_, succ) in blk.terminator.local_successors() {
            push(&mut queue, &mut reachable, succ);
        }
        if let Terminator::Call { callee, .. } = blk.terminator {
            push(&mut queue, &mut reachable, callee);
        }
    }
    for (idx, &r) in reachable.iter().enumerate() {
        if !r {
            sink.emit(
                "prog.entry-reachable",
                Severity::Warning,
                Location::Block(BlockId(idx as u32)),
                "block is unreachable from the program entry",
            );
        }
    }

    // prog.terminator-total: control flow must be able to leave every
    // function — some reachable block of the entry function must halt, and
    // every called function must contain a return. A function with neither
    // can never give control back, so any trace through it diverges.
    let mut func_exits = vec![false; nf];
    let mut func_called = vec![false; nf];
    for b in program.blocks() {
        match b.terminator {
            Terminator::Return | Terminator::Halt if (b.func.0 as usize) < nf => {
                func_exits[b.func.0 as usize] = true;
            }
            Terminator::Call { callee, .. } if in_range(callee) => {
                let cf = program.block(callee).func;
                if (cf.0 as usize) < nf {
                    func_called[cf.0 as usize] = true;
                }
            }
            _ => {}
        }
    }
    for (fi, &exits) in func_exits.iter().enumerate() {
        let entry_func = program.block(program.entry()).func.0 as usize == fi;
        if !exits && (entry_func || func_called[fi]) {
            sink.error(
                "prog.terminator-total",
                Location::Func(fetchmech_isa::FuncId(fi as u32)),
                "function has no return or halt: control can never leave it",
            );
        }
    }
}

/// Rule ids emitted by [`LayoutPass`].
pub const LAYOUT_RULES: &[&str] = &[
    "layout.order-permutation",
    "layout.addr-monotonic",
    "layout.addr-aligned",
    "layout.block-addr",
    "layout.target-resolves",
    "layout.ctrl-attr",
    "layout.pad-alignment",
    "layout.pad-accounting",
];

/// Structural verifier over a [`Layout`]: address monotonicity and
/// alignment, block-address consistency, target resolution, control
/// attributes, and §4.1 nop-padding alignment.
#[derive(Debug, Clone, Copy, Default)]
pub struct LayoutPass;

impl Pass for LayoutPass {
    fn name(&self) -> &'static str {
        "structural-layout"
    }

    fn description(&self) -> &'static str {
        "layout invariants: address monotonicity/alignment, block addresses, \
         branch-target resolution, cache-line padding"
    }

    fn rules(&self) -> &'static [&'static str] {
        LAYOUT_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(target, Target::Layout { .. })
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        if let Target::Layout { program, layout } = target {
            check_layout(program, layout, sink);
        }
    }
}

/// Runs every [`LayoutPass`] rule over `layout`.
pub fn check_layout(program: &Program, layout: &Layout, sink: &mut DiagnosticSink) {
    let n = program.num_blocks();

    // layout.order-permutation.
    let order = layout.order();
    let mut seen = vec![false; n];
    let mut order_ok = order.len() == n;
    if order.len() != n {
        sink.error(
            "layout.order-permutation",
            Location::Program,
            format!("layout order has {} entries for {n} blocks", order.len()),
        );
    }
    for &b in order {
        let idx = b.0 as usize;
        if idx >= n || seen[idx] {
            sink.error(
                "layout.order-permutation",
                Location::Block(b),
                format!("block {b} is duplicated or out of range in the layout order"),
            );
            order_ok = false;
        } else {
            seen[idx] = true;
        }
    }

    // layout.addr-monotonic / layout.addr-aligned: the code vector is a
    // contiguous, word-aligned, strictly increasing address sequence.
    let base = layout.options().base;
    if !base.byte().is_multiple_of(WORD_BYTES) {
        sink.error(
            "layout.addr-aligned",
            Location::Addr(base),
            format!("layout base {base} is not {WORD_BYTES}-byte aligned"),
        );
    }
    let mut prev = None;
    for inst in layout.code() {
        if !inst.addr.byte().is_multiple_of(WORD_BYTES) {
            sink.error(
                "layout.addr-aligned",
                Location::Addr(inst.addr),
                format!("instruction address {} is not word aligned", inst.addr),
            );
        }
        if let Some(p) = prev {
            let expect = fetchmech_isa::Addr::new(p).add_words(1);
            if inst.addr != expect {
                sink.error(
                    "layout.addr-monotonic",
                    Location::Addr(inst.addr),
                    format!(
                        "address {} does not follow {} (expected {expect})",
                        inst.addr,
                        fetchmech_isa::Addr::new(p)
                    ),
                );
            }
        } else if inst.addr != base {
            sink.error(
                "layout.addr-monotonic",
                Location::Addr(inst.addr),
                format!(
                    "first instruction at {} but layout base is {base}",
                    inst.addr
                ),
            );
        }
        prev = Some(inst.addr.byte());
    }

    // layout.block-addr: every block's recorded address matches its first
    // emitted instruction, and every instruction's block id is in range.
    let mut first_inst_addr = vec![None; n];
    for inst in layout.code() {
        let idx = inst.block.0 as usize;
        if idx >= n {
            sink.error(
                "layout.block-addr",
                Location::Addr(inst.addr),
                format!(
                    "instruction at {} belongs to out-of-range block {}",
                    inst.addr, inst.block
                ),
            );
            continue;
        }
        if first_inst_addr[idx].is_none() {
            first_inst_addr[idx] = Some(inst.addr);
        }
    }
    for (idx, first) in first_inst_addr.iter().enumerate() {
        let b = BlockId(idx as u32);
        if let Some(first) = first {
            if layout.block_addr(b) != *first {
                sink.error(
                    "layout.block-addr",
                    Location::Block(b),
                    format!(
                        "block address {} disagrees with first emitted instruction {first}",
                        layout.block_addr(b)
                    ),
                );
            }
        }
    }
    if order_ok {
        // Empty blocks (fully elided) must point at the next laid block.
        for (pos, &b) in order.iter().enumerate() {
            if first_inst_addr[b.0 as usize].is_some() {
                continue;
            }
            let next_addr = order[pos + 1..]
                .iter()
                .find_map(|&nb| first_inst_addr[nb.0 as usize])
                .unwrap_or_else(|| base.add_words(layout.code().len() as u64));
            if layout.block_addr(b) != next_addr {
                sink.error(
                    "layout.block-addr",
                    Location::Block(b),
                    format!(
                        "empty block address {} should equal the next block's {next_addr}",
                        layout.block_addr(b)
                    ),
                );
            }
        }
    }

    // layout.ctrl-attr + layout.target-resolves.
    for inst in layout.code() {
        let is_ctrl = inst.op.is_control() || inst.op == OpClass::Halt;
        match (&inst.ctrl, is_ctrl) {
            (None, true) => sink.error(
                "layout.ctrl-attr",
                Location::Addr(inst.addr),
                format!(
                    "control instruction {} at {} has no control attributes",
                    inst.op, inst.addr
                ),
            ),
            (Some(_), false) => sink.error(
                "layout.ctrl-attr",
                Location::Addr(inst.addr),
                format!(
                    "non-control {} at {} carries control attributes",
                    inst.op, inst.addr
                ),
            ),
            _ => {}
        }
        let Some(ctrl) = inst.ctrl else { continue };
        if (inst.op == OpClass::CondBranch) != ctrl.branch_id.is_some() {
            sink.error(
                "layout.ctrl-attr",
                Location::Addr(inst.addr),
                format!(
                    "branch-id attribute mismatch on {} at {}",
                    inst.op, inst.addr
                ),
            );
        }
        match inst.op {
            OpClass::CondBranch | OpClass::Jump | OpClass::Call | OpClass::Halt => {
                let Some(target) = ctrl.target else {
                    sink.error(
                        "layout.target-resolves",
                        Location::Addr(inst.addr),
                        format!("{} at {} has no static target", inst.op, inst.addr),
                    );
                    continue;
                };
                if layout.index_of(target).is_none() {
                    sink.error(
                        "layout.target-resolves",
                        Location::Addr(inst.addr),
                        format!(
                            "{} at {} targets {target}, outside the laid-out image",
                            inst.op, inst.addr
                        ),
                    );
                    continue;
                }
                // The target must be the address of the semantically right
                // block (or the entry for halt restarts).
                let expect = if (inst.block.0 as usize) < n {
                    match (inst.op, program.block(inst.block).terminator) {
                        (OpClass::CondBranch, Terminator::CondBranch { taken, .. }) => {
                            Some(layout.block_addr(taken))
                        }
                        (OpClass::Call, Terminator::Call { callee, .. }) => {
                            Some(layout.block_addr(callee))
                        }
                        (OpClass::Halt, _) => Some(layout.entry_addr()),
                        // Materialized jumps: either a Jump terminator's
                        // target or a cond-branch's compensation jump to its
                        // fall block.
                        (OpClass::Jump, Terminator::Jump { target: t })
                        | (OpClass::Jump, Terminator::FallThrough { next: t })
                        | (OpClass::Jump, Terminator::CondBranch { fall: t, .. }) => {
                            Some(layout.block_addr(t))
                        }
                        _ => None,
                    }
                } else {
                    None
                };
                match expect {
                    Some(e) if e != target => sink.error(
                        "layout.target-resolves",
                        Location::Addr(inst.addr),
                        format!(
                            "{} at {} targets {target} but its block's terminator resolves to {e}",
                            inst.op, inst.addr
                        ),
                    ),
                    None => sink.error(
                        "layout.target-resolves",
                        Location::Addr(inst.addr),
                        format!(
                            "{} at {} does not correspond to its block's terminator",
                            inst.op, inst.addr
                        ),
                    ),
                    _ => {}
                }
            }
            _ => {}
        }
    }

    // layout.pad-alignment: §4.1 — after a padded block, the next laid
    // block must start on a cache-block boundary.
    let bs = layout.options().block_bytes;
    let pads_after = |b: BlockId| match &layout.options().pad {
        PadMode::None => false,
        PadMode::PadAll => true,
        PadMode::PadTrace(ends) => ends.contains(&b),
    };
    if order_ok {
        for pair in order.windows(2) {
            if pads_after(pair[0]) {
                let addr = layout.block_addr(pair[1]);
                if !addr.byte().is_multiple_of(bs) {
                    sink.error(
                        "layout.pad-alignment",
                        Location::Block(pair[1]),
                        format!(
                            "block {} at {addr} must start on a {bs}-byte cache-block boundary \
                             (previous block {} is padded)",
                            pair[1], pair[0]
                        ),
                    );
                }
            }
        }
    }

    // layout.pad-accounting: stats vs. the instruction stream. Pad nops are
    // attributed to the block they follow; under PadMode::None there must be
    // none counted.
    let stats = layout.stats();
    if stats.total_insts != layout.code().len() {
        sink.error(
            "layout.pad-accounting",
            Location::Program,
            format!(
                "stats.total_insts {} disagrees with emitted code length {}",
                stats.total_insts,
                layout.code().len()
            ),
        );
    }
    if matches!(layout.options().pad, PadMode::None) && stats.pad_nops != 0 {
        sink.error(
            "layout.pad-accounting",
            Location::Program,
            format!("PadMode::None layout reports {} pad nops", stats.pad_nops),
        );
    }
    let nops = layout
        .code()
        .iter()
        .filter(|i| i.op == OpClass::Nop)
        .count();
    let body_nops: usize = program
        .blocks()
        .iter()
        .map(|b| b.insts.iter().filter(|i| i.op == OpClass::Nop).count())
        .sum();
    if nops != body_nops + stats.pad_nops {
        sink.error(
            "layout.pad-accounting",
            Location::Program,
            format!(
                "emitted nops ({nops}) != body nops ({body_nops}) + pad nops ({})",
                stats.pad_nops
            ),
        );
    }
}
