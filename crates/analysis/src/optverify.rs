//! Translation validation for the optimization pass pipeline.
//!
//! Every [`PassApplication`] the compiler's `optimize` records is checked
//! against independent re-derivations rather than trusted:
//!
//! * `opt.shape` — the relation maps have the right dimensions, originals
//!   stay in place, entries/functions are untouched, and the layout orders
//!   are permutations;
//! * `ssa.use-dominated` / `ssa.phi-arity` — the SSA well-formedness lint
//!   ([`check_ssa`]): every use is dominated by its definition, phi arms
//!   match the reachable predecessors exactly;
//! * `opt.body-preserved` — block bodies change only at the sites the pass
//!   *declared* (LVN rewrites, DCE removals), and exactly as declared;
//! * `opt.lvn-available` — each declared LVN rewrite is re-proved by an
//!   independent value-numbering walk: the copied-from register must still
//!   hold the redundant value at the rewrite site (the clobbered-holder
//!   trap);
//! * `opt.dce-dead` — the declared DCE removal set is re-derived with the
//!   analysis crate's *register*-liveness [`dead_writes`] closure (a
//!   different lattice than the compiler's SSA value liveness) and must
//!   match exactly; any dead write *remaining* after a DCE application is
//!   the promoted, error-severity `dataflow.dead-write`;
//! * `opt.origin-edges` — every after-program terminator maps onto its
//!   origin's terminator edge-for-edge through the relation (modulo
//!   branch-sense inversion with the flag toggled);
//! * `opt.flow-conserved` — every profile-weighted edge of the before
//!   program survives as some after edge with the same rel endpoints;
//! * `opt.trace-equiv` / `opt.trace-overlap` — dynamic observable-trace
//!   equivalence: the before and after programs are executed (duplicated
//!   branches aliased onto their origin behavior models via
//!   `BehaviorMap::with_origin`, sharing model, state, and RNG draws) and
//!   the projected streams must match after applying exactly the declared
//!   edit.
//!
//! The *origin maps themselves* ([`PassApplication::branch_origin_after`]
//! and friends) are deliberately not cross-checked statically: they are
//! semantic claims about which behavior model drives which branch, and the
//! dynamic layer is what validates them — corrupting an origin map diverges
//! the executed streams and trips `opt.trace-equiv`.

use std::collections::{HashMap, HashSet};

use fetchmech_compiler::{
    build_ssa, copy_op, lvn_pure, LvnRewrite, Optimized, PassApplication, PassEdit, Profile,
    SsaDef, SsaForm,
};
use fetchmech_isa::{
    BlockId, CfgView, Dominators, Inst, Layout, LayoutError, LayoutOptions, OpClass, Program, Reg,
    Terminator,
};
use fetchmech_pipeline::{MachineModel, SchemeKind};
use fetchmech_workloads::{InputId, Workload};

use crate::dataflow::{dead_writes, liveness, RULE_DEAD_WRITE};
use crate::diag::{DiagnosticSink, Location, Severity};
use crate::geometry::{analyze_geometry, predicted_eir, GeometryReport};
use crate::registry::{Pass, Target};

/// Rule ids emitted by [`OptVerifyPass`] (the residual-dead-write findings
/// reuse the dataflow pass's `dataflow.dead-write` id, promoted to error
/// severity here).
pub const OPT_RULES: &[&str] = &[
    "opt.shape",
    "ssa.use-dominated",
    "ssa.phi-arity",
    "opt.body-preserved",
    "opt.lvn-available",
    "opt.dce-dead",
    "opt.origin-edges",
    "opt.flow-conserved",
    "opt.trace-equiv",
    "opt.trace-overlap",
];

// ---------------------------------------------------------------------------
// SSA well-formedness lint
// ---------------------------------------------------------------------------

/// Site at which an SSA value must be available.
#[derive(Clone, Copy)]
enum UseSite {
    /// Body instruction `inst` of `block` (defs at earlier indices count).
    Body { block: BlockId, inst: usize },
    /// The terminator of `block` (all body defs count).
    Term(BlockId),
    /// The *end* of `block` (phi-argument availability on the edge out).
    EdgeOut(BlockId),
}

fn def_available(
    program: &Program,
    dom: &Dominators,
    form: &SsaForm,
    value: u32,
    site: UseSite,
) -> bool {
    let Some(def) = form.defs.get(value as usize) else {
        return false;
    };
    let (use_block, body_limit) = match site {
        UseSite::Body { block, inst } => (block, Some(inst)),
        UseSite::Term(block) | UseSite::EdgeOut(block) => (block, None),
    };
    match *def {
        SsaDef::Entry { func, .. } => {
            let entries = program.func_entries();
            let Some(&entry) = entries.get(func.0 as usize) else {
                return false;
            };
            dom.dominates(entry, use_block)
        }
        // Phi defs sit at the block head: they dominate everything in their
        // own block and everything the block dominates.
        SsaDef::Phi { block, .. } => block == use_block || dom.dominates(block, use_block),
        SsaDef::Inst { block, index } => {
            if block == use_block {
                body_limit.is_none_or(|limit| index < limit)
            } else {
                dom.dominates(block, use_block)
            }
        }
    }
}

/// The SSA well-formedness lint: every recorded use must be dominated by
/// its definition (`ssa.use-dominated`), and every phi's arms must match
/// the block's reachable predecessors exactly (`ssa.phi-arity`).
///
/// `view` must be [`CfgView::local`] of `program` and `dom` computed from
/// it; `form` is any SSA overlay claimed to describe `program` — including
/// a deliberately corrupted one, which is what the mutation tests feed in.
pub fn check_ssa(
    program: &Program,
    view: &CfgView,
    dom: &Dominators,
    form: &SsaForm,
    sink: &mut DiagnosticSink,
) {
    let n = program.num_blocks();
    if form.phis.len() != n
        || form.inst_uses.len() != n
        || form.inst_defs.len() != n
        || form.term_uses.len() != n
        || form.exit_live.len() != form.defs.len()
    {
        sink.error(
            "ssa.use-dominated",
            Location::Program,
            format!(
                "SSA overlay shape mismatch: program has {n} blocks, overlay \
                 has {}/{}/{}/{} phi/use/def/term tables and {} values with \
                 {} exit-live flags",
                form.phis.len(),
                form.inst_uses.len(),
                form.inst_defs.len(),
                form.term_uses.len(),
                form.defs.len(),
                form.exit_live.len()
            ),
        );
        return;
    }
    let is_entry: HashSet<BlockId> = program.func_entries().iter().copied().collect();

    for b in 0..n {
        let block = BlockId(b as u32);
        if dom.idom(block).is_none() {
            // Unreachable blocks carry no overlay; anything recorded for
            // them is unverifiable.
            continue;
        }

        // Body uses and defs.
        let insts = &program.block(block).insts;
        if form.inst_uses[b].len() != insts.len() || form.inst_defs[b].len() != insts.len() {
            sink.error(
                "ssa.use-dominated",
                Location::Block(block),
                format!(
                    "overlay records {} use rows / {} def rows for a {}-instruction block",
                    form.inst_uses[b].len(),
                    form.inst_defs[b].len(),
                    insts.len()
                ),
            );
            continue;
        }
        for (i, inst) in insts.iter().enumerate() {
            let want = inst.srcs.iter().flatten().count();
            if form.inst_uses[b][i].len() != want {
                sink.error(
                    "ssa.use-dominated",
                    Location::Block(block),
                    format!(
                        "instruction {i} reads {want} register(s) but the \
                         overlay records {} value use(s)",
                        form.inst_uses[b][i].len()
                    ),
                );
            }
            for &v in &form.inst_uses[b][i] {
                if !def_available(program, dom, form, v.0, UseSite::Body { block, inst: i }) {
                    sink.error(
                        "ssa.use-dominated",
                        Location::Block(block),
                        format!(
                            "value v{} used at instruction {i} of {block} is \
                             not dominated by its definition",
                            v.0
                        ),
                    );
                }
            }
            if let Some(v) = form.inst_defs[b][i] {
                let expected = SsaDef::Inst { block, index: i };
                if form.defs.get(v.0 as usize) != Some(&expected) {
                    sink.error(
                        "ssa.use-dominated",
                        Location::Block(block),
                        format!(
                            "instruction {i} of {block} claims to define v{} \
                             but the value's def site disagrees",
                            v.0
                        ),
                    );
                }
            } else if inst.dest.is_some() {
                sink.error(
                    "ssa.use-dominated",
                    Location::Block(block),
                    format!("destination write at instruction {i} of {block} defines no value"),
                );
            }
        }
        for &v in &form.term_uses[b] {
            if !def_available(program, dom, form, v.0, UseSite::Term(block)) {
                sink.error(
                    "ssa.use-dominated",
                    Location::Block(block),
                    format!(
                        "value v{} read by the terminator of {block} is not \
                         dominated by its definition",
                        v.0
                    ),
                );
            }
        }

        // Phi arity and arm availability. Unreachable predecessors never
        // push arms during renaming, so arms are compared against the
        // *reachable* predecessor set.
        let reachable_preds: Vec<BlockId> = view
            .predecessors(block)
            .iter()
            .copied()
            .filter(|&p| dom.idom(p).is_some())
            .collect();
        for (pi, phi) in form.phis[b].iter().enumerate() {
            let expected = SsaDef::Phi { block, index: pi };
            if form.defs.get(phi.value.0 as usize) != Some(&expected) {
                sink.error(
                    "ssa.use-dominated",
                    Location::Block(block),
                    format!(
                        "phi {pi} of {block} claims value v{} but the value's \
                         def site disagrees",
                        phi.value.0
                    ),
                );
            }
            let mut arg_preds: Vec<BlockId> = phi.args.iter().map(|&(p, _)| p).collect();
            arg_preds.sort_unstable();
            let mut want: Vec<BlockId> = reachable_preds.clone();
            want.sort_unstable();
            if arg_preds != want {
                sink.error(
                    "ssa.phi-arity",
                    Location::Block(block),
                    format!(
                        "phi for {} at {block} has arms from {arg_preds:?} \
                         but the reachable predecessors are {want:?}",
                        phi.reg
                    ),
                );
            }
            for &(p, v) in &phi.args {
                if dom.idom(p).is_none() {
                    continue; // already reported by the arity check
                }
                if !def_available(program, dom, form, v.0, UseSite::EdgeOut(p)) {
                    sink.error(
                        "ssa.use-dominated",
                        Location::Block(block),
                        format!(
                            "phi arm v{} from {p} into {block} is not \
                             available at the end of {p}",
                            v.0
                        ),
                    );
                }
            }
            match (phi.entry_arg, is_entry.contains(&block)) {
                (Some(v), true) => {
                    if (v.0 as usize) >= form.defs.len() {
                        sink.error(
                            "ssa.use-dominated",
                            Location::Block(block),
                            format!("caller-edge arm v{} is out of range", v.0),
                        );
                    }
                }
                (None, true) => sink.error(
                    "ssa.phi-arity",
                    Location::Block(block),
                    format!(
                        "phi for {} at function entry {block} is missing its \
                         implicit caller-edge arm",
                        phi.reg
                    ),
                ),
                (Some(_), false) => sink.error(
                    "ssa.phi-arity",
                    Location::Block(block),
                    format!(
                        "phi for {} at {block} carries a caller-edge arm but \
                         the block is not a function entry",
                        phi.reg
                    ),
                ),
                (None, false) => {}
            }
        }
    }
}

/// Builds the SSA overlay of `program` and lints it in one step.
pub fn check_program_ssa(program: &Program, sink: &mut DiagnosticSink) {
    let view = CfgView::local(program);
    let dom = Dominators::compute(program, &view);
    let form = build_ssa(program, &view, &dom);
    check_ssa(program, &view, &dom, &form, sink);
}

// ---------------------------------------------------------------------------
// Per-application static checks
// ---------------------------------------------------------------------------

fn is_permutation(order: &[BlockId], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &b in order {
        let i = b.0 as usize;
        if i >= n || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

/// `opt.shape`: relation-map dimensions and the originals-in-place,
/// entries-untouched, orders-are-permutations invariants every pass shares.
/// Returns `false` if the shape is too broken for dependent checks to run.
fn check_shape(app: &PassApplication, sink: &mut DiagnosticSink) -> bool {
    let before = &app.before;
    let after = &app.after;
    let mut ok = true;
    if app.rel_block.len() != after.num_blocks()
        || app.rel_branch.len() != after.num_branches() as usize
    {
        sink.error(
            "opt.shape",
            Location::Program,
            format!(
                "{}: relation maps have {}/{} entries for {} blocks / {} branches",
                app.pass,
                app.rel_block.len(),
                app.rel_branch.len(),
                after.num_blocks(),
                after.num_branches()
            ),
        );
        return false;
    }
    for (i, &b) in app.rel_block.iter().enumerate() {
        if (b.0 as usize) >= before.num_blocks() {
            sink.error(
                "opt.shape",
                Location::Block(BlockId(i as u32)),
                format!(
                    "{}: rel_block[{i}] = {b} is out of the before-program range",
                    app.pass
                ),
            );
            ok = false;
        } else if i < before.num_blocks() && b.0 as usize != i {
            sink.error(
                "opt.shape",
                Location::Block(BlockId(i as u32)),
                format!(
                    "{}: original block {i} was relocated to origin {b}",
                    app.pass
                ),
            );
            ok = false;
        }
    }
    for (i, &br) in app.rel_branch.iter().enumerate() {
        if br.0 >= before.num_branches() {
            sink.error(
                "opt.shape",
                Location::Branch(fetchmech_isa::BranchId(i as u32)),
                format!(
                    "{}: rel_branch[{i}] = {br} is out of the before-program range",
                    app.pass
                ),
            );
            ok = false;
        } else if (i as u32) < before.num_branches() && br.0 as usize != i {
            sink.error(
                "opt.shape",
                Location::Branch(fetchmech_isa::BranchId(i as u32)),
                format!(
                    "{}: original branch {i} was relocated to origin {br}",
                    app.pass
                ),
            );
            ok = false;
        }
    }
    if after.num_blocks() < before.num_blocks() {
        sink.error(
            "opt.shape",
            Location::Program,
            format!(
                "{}: pass dropped blocks ({} became {})",
                app.pass,
                before.num_blocks(),
                after.num_blocks()
            ),
        );
        ok = false;
    }
    if after.entry() != before.entry() || after.func_entries() != before.func_entries() {
        sink.error(
            "opt.shape",
            Location::Program,
            format!("{}: program entry or function entries changed", app.pass),
        );
        ok = false;
    }
    if !is_permutation(&app.order_before, before.num_blocks()) {
        sink.error(
            "opt.shape",
            Location::Program,
            format!(
                "{}: order_before is not a permutation of the before blocks",
                app.pass
            ),
        );
    }
    if !is_permutation(&app.order_after, after.num_blocks()) {
        sink.error(
            "opt.shape",
            Location::Program,
            format!(
                "{}: order_after is not a permutation of the after blocks",
                app.pass
            ),
        );
    }
    if app.block_origin_before.len() != before.num_blocks()
        || app.block_origin_after.len() != after.num_blocks()
        || app.branch_origin_before.len() != before.num_branches() as usize
        || app.branch_origin_after.len() != after.num_branches() as usize
    {
        sink.error(
            "opt.shape",
            Location::Program,
            format!(
                "{}: origin maps do not match the program dimensions",
                app.pass
            ),
        );
        ok = false;
    }
    ok
}

/// `opt.body-preserved`: after bodies equal before bodies through the block
/// relation, except at exactly the declared edit sites.
fn check_bodies(app: &PassApplication, sink: &mut DiagnosticSink) {
    let before = &app.before;
    let after = &app.after;

    // Declared per-site deltas, in before-program coordinates.
    let mut rewritten: HashMap<(u32, usize), &LvnRewrite> = HashMap::new();
    let mut removed_at: HashMap<u32, Vec<usize>> = HashMap::new();
    match &app.edit {
        PassEdit::Lvn { rewrites } => {
            for rw in rewrites {
                rewritten.insert((rw.block.0, rw.inst), rw);
            }
        }
        PassEdit::Dce { removed, .. } => {
            for site in removed {
                removed_at.entry(site.block.0).or_default().push(site.inst);
            }
        }
        PassEdit::Superblock { .. } | PassEdit::Straighten { .. } => {}
    }

    for a in 0..after.num_blocks() {
        let ab = BlockId(a as u32);
        let bb = app.rel_block[a];
        let mut expected: Vec<Inst> = before.block(bb).insts.clone();
        if let Some(sites) = removed_at.get(&bb.0) {
            let mut sites = sites.clone();
            sites.sort_unstable();
            for &i in sites.iter().rev() {
                if i < expected.len() {
                    expected.remove(i);
                } else {
                    sink.error(
                        "opt.body-preserved",
                        Location::Block(bb),
                        format!(
                            "{}: declared removal at instruction {i} of {bb} \
                             is out of range",
                            app.pass
                        ),
                    );
                }
            }
        }
        for (i, inst) in expected.iter_mut().enumerate() {
            if let Some(rw) = rewritten.get(&(bb.0, i)) {
                if rw.before != *inst {
                    sink.error(
                        "opt.body-preserved",
                        Location::Block(bb),
                        format!(
                            "{}: declared rewrite at instruction {i} of {bb} \
                             claims a different original instruction",
                            app.pass
                        ),
                    );
                }
                *inst = rw.after;
            }
        }
        if after.block(ab).insts != expected {
            sink.error(
                "opt.body-preserved",
                Location::Block(ab),
                format!(
                    "{}: body of {ab} differs from its origin {bb} beyond the \
                     declared edit",
                    app.pass
                ),
            );
        }
    }
}

/// `opt.lvn-available`: re-derives per-block value numbers over the before
/// program and proves each declared rewrite copied from a register that
/// still held the redundant value.
fn check_lvn_rewrites(app: &PassApplication, rewrites: &[LvnRewrite], sink: &mut DiagnosticSink) {
    const NUM_REGS: usize = 64;
    let before = &app.before;
    let mut by_block: HashMap<u32, Vec<&LvnRewrite>> = HashMap::new();
    for rw in rewrites {
        by_block.entry(rw.block.0).or_default().push(rw);
    }
    for (blk, mut rws) in by_block {
        let block = BlockId(blk);
        if (blk as usize) >= before.num_blocks() {
            sink.error(
                "opt.lvn-available",
                Location::Block(block),
                "declared rewrite in an out-of-range block",
            );
            continue;
        }
        rws.sort_by_key(|rw| rw.inst);
        let site: HashMap<usize, &LvnRewrite> = rws.iter().map(|rw| (rw.inst, *rw)).collect();

        let mut reg_vn = [0u32; NUM_REGS];
        for (i, vn) in reg_vn.iter_mut().enumerate() {
            *vn = i as u32;
        }
        let mut next_vn = NUM_REGS as u32;
        let mut table: Vec<((OpClass, u32, u32, i8), u32)> = Vec::new();

        for (i, inst) in before.block(block).insts.iter().enumerate() {
            let pure = lvn_pure(inst.op) && inst.dest.is_some();
            if !pure {
                if let Some(rw) = site.get(&i) {
                    sink.error(
                        "opt.lvn-available",
                        Location::Block(block),
                        format!(
                            "declared rewrite at instruction {} of {block} \
                             targets a non-mergeable instruction",
                            rw.inst
                        ),
                    );
                }
                if let Some(dest) = inst.dest {
                    reg_vn[dest.file_index()] = next_vn;
                    next_vn += 1;
                }
                continue;
            }
            let dest = inst.dest.expect("checked pure-with-dest");
            let vn_of = |r: Option<Reg>, regs: &[u32; NUM_REGS]| {
                r.map_or(u32::MAX, |r| regs[r.file_index()])
            };
            let key = (
                inst.op,
                vn_of(inst.srcs[0], &reg_vn),
                vn_of(inst.srcs[1], &reg_vn),
                inst.imm,
            );
            let prior = table.iter().find(|(k, _)| *k == key).map(|&(_, vn)| vn);
            if let Some(rw) = site.get(&i) {
                match prior {
                    None => sink.error(
                        "opt.lvn-available",
                        Location::Block(block),
                        format!(
                            "rewrite at instruction {i} of {block}: the \
                             computation is not redundant at this point"
                        ),
                    ),
                    Some(vn) => {
                        let holder = rw.after.srcs[0];
                        let holds = holder.is_some_and(|h| reg_vn[h.file_index()] == vn);
                        if !holds {
                            sink.error(
                                "opt.lvn-available",
                                Location::Block(block),
                                format!(
                                    "rewrite at instruction {i} of {block} \
                                     copies from {holder:?}, which no longer \
                                     holds the merged value (clobbered holder)"
                                ),
                            );
                        }
                        let well_formed = rw.after.op == copy_op(inst.op)
                            && rw.after.dest == Some(dest)
                            && rw.after.srcs[1].is_none()
                            && rw.after.imm == 0;
                        if !well_formed {
                            sink.error(
                                "opt.lvn-available",
                                Location::Block(block),
                                format!(
                                    "rewrite at instruction {i} of {block} is \
                                     not a well-formed copy of the original \
                                     destination"
                                ),
                            );
                        }
                    }
                }
            }
            let vn = prior.unwrap_or_else(|| {
                let vn = next_vn;
                next_vn += 1;
                table.push((key, vn));
                vn
            });
            reg_vn[dest.file_index()] = vn;
        }
    }
}

/// Independent DCE closure: iterated *register-liveness* [`dead_writes`]
/// (restricted to blocks reachable from their function entry), with removal
/// sites mapped back to the input program's coordinates — the same contract
/// as the compiler's SSA-based `dce`, derived on a different lattice.
#[must_use]
pub fn dead_write_closure(program: &Program) -> Vec<(BlockId, usize, Reg)> {
    let mut cur = program.clone();
    let mut index_map: Vec<Vec<usize>> = program
        .blocks()
        .iter()
        .map(|b| (0..b.insts.len()).collect())
        .collect();
    let mut removed = Vec::new();
    loop {
        let view = CfgView::local(&cur);
        let dom = Dominators::compute(&cur, &view);
        let live = liveness(&cur, &view);
        let sites: Vec<_> = dead_writes(&cur, &view, &live)
            .into_iter()
            .filter(|s| dom.idom(s.block).is_some())
            .collect();
        if sites.is_empty() {
            break;
        }
        let mut edit = cur.edit();
        for site in sites.iter().rev() {
            edit.insts_mut(site.block).remove(site.inst);
            removed.push((
                site.block,
                index_map[site.block.0 as usize].remove(site.inst),
                site.reg,
            ));
        }
        cur = edit
            .finish()
            .expect("dead-write removal preserves structure");
    }
    removed.sort_by_key(|&(b, i, _)| (b.0, i));
    removed
}

/// `opt.dce-dead` plus the promoted `dataflow.dead-write`: the declared
/// removal set must equal the independent register-liveness closure, and no
/// dead write may remain in reachable code after the pass.
fn check_dce_removals(
    app: &PassApplication,
    removed: &[fetchmech_compiler::DeadSite],
    sink: &mut DiagnosticSink,
) {
    let declared: Vec<(BlockId, usize, Reg)> =
        removed.iter().map(|s| (s.block, s.inst, s.reg)).collect();
    let independent = dead_write_closure(&app.before);
    if declared != independent {
        let detail = declared
            .iter()
            .find(|site| !independent.contains(site))
            .map_or_else(
                || {
                    independent
                        .iter()
                        .find(|site| !declared.contains(site))
                        .map_or_else(
                            || "the sets are permuted".to_string(),
                            |&(b, i, r)| {
                                format!("liveness proves ({b}, {i}, {r}) dead but DCE kept it")
                            },
                        )
                },
                |&(b, i, r)| format!("DCE removed ({b}, {i}, {r}) but liveness proves it live"),
            );
        sink.error(
            "opt.dce-dead",
            Location::Program,
            format!(
                "declared DCE removal set ({} sites) disagrees with the \
                 independent register-liveness closure ({} sites): {detail}",
                declared.len(),
                independent.len()
            ),
        );
    }
    // Promoted rule: after DCE, reachable code must be dead-write free.
    let after = &app.after;
    let view = CfgView::local(after);
    let dom = Dominators::compute(after, &view);
    let live = liveness(after, &view);
    for dw in dead_writes(after, &view, &live) {
        if dom.idom(dw.block).is_none() {
            continue;
        }
        sink.emit(
            RULE_DEAD_WRITE,
            Severity::Error,
            Location::Block(dw.block),
            format!(
                "dead write to {} at instruction {} of {} survived DCE",
                dw.reg, dw.inst, dw.block
            ),
        );
    }
}

/// `opt.origin-edges`: every after terminator must map edge-for-edge onto
/// its origin's terminator (same kind, same sources, related branch id),
/// allowing only the taken/fall swap with the inverted flag toggled.
fn check_origin_edges(app: &PassApplication, sink: &mut DiagnosticSink) {
    let before = &app.before;
    let after = &app.after;
    let rel = |b: BlockId| app.rel_block[b.0 as usize];
    for a in 0..after.num_blocks() {
        let ab = BlockId(a as u32);
        let bb = app.rel_block[a];
        let at = after.block(ab).terminator;
        let bt = before.block(bb).terminator;
        let fail = |sink: &mut DiagnosticSink, what: &str| {
            sink.error(
                "opt.origin-edges",
                Location::Block(ab),
                format!("{}: terminator of {ab} (origin {bb}) {what}", app.pass),
            );
        };
        match (bt, at) {
            (
                Terminator::CondBranch {
                    id,
                    srcs,
                    taken,
                    fall,
                    inverted,
                },
                Terminator::CondBranch {
                    id: id2,
                    srcs: srcs2,
                    taken: taken2,
                    fall: fall2,
                    inverted: inverted2,
                },
            ) => {
                if app.rel_branch[id2.0 as usize] != id || srcs != srcs2 {
                    fail(sink, "changed branch identity or sources");
                    continue;
                }
                let (t2, f2) = (rel(taken2), rel(fall2));
                if t2 == taken && f2 == fall {
                    if inverted != inverted2 {
                        fail(sink, "toggled the inverted flag without swapping edges");
                    }
                } else if t2 == fall && f2 == taken {
                    if inverted == inverted2 {
                        fail(sink, "swapped edges without toggling the inverted flag");
                    }
                } else {
                    fail(sink, "retargeted edges outside the origin relation");
                }
            }
            (Terminator::FallThrough { next }, Terminator::FallThrough { next: n2 })
            | (Terminator::Jump { target: next }, Terminator::Jump { target: n2 }) => {
                if rel(n2) != next {
                    fail(sink, "retargeted its successor outside the origin relation");
                }
            }
            (
                Terminator::Call { callee, return_to },
                Terminator::Call {
                    callee: c2,
                    return_to: r2,
                },
            ) => {
                if rel(c2) != callee || rel(r2) != return_to {
                    fail(sink, "changed its callee or return target");
                }
            }
            (Terminator::Return, Terminator::Return) | (Terminator::Halt, Terminator::Halt) => {}
            _ => fail(sink, "changed terminator kind"),
        }
    }
}

/// `opt.flow-conserved`: every profile-weighted edge of the before program
/// must survive as some after edge with the same rel endpoints.
fn check_flow(app: &PassApplication, profile: &Profile, sink: &mut DiagnosticSink) {
    let before = &app.before;
    let after = &app.after;
    // Project the original-program profile onto the before program.
    let block_count: Vec<u64> = app
        .block_origin_before
        .iter()
        .map(|&o| profile.block_count(o))
        .collect();
    let (taken, total): (Vec<u64>, Vec<u64>) = app
        .branch_origin_before
        .iter()
        .map(|&o| profile.branch_counts(o))
        .unzip();
    let prof = Profile::from_raw(block_count, taken, total);

    let mut surviving: HashSet<(u32, u32)> = HashSet::new();
    for blk in after.blocks() {
        let u = app.rel_block[blk.id.0 as usize];
        for (_, s) in blk.terminator.local_successors() {
            surviving.insert((u.0, app.rel_block[s.0 as usize].0));
        }
    }
    for blk in before.blocks() {
        for (succ, w) in prof.edge_weights(before, blk.id) {
            if w > 0.0 && !surviving.contains(&(blk.id.0, succ.0)) {
                sink.error(
                    "opt.flow-conserved",
                    Location::Block(blk.id),
                    format!(
                        "{}: edge {} -> {succ} carries profile weight {w:.0} \
                         but no after-program edge maps onto it",
                        app.pass, blk.id
                    ),
                );
            }
        }
    }
}

/// Statically validates one pass application (no execution).
pub fn check_application(app: &PassApplication, profile: &Profile, sink: &mut DiagnosticSink) {
    if !check_shape(app, sink) {
        return;
    }
    check_program_ssa(&app.after, sink);
    check_bodies(app, sink);
    match &app.edit {
        PassEdit::Lvn { rewrites } => check_lvn_rewrites(app, rewrites, sink),
        PassEdit::Dce { removed, .. } => check_dce_removals(app, removed, sink),
        PassEdit::Superblock { .. } | PassEdit::Straighten { .. } => {}
    }
    check_origin_edges(app, sink);
    check_flow(app, profile, sink);
}

// ---------------------------------------------------------------------------
// Dynamic per-application trace equivalence
// ---------------------------------------------------------------------------

type ProjectedInst = (OpClass, Option<Reg>, [Option<Reg>; 2]);
type SitedInst = (BlockId, usize, ProjectedInst);

fn collect_stream(workload: &Workload, layout: &Layout, insts: u64) -> Vec<SitedInst> {
    workload
        .executor(layout, InputId::TEST, insts)
        .filter_map(|i| {
            if i.ctrl.is_some() || i.op == OpClass::Nop {
                return None;
            }
            let laid = layout.inst_at(i.addr)?;
            let body = (i.addr.word_index() - layout.block_addr(laid.block).word_index()) as usize;
            Some((laid.block, body, (i.op, i.dest, i.srcs)))
        })
        .collect()
}

/// `opt.trace-equiv` / `opt.trace-overlap`: executes the before and after
/// programs of one application (behavior models aliased through the branch
/// origin maps, so duplicated branches share model, state, and RNG draws),
/// applies the *declared* edit to the before stream, and requires the
/// projected instruction streams to agree on their common prefix.
pub fn check_app_dynamic(
    workload: &Workload,
    app: &PassApplication,
    insts: u64,
    sink: &mut DiagnosticSink,
) {
    let opts = LayoutOptions::new(16);
    let (Ok(layout_b), Ok(layout_a)) = (
        Layout::natural(&app.before, opts.clone()),
        Layout::natural(&app.after, opts),
    ) else {
        sink.error(
            "opt.trace-equiv",
            Location::Program,
            format!("{}: before/after program fails to lay out", app.pass),
        );
        return;
    };
    let side = |program: &Program, origin: &[fetchmech_isa::BranchId]| Workload {
        spec: workload.spec.clone(),
        program: program.clone(),
        behaviors: workload.behaviors.with_origin(origin.to_vec()),
    };
    let wb = side(&app.before, &app.branch_origin_before);
    let wa = side(&app.after, &app.branch_origin_after);

    let before_stream = collect_stream(&wb, &layout_b, insts);
    let after_stream = collect_stream(&wa, &layout_a, insts);

    // Transform the before stream by exactly the declared edit.
    let expected: Vec<ProjectedInst> = match &app.edit {
        PassEdit::Lvn { rewrites } => {
            let rw: HashMap<(u32, usize), ProjectedInst> = rewrites
                .iter()
                .map(|r| {
                    (
                        (r.block.0, r.inst),
                        (r.after.op, r.after.dest, r.after.srcs),
                    )
                })
                .collect();
            before_stream
                .iter()
                .map(|&(b, i, p)| rw.get(&(b.0, i)).copied().unwrap_or(p))
                .collect()
        }
        PassEdit::Dce { removed, .. } => {
            let gone: HashSet<(u32, usize)> = removed.iter().map(|s| (s.block.0, s.inst)).collect();
            before_stream
                .iter()
                .filter(|(b, i, _)| !gone.contains(&(b.0, *i)))
                .map(|&(_, _, p)| p)
                .collect()
        }
        PassEdit::Superblock { .. } | PassEdit::Straighten { .. } => {
            before_stream.iter().map(|&(_, _, p)| p).collect()
        }
    };
    let actual: Vec<ProjectedInst> = after_stream.iter().map(|&(_, _, p)| p).collect();

    let n = expected.len().min(actual.len());
    if n < (insts as usize) / 4 {
        sink.warn(
            "opt.trace-overlap",
            Location::Program,
            format!(
                "{}: only {n} comparable instructions from a budget of \
                 {insts}; the equivalence check has low coverage",
                app.pass
            ),
        );
    }
    for (pos, (e, a)) in expected[..n].iter().zip(&actual[..n]).enumerate() {
        if e != a {
            sink.error(
                "opt.trace-equiv",
                Location::DynPos(pos),
                format!(
                    "{}: instruction streams diverge: the edited before \
                     stream executes {e:?}, the after program executes {a:?}",
                    app.pass
                ),
            );
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Whole-pipeline entry points
// ---------------------------------------------------------------------------

/// Statically validates a full pipeline result: application chaining, the
/// SSA lint on every program, and every per-application rule except the
/// dynamic trace checks. This is what the debug-build optimize hook runs
/// (without a profile, flow conservation is skipped).
pub fn check_opt_static(
    original: &Program,
    optimized: &Optimized,
    profile: Option<&Profile>,
    sink: &mut DiagnosticSink,
) {
    // Chain integrity.
    let mut prev = original;
    for (i, app) in optimized.applications.iter().enumerate() {
        if app.before != *prev {
            sink.error(
                "opt.shape",
                Location::Program,
                format!(
                    "application {i} ({}) does not consume the preceding program",
                    app.pass
                ),
            );
        }
        prev = &app.after;
    }
    if *prev != optimized.program {
        sink.error(
            "opt.shape",
            Location::Program,
            "the pipeline result is not the last application's output",
        );
    }
    if optimized.block_origin.len() != optimized.program.num_blocks()
        || optimized.branch_origin.len() != optimized.program.num_branches() as usize
        || !is_permutation(&optimized.order, optimized.program.num_blocks())
    {
        sink.error(
            "opt.shape",
            Location::Program,
            "pipeline origin maps or final order do not match the final program",
        );
    }

    check_program_ssa(original, sink);
    for app in &optimized.applications {
        if !check_shape(app, sink) {
            continue;
        }
        check_program_ssa(&app.after, sink);
        check_bodies(app, sink);
        match &app.edit {
            PassEdit::Lvn { rewrites } => check_lvn_rewrites(app, rewrites, sink),
            PassEdit::Dce { removed, .. } => check_dce_removals(app, removed, sink),
            PassEdit::Superblock { .. } | PassEdit::Straighten { .. } => {}
        }
        check_origin_edges(app, sink);
        if let Some(profile) = profile {
            check_flow(app, profile, sink);
        }
    }
}

/// Full translation validation: the static rules plus the dynamic
/// observable-trace equivalence of every application.
pub fn check_optimized(
    workload: &Workload,
    profile: &Profile,
    optimized: &Optimized,
    insts: u64,
    sink: &mut DiagnosticSink,
) {
    check_opt_static(&workload.program, optimized, Some(profile), sink);
    for app in &optimized.applications {
        check_app_dynamic(workload, app, insts, sink);
    }
}

// ---------------------------------------------------------------------------
// Static EIR delta
// ---------------------------------------------------------------------------

/// Per-scheme static predicted EIR (profile-weighted mean entry packet)
/// before and after the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEir {
    /// The fetch scheme.
    pub scheme: SchemeKind,
    /// Predicted EIR of the original program's natural layout.
    pub before: f64,
    /// Predicted EIR of the optimized program in its pipeline order.
    pub after: f64,
}

/// Static fetch-geometry comparison across the pipeline: the PR 6 analyzer
/// run on the natural layout of the original program versus the optimized
/// program laid out in its pipeline order, plus the profile-weighted
/// predicted-EIR deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct EirDelta {
    /// Geometry of the original program's natural layout.
    pub before: GeometryReport,
    /// Geometry of the optimized program in its pipeline layout order.
    pub after: GeometryReport,
    /// Profile-weighted predicted EIR per scheme, in [`SchemeKind::ALL`]
    /// order. Duplicated blocks inherit their origin's execution count
    /// through [`Optimized::block_origin`].
    pub weighted: Vec<WeightedEir>,
}

/// Packet-restart weight per block: executions that arrive by a fetch
/// redirect (taken branch, jump, call, return) rather than by streaming in
/// from the preceding block in layout order. A block whose layout
/// predecessor falls through into it (plain fall-through, or the fall side
/// of a conditional) is only "entered" by the residual taken-side traffic —
/// which is exactly what branch straightening and superblock formation
/// minimize on the hot path.
fn restart_weights(program: &Program, profile: &Profile, order: &[BlockId]) -> Vec<f64> {
    let mut w: Vec<f64> = (0..program.num_blocks())
        .map(|b| profile.block_count(BlockId(b as u32)) as f64)
        .collect();
    for win in order.windows(2) {
        let (u, v) = (win[0], win[1]);
        let inflow = match program.block(u).terminator {
            Terminator::FallThrough { next } if next == v => profile.block_count(u) as f64,
            Terminator::CondBranch { id, fall, .. } if fall == v => {
                profile.block_count(u) as f64 * (1.0 - profile.taken_prob(id))
            }
            _ => 0.0,
        };
        w[v.0 as usize] = (w[v.0 as usize] - inflow).max(0.0);
    }
    w
}

/// Expected laid-instruction length of the fetch run starting at each
/// block's entry: the block's own laid footprint plus, weighted by the
/// probability control actually falls through into the next block *in
/// layout order*, the run continuing there. Any other exit — a taken
/// conditional, a materialized jump, a call or return — redirects fetch and
/// ends the run (the matching event charges a restart in
/// [`restart_weights`]).
fn expected_runs(
    program: &Program,
    profile: &Profile,
    layout: &Layout,
    order: &[BlockId],
) -> Vec<f64> {
    let mut laid = vec![0.0f64; program.num_blocks()];
    for inst in layout.code() {
        laid[inst.block.0 as usize] += 1.0;
    }
    let mut runs = vec![0.0f64; program.num_blocks()];
    for (i, &u) in order.iter().enumerate().rev() {
        let cont = match program.block(u).terminator {
            Terminator::FallThrough { next } if order.get(i + 1) == Some(&next) => 1.0,
            Terminator::CondBranch { id, fall, .. } if order.get(i + 1) == Some(&fall) => {
                1.0 - profile.taken_prob(id)
            }
            _ => 0.0,
        };
        let next_run = order.get(i + 1).map_or(0.0, |v| runs[v.0 as usize]);
        runs[u.0 as usize] = laid[u.0 as usize] + cont * next_run;
    }
    runs
}

/// Computes the static EIR delta of a pipeline result under `machine`,
/// weighting block entry packets by how often `profile` says fetch
/// *restarts* there (see `restart_weights`).
///
/// `measured_after`, when given, is a profile collected on the *optimized*
/// program (e.g. by re-running the workload with origin-aliased behaviors)
/// and is used verbatim for the after side. Without it the input profile is
/// projected through the origin maps, which double-counts duplicated paths:
/// a copy inherits its origin's full count while the origin keeps it too,
/// so cold duplicate chains are weighted as if they were hot and the
/// predicted delta is biased *against* tail duplication.
///
/// # Errors
///
/// Propagates [`LayoutError`] if either side fails to lay out (cannot occur
/// for a valid pipeline result).
pub fn eir_delta(
    original: &Program,
    profile: &Profile,
    optimized: &Optimized,
    measured_after: Option<&Profile>,
    machine: &MachineModel,
) -> Result<EirDelta, LayoutError> {
    let opts = LayoutOptions::new(machine.block_bytes);
    let natural = Layout::natural(original, opts.clone())?;
    let tuned = Layout::new(&optimized.program, &optimized.order, opts)?;
    let natural_order: Vec<BlockId> = (0..original.num_blocks())
        .map(|b| BlockId(b as u32))
        .collect();
    let weights_before = restart_weights(original, profile, &natural_order);
    let projected;
    let profile_after = match measured_after {
        Some(p) => p,
        None => {
            projected = Profile::from_raw(
                optimized
                    .block_origin
                    .iter()
                    .map(|&o| profile.block_count(o))
                    .collect(),
                optimized
                    .branch_origin
                    .iter()
                    .map(|&o| profile.branch_counts(o).0)
                    .collect(),
                optimized
                    .branch_origin
                    .iter()
                    .map(|&o| profile.branch_counts(o).1)
                    .collect(),
            );
            &projected
        }
    };
    let weights_after = restart_weights(&optimized.program, profile_after, &optimized.order);
    let runs_before = expected_runs(original, profile, &natural, &natural_order);
    let runs_after = expected_runs(&optimized.program, profile_after, &tuned, &optimized.order);
    let weighted = SchemeKind::ALL
        .into_iter()
        .map(|scheme| WeightedEir {
            scheme,
            before: predicted_eir(
                original,
                &natural,
                machine,
                scheme,
                &weights_before,
                &runs_before,
            ),
            after: predicted_eir(
                &optimized.program,
                &tuned,
                machine,
                scheme,
                &weights_after,
                &runs_after,
            ),
        })
        .collect();
    Ok(EirDelta {
        before: analyze_geometry(original, &natural, machine),
        after: analyze_geometry(&optimized.program, &tuned, machine),
        weighted,
    })
}

// ---------------------------------------------------------------------------
// Registry pass
// ---------------------------------------------------------------------------

/// Translation validation of an optimization-pipeline result over
/// [`Target::Opt`]: static rules plus per-application dynamic trace
/// equivalence.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptVerifyPass;

impl Pass for OptVerifyPass {
    fn name(&self) -> &'static str {
        "optverify"
    }

    fn description(&self) -> &'static str {
        "pass-pipeline translation validation: SSA well-formedness, declared \
         edits re-proved, origin-edge isomorphism, profile flow conservation, \
         dynamic trace equivalence"
    }

    fn rules(&self) -> &'static [&'static str] {
        OPT_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(target, Target::Opt { .. })
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        if let Target::Opt {
            workload,
            profile,
            optimized,
            insts,
        } = target
        {
            check_optimized(workload, profile, optimized, *insts, sink);
        }
    }
}
