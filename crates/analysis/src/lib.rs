//! # fetchmech-analysis
//!
//! Static-analysis and IR-verification layer for the `fetchmech`
//! reproduction of the ISCA '95 fetch-mechanisms paper.
//!
//! The simulation pipeline trusts a lot of structure: control-flow graphs
//! with dense ids and stable [`BranchId`](fetchmech_isa::BranchId)s, layouts
//! whose addresses are contiguous and whose §4.1 nop padding actually aligns
//! blocks, profiles whose counts conserve flow, and compiler transforms that
//! change *placement* without changing *computation*. This crate makes that
//! structure checkable:
//!
//! * a [`Diagnostic`] model with stable rule ids, severities, and human/JSON
//!   reporters ([`report_human`]; the JSON reporter lives in the core
//!   crate's shared `fetchmech::json` module),
//! * a [`Registry`] of [`Pass`]es over typed [`Target`]s,
//! * three pass families: structural ([`structural::ProgramPass`],
//!   [`structural::LayoutPass`]), profile flow conservation
//!   ([`flow::FlowPass`]), and transform equivalence
//!   ([`transform::TracesPass`], [`transform::TransformPass`],
//!   [`transform::TraceDiffPass`]),
//! * translation validation for the compiler's SSA-era pass pipeline
//!   ([`optverify::OptVerifyPass`]): an SSA well-formedness lint, per-pass
//!   re-proof of every declared edit, profile flow conservation across each
//!   transform, and dynamic observable-trace equivalence
//!   ([`verify_optimized`]), plus the static EIR-delta report
//!   ([`eir_delta`]),
//! * debug-build construction hooks ([`install_debug_hooks`]) so every
//!   artifact built anywhere in the process is verified at its source,
//! * the cycle-level [`sanitize`] engine ([`CycleSanitizer`]), which audits
//!   a *running* simulation — packet geometry, issue/squash conservation,
//!   predictor accounting, and cross-scheme EIR dominance — fed by the
//!   simulator's `sanitize` feature, and
//! * the `fetchmech-lint` CLI (hosted in the root `fetchmech-repro` crate so
//!   it can drive the simulator), which runs the whole registry over any
//!   suite benchmark.
//!
//! # Examples
//!
//! Verify a generated workload and its optimized layout:
//!
//! ```
//! use fetchmech_analysis::{has_errors, verify_layout, verify_program};
//! use fetchmech_compiler::{reorder, Profile, TraceSelectConfig};
//! use fetchmech_workloads::{suite, InputId};
//!
//! let w = suite::benchmark("compress").expect("known benchmark");
//! assert!(!has_errors(&verify_program(&w.program)));
//!
//! let profile = Profile::collect(&w, &InputId::PROFILE, 10_000);
//! let r = reorder(&w.program, &profile, &TraceSelectConfig::default());
//! let layout = r.layout(16).expect("valid order");
//! assert!(!has_errors(&verify_layout(&r.program, &layout)));
//! ```

pub mod dataflow;
pub mod diag;
pub mod flow;
pub mod geometry;
pub mod hooks;
pub mod optverify;
pub mod registry;
pub mod sanitize;
pub mod stream;
pub mod structural;
pub mod transform;

pub use dataflow::{
    dead_writes, liveness, local_value_numbering, reachability, solve, Analysis, DataflowPass,
    Direction, Dominators, Facts, ReachingDefs,
};
pub use diag::{has_errors, report_human, Diagnostic, DiagnosticSink, Location, Severity};
pub use geometry::{
    analyze_geometry, predicted_eir, BlockGeometry, GeometryReport, SchemeGeometry,
};
pub use hooks::install_debug_hooks;
pub use optverify::{
    check_app_dynamic, check_application, check_opt_static, check_optimized, check_program_ssa,
    check_ssa, eir_delta, EirDelta, OptVerifyPass, WeightedEir, OPT_RULES,
};
pub use registry::{Pass, Registry, Target};
pub use sanitize::{
    check_scheme_dominance, check_static_bound, CycleSanitizer, FetchEnv, SanitizeConfig,
};
pub use stream::{check_stream, StreamPass};

use fetchmech_compiler::{Optimized, Profile, Reordered, Trace, TraceSelectConfig};
use fetchmech_isa::{Layout, Program};
use fetchmech_workloads::Workload;

/// Verifies a control-flow graph with the default passes.
#[must_use]
pub fn verify_program(program: &Program) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::Program(program))
}

/// Verifies a layout (and its underlying program) with the default passes.
#[must_use]
pub fn verify_layout(program: &Program, layout: &Layout) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::Layout { program, layout })
}

/// Verifies a profile against its program, optionally precondition-checking
/// a trace-selection configuration.
#[must_use]
pub fn verify_profile(
    program: &Program,
    profile: &Profile,
    config: Option<&TraceSelectConfig>,
) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::Profile {
        program,
        profile,
        config,
    })
}

/// Verifies trace-selection output against its program.
#[must_use]
pub fn verify_traces(program: &Program, traces: &[Trace]) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::Traces { program, traces })
}

/// Verifies a reorder transform statically (CFG isomorphism modulo
/// branch-sense inversion).
#[must_use]
pub fn verify_transform(original: &Program, reordered: &Reordered) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::Transform {
        original,
        reordered,
    })
}

/// Verifies a run-length block stream with the default passes.
#[must_use]
pub fn verify_stream(stream: &fetchmech_isa::BlockStream) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::Stream(stream))
}

/// Verifies a reorder transform dynamically by executing `insts`
/// instructions of the workload on each side and diffing the projected
/// streams.
#[must_use]
pub fn verify_trace_diff(
    workload: &Workload,
    reordered: &Reordered,
    insts: u64,
) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::TraceDiff {
        workload,
        reordered,
        insts,
    })
}

/// Translation-validates an optimization-pipeline result: static rules plus
/// per-application dynamic trace equivalence over `insts` instructions.
#[must_use]
pub fn verify_optimized(
    workload: &Workload,
    profile: &Profile,
    optimized: &Optimized,
    insts: u64,
) -> Vec<Diagnostic> {
    Registry::with_default_passes().run(&Target::Opt {
        workload,
        profile,
        optimized,
        insts,
    })
}
