//! Structural verification of [`BlockStream`]s — the invariants the
//! simulator's block-level fast path assumes.
//!
//! The fast path walks templates by record id, trusts the per-template
//! op-class counts and nop prefix sums for packet accounting, and takes the
//! chunked (multi-instruction) admission path whenever a template claims to
//! be `sequential()`. A stream violating any of those assumptions would not
//! crash the simulator — it would silently mis-simulate, which is exactly
//! the failure class the differential oracle exists to catch at run time
//! and this pass catches at construction time.

use fetchmech_isa::{BlockStream, SegTemplate};

use crate::diag::{DiagnosticSink, Location};
use crate::registry::{Pass, Target};

/// Rule ids emitted by [`StreamPass`].
pub const STREAM_RULES: &[&str] = &[
    "stream.record-template-range",
    "stream.total-insts",
    "stream.cut-final-only",
    "stream.ctrl-terminal-only",
    "stream.counts-exact",
    "stream.sequential-flag",
    "stream.template-live",
    "stream.record-linkage",
];

/// Structural verifier over a [`BlockStream`]: record/template
/// cross-references, instruction accounting, terminal placement, and the
/// derived per-template metadata the fast fetch path consumes.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamPass;

impl Pass for StreamPass {
    fn name(&self) -> &'static str {
        "structural-stream"
    }

    fn description(&self) -> &'static str {
        "block-stream invariants: record ids in range, instruction totals, \
         cut segments only at the end, terminal-only control transfers, \
         exact op-class counts, honest sequential flags"
    }

    fn rules(&self) -> &'static [&'static str] {
        STREAM_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(target, Target::Stream(_))
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        if let Target::Stream(stream) = target {
            check_stream(stream, sink);
        }
    }
}

fn check_template(id: usize, t: &SegTemplate, sink: &mut DiagnosticSink) {
    let insts = t.insts();
    // stream.ctrl-terminal-only: only the final instruction may carry a
    // control outcome (the fast path treats every earlier slot as a plain
    // straight-line instruction).
    for (i, inst) in insts.iter().enumerate() {
        if i + 1 < insts.len() && inst.ctrl.is_some() {
            sink.error(
                "stream.ctrl-terminal-only",
                Location::Addr(inst.addr),
                format!(
                    "template {id}: non-terminal instruction {i} of {} carries a control outcome",
                    insts.len()
                ),
            );
        }
    }
    // stream.counts-exact: the cached op-class counts and nop prefix sums
    // must agree with a recount of the stored instructions.
    for op in fetchmech_isa::OpClass::ALL {
        let actual = insts.iter().filter(|i| i.op == op).count() as u32;
        if t.op_count(op) != actual {
            sink.error(
                "stream.counts-exact",
                Location::Addr(t.start_addr()),
                format!(
                    "template {id}: cached count for {op:?} is {} but the segment contains {actual}",
                    t.op_count(op)
                ),
            );
        }
    }
    let nops_full = t.nops_in(0..insts.len());
    if nops_full != t.op_count(fetchmech_isa::OpClass::Nop) {
        sink.error(
            "stream.counts-exact",
            Location::Addr(t.start_addr()),
            format!(
                "template {id}: nop prefix sum over the full segment is {nops_full}, \
                 op count says {}",
                t.op_count(fetchmech_isa::OpClass::Nop)
            ),
        );
    }
    // stream.sequential-flag: the chunked-admission flag must match the
    // actual address pattern — a false positive makes the fast path admit
    // instructions at addresses it never checked against the cache block.
    let actually_sequential = insts
        .windows(2)
        .all(|w| w[0].next_pc == w[0].addr.add_words(1) && w[1].addr == w[0].next_pc);
    if t.sequential() != actually_sequential {
        sink.error(
            "stream.sequential-flag",
            Location::Addr(t.start_addr()),
            format!(
                "template {id}: sequential flag is {} but the address pattern says {}",
                t.sequential(),
                actually_sequential
            ),
        );
    }
}

/// Runs every [`StreamPass`] rule over `stream`.
pub fn check_stream(stream: &BlockStream, sink: &mut DiagnosticSink) {
    let templates = stream.templates();
    let records = stream.records();

    for (id, t) in templates.iter().enumerate() {
        check_template(id, t, sink);
    }

    // stream.record-template-range + stream.total-insts: every record must
    // name a real template, and the cached instruction total must equal the
    // sum over records (the fast path sizes its work and its done-detection
    // on it).
    let mut referenced = vec![false; templates.len()];
    let mut total: u64 = 0;
    for (rec, &id) in records.iter().enumerate() {
        match templates.get(id as usize) {
            Some(t) => {
                referenced[id as usize] = true;
                total += t.len() as u64;
            }
            None => sink.error(
                "stream.record-template-range",
                Location::Trace(rec),
                format!(
                    "record {rec} names template {id}, but only {} templates exist",
                    templates.len()
                ),
            ),
        }
    }
    if total != stream.total_insts() {
        sink.error(
            "stream.total-insts",
            Location::Program,
            format!(
                "stream claims {} instructions but its records sum to {total}",
                stream.total_insts()
            ),
        );
    }

    // stream.cut-final-only: a cut segment encodes "the trace ended
    // mid-run", so it can only be the stream's final record.
    for (rec, &id) in records.iter().enumerate() {
        if rec + 1 < records.len() {
            if let Some(t) = templates.get(id as usize) {
                if t.is_cut() {
                    sink.error(
                        "stream.cut-final-only",
                        Location::Trace(rec),
                        format!(
                            "record {rec} of {} executes cut template {id} before the \
                             end of the stream",
                            records.len()
                        ),
                    );
                }
            }
        }
    }

    // stream.template-live: an unreferenced template is dead weight from a
    // buggy encoder — harmless to simulate, so a warning.
    for (id, live) in referenced.iter().enumerate() {
        if !live {
            sink.warn(
                "stream.template-live",
                Location::Addr(templates[id].start_addr()),
                format!("template {id} is referenced by no record"),
            );
        }
    }

    // stream.record-linkage: consecutive records should chain — the resume
    // address of one segment is where the next begins. Hand-assembled
    // streams may legitimately break this (the encoding is positional, not
    // address-driven), so a warning.
    for (rec, pair) in records.windows(2).enumerate() {
        if let (Some(a), Some(b)) = (
            templates.get(pair[0] as usize),
            templates.get(pair[1] as usize),
        ) {
            if a.next_pc() != b.start_addr() {
                sink.warn(
                    "stream.record-linkage",
                    Location::Trace(rec),
                    format!(
                        "record {rec} resumes at {} but record {} starts at {}",
                        a.next_pc(),
                        rec + 1,
                        b.start_addr()
                    ),
                );
            }
        }
    }
}
