//! The pass registry: analysis targets, the [`Pass`] trait, and the
//! [`Registry`] that dispatches targets to every applicable pass.

use std::fmt;

use fetchmech_compiler::{Optimized, Profile, Reordered, Trace, TraceSelectConfig};
use fetchmech_isa::{BlockStream, Layout, Program};
use fetchmech_workloads::Workload;

use crate::diag::{Diagnostic, DiagnosticSink};

/// One artifact (or pair of artifacts) to analyze.
///
/// Passes declare which targets they understand via [`Pass::applies`]; the
/// registry hands every target to every applicable pass.
#[derive(Clone, Copy)]
pub enum Target<'a> {
    /// A control-flow graph on its own.
    Program(&'a Program),
    /// A laid-out program.
    Layout {
        /// The program the layout was produced from.
        program: &'a Program,
        /// The layout under analysis.
        layout: &'a Layout,
    },
    /// An execution profile against its program.
    Profile {
        /// The profiled program.
        program: &'a Program,
        /// The profile under analysis.
        profile: &'a Profile,
        /// Trace-selection configuration to precondition-check, if the
        /// profile is about to feed trace selection.
        config: Option<&'a TraceSelectConfig>,
    },
    /// Trace-selection output against its program.
    Traces {
        /// The program the traces were selected from.
        program: &'a Program,
        /// The selected traces.
        traces: &'a [Trace],
    },
    /// A compiler transform: the original program versus its reordering.
    Transform {
        /// The pre-transform program.
        original: &'a Program,
        /// The reorder result (edited program + order + trace ends).
        reordered: &'a Reordered,
    },
    /// A run-length block stream (the simulator fast path's input).
    Stream(&'a BlockStream),
    /// Dynamic-equivalence check: execute the workload pre and post
    /// transform and diff the projected instruction streams.
    TraceDiff {
        /// The workload (program + behaviour models) being transformed.
        workload: &'a Workload,
        /// The reorder result to execute against the original.
        reordered: &'a Reordered,
        /// Dynamic instructions to execute on each side.
        insts: u64,
    },
    /// An optimization-pipeline result: translation-validate every recorded
    /// pass application, statically and dynamically.
    Opt {
        /// The workload the pipeline started from (its program is the
        /// pipeline input).
        workload: &'a Workload,
        /// The profile the pipeline was driven by.
        profile: &'a Profile,
        /// The pipeline result with its per-pass applications.
        optimized: &'a Optimized,
        /// Dynamic instructions to execute per application side.
        insts: u64,
    },
}

impl fmt::Debug for Target<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Target::Program(_) => "Program",
            Target::Layout { .. } => "Layout",
            Target::Profile { .. } => "Profile",
            Target::Traces { .. } => "Traces",
            Target::Transform { .. } => "Transform",
            Target::Stream(_) => "Stream",
            Target::TraceDiff { .. } => "TraceDiff",
            Target::Opt { .. } => "Opt",
        };
        write!(f, "Target::{name}")
    }
}

/// An analysis pass: a named family of rules over one target kind.
pub trait Pass {
    /// Stable pass name (usable as a CLI filter).
    fn name(&self) -> &'static str;

    /// One-line description of what the pass checks.
    fn description(&self) -> &'static str;

    /// The rule ids this pass can emit.
    fn rules(&self) -> &'static [&'static str];

    /// Returns `true` if the pass knows how to check `target`.
    fn applies(&self, target: &Target<'_>) -> bool;

    /// Checks `target`, emitting findings into `sink`.
    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink);
}

impl fmt::Debug for dyn Pass + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pass({})", self.name())
    }
}

/// An ordered collection of passes.
#[derive(Debug, Default)]
pub struct Registry {
    passes: Vec<Box<dyn Pass>>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry with every built-in pass registered, in the order
    /// structural → flow → traces → transform.
    #[must_use]
    pub fn with_default_passes() -> Self {
        let mut r = Self::new();
        r.register(Box::new(crate::structural::ProgramPass));
        r.register(Box::new(crate::structural::LayoutPass));
        r.register(Box::new(crate::flow::FlowPass));
        r.register(Box::new(crate::transform::TracesPass));
        r.register(Box::new(crate::transform::TransformPass));
        r.register(Box::new(crate::transform::TraceDiffPass));
        r.register(Box::new(crate::optverify::OptVerifyPass));
        r.register(Box::new(crate::stream::StreamPass));
        r.register(Box::new(crate::dataflow::DataflowPass::default()));
        r.register(Box::new(crate::sanitize::SanitizerCatalogPass));
        r
    }

    /// Appends a pass.
    pub fn register(&mut self, pass: Box<dyn Pass>) {
        self.passes.push(pass);
    }

    /// Returns the registered passes.
    #[must_use]
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// Runs every applicable pass over `target` and returns the findings.
    #[must_use]
    pub fn run(&self, target: &Target<'_>) -> Vec<Diagnostic> {
        self.run_filtered(target, |_| true)
    }

    /// Runs the applicable passes whose name satisfies `keep`.
    #[must_use]
    pub fn run_filtered(
        &self,
        target: &Target<'_>,
        keep: impl Fn(&str) -> bool,
    ) -> Vec<Diagnostic> {
        let mut sink = DiagnosticSink::new();
        for pass in &self.passes {
            if keep(pass.name()) && pass.applies(target) {
                pass.run(target, &mut sink);
            }
        }
        sink.into_diagnostics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use fetchmech_workloads::{suite, InputId};

    #[test]
    fn default_registry_covers_every_target_kind() {
        let r = Registry::with_default_passes();
        let w = suite::benchmark("compress").expect("known");
        let profile = Profile::collect(&w, &InputId::PROFILE, 5_000);
        let cfg = TraceSelectConfig::default();
        let traces = fetchmech_compiler::select_traces(&w.program, &profile, &cfg);
        let reordered = fetchmech_compiler::reorder(&w.program, &profile, &cfg);
        let layout =
            fetchmech_isa::Layout::natural(&w.program, fetchmech_isa::LayoutOptions::new(16))
                .expect("layout");
        let stream = w.block_stream(&layout, InputId::TEST, 2_000);
        let optimized = fetchmech_compiler::optimize(
            &w.program,
            &profile,
            &fetchmech_compiler::PassKind::ALL,
            &fetchmech_compiler::OptimizeConfig::default(),
        );
        let targets = [
            Target::Program(&w.program),
            Target::Layout {
                program: &w.program,
                layout: &layout,
            },
            Target::Profile {
                program: &w.program,
                profile: &profile,
                config: Some(&cfg),
            },
            Target::Traces {
                program: &w.program,
                traces: &traces,
            },
            Target::Transform {
                original: &w.program,
                reordered: &reordered,
            },
            Target::TraceDiff {
                workload: &w,
                reordered: &reordered,
                insts: 2_000,
            },
            Target::Stream(&stream),
            Target::Opt {
                workload: &w,
                profile: &profile,
                optimized: &optimized,
                insts: 2_000,
            },
        ];
        for target in &targets {
            let applicable = r.passes().iter().filter(|p| p.applies(target)).count();
            assert!(applicable > 0, "no pass applies to {target:?}");
        }
    }

    #[test]
    fn pass_filter_excludes_by_name() {
        let r = Registry::with_default_passes();
        let w = suite::benchmark("li").expect("known");
        let diags = r.run_filtered(&Target::Program(&w.program), |name| name == "no-such-pass");
        assert!(diags.is_empty());
    }

    #[test]
    fn rule_ids_are_unique_across_passes() {
        let r = Registry::with_default_passes();
        let mut seen = std::collections::HashSet::new();
        for pass in r.passes() {
            for rule in pass.rules() {
                assert!(seen.insert(*rule), "duplicate rule id {rule}");
            }
        }
        assert!(
            seen.len() >= 20,
            "expected a substantial rule set, got {}",
            seen.len()
        );
        let _ = Severity::Info; // silence unused import in minimal builds
    }
}
