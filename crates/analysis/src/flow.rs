//! Profile flow-conservation checks: Kirchhoff-style inflow/outflow balance
//! over execution counts, plus trace-selection preconditions.

use fetchmech_compiler::{Profile, TraceSelectConfig};
use fetchmech_isa::{BlockId, Program, Terminator};

use crate::diag::{DiagnosticSink, Location};
use crate::registry::{Pass, Target};

/// Rule ids emitted by [`FlowPass`].
pub const FLOW_RULES: &[&str] = &[
    "profile.dims",
    "profile.taken-le-total",
    "profile.branch-vs-block",
    "profile.flow-conservation",
    "profile.empty",
    "profile.trace-preconditions",
];

/// Absolute slack allowed on count comparisons. Profiles are cut mid-trace
/// (once per profiling input) and calls in flight at the cut never reach
/// their return block, so exact equality cannot hold.
const ABS_TOL: u64 = 32;

/// Relative slack allowed on count comparisons, on top of [`ABS_TOL`].
const REL_TOL: f64 = 0.025;

fn within_tolerance(a: u64, b: u64) -> bool {
    let hi = a.max(b);
    let diff = a.abs_diff(b);
    diff <= ABS_TOL + (hi as f64 * REL_TOL) as u64
}

/// Flow-conservation verifier over a [`Profile`]: count dimensions, per-branch
/// sanity, Kirchhoff balance of estimated inflow versus measured block counts,
/// and trace-selection preconditions.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowPass;

impl Pass for FlowPass {
    fn name(&self) -> &'static str {
        "profile-flow"
    }

    fn description(&self) -> &'static str {
        "profile invariants: count dimensions, taken<=total, branch-vs-block \
         consistency, Kirchhoff flow conservation, trace-selection preconditions"
    }

    fn rules(&self) -> &'static [&'static str] {
        FLOW_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(target, Target::Profile { .. })
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        if let Target::Profile {
            program,
            profile,
            config,
        } = target
        {
            check_profile(program, profile, sink);
            if let Some(config) = config {
                check_trace_preconditions(config, sink);
            }
        }
    }
}

/// Runs the profile rules (everything except trace preconditions).
pub fn check_profile(program: &Program, profile: &Profile, sink: &mut DiagnosticSink) {
    // profile.dims: the count vectors must match the program. Everything
    // below indexes by these dimensions, so bail out on mismatch.
    let mut dims_ok = true;
    if profile.num_blocks() != program.num_blocks() {
        sink.error(
            "profile.dims",
            Location::Program,
            format!(
                "profile has {} block counts for a {}-block program",
                profile.num_blocks(),
                program.num_blocks()
            ),
        );
        dims_ok = false;
    }
    if profile.num_branches() != program.num_branches() as usize {
        sink.error(
            "profile.dims",
            Location::Program,
            format!(
                "profile has {} branch counters for {} branches",
                profile.num_branches(),
                program.num_branches()
            ),
        );
        dims_ok = false;
    }
    if !dims_ok {
        return;
    }

    // profile.empty: a profile that saw nothing starves trace selection
    // (every trace becomes a zero-weight singleton).
    if (0..program.num_blocks()).all(|i| profile.block_count(BlockId(i as u32)) == 0) {
        sink.warn(
            "profile.empty",
            Location::Program,
            "profile recorded no block executions; trace selection will degenerate",
        );
        return;
    }

    // profile.taken-le-total.
    let mut branch_counts_ok = true;
    for i in 0..program.num_branches() {
        let id = fetchmech_isa::BranchId(i);
        let (taken, total) = profile.branch_counts(id);
        if taken > total {
            sink.error(
                "profile.taken-le-total",
                Location::Branch(id),
                format!("taken count {taken} exceeds execution count {total}"),
            );
            branch_counts_ok = false;
        }
    }

    // profile.branch-vs-block: a conditional branch executes once per full
    // execution of its block, so its total must track the block count
    // (modulo the trace cut ending inside the block).
    for b in program.blocks() {
        if let Some(id) = b.terminator.branch_id() {
            let (_, total) = profile.branch_counts(id);
            let count = profile.block_count(b.id);
            if !within_tolerance(total, count) {
                sink.error(
                    "profile.branch-vs-block",
                    Location::Branch(id),
                    format!(
                        "branch executed {total} times but its block {} was entered {count} times",
                        b.id
                    ),
                );
            }
        }
    }
    if !branch_counts_ok {
        return; // Inflow estimates below would be nonsense.
    }

    // profile.flow-conservation: estimate each block's inflow from its
    // predecessors' measured counts and compare with the block's own count.
    // Outflow attribution: conditional branches split by taken/not-taken
    // counts; calls flow into both the callee entry (the call) and the
    // return block (the eventual return); halts flow into the program entry
    // (the executor's restart semantics).
    let n = program.num_blocks();
    // Blocks that emit no instructions on the natural profiling layout
    // (empty body, elided fall-through/jump) are invisible to the counter:
    // their measured count always reads zero.
    let elided = |b: &fetchmech_isa::Block| -> bool {
        b.insts.is_empty()
            && match b.terminator {
                Terminator::FallThrough { next } | Terminator::Jump { target: next } => {
                    next.0 == b.id.0 + 1
                }
                _ => false,
            }
    };
    let mut inflow = vec![0u64; n];
    for b in program.blocks() {
        if elided(b) {
            continue; // Relayed below from computed inflow, not the counter.
        }
        let count = profile.block_count(b.id);
        let mut add = |to: BlockId, w: u64| {
            if (to.0 as usize) < n {
                inflow[to.0 as usize] += w;
            }
        };
        match b.terminator {
            Terminator::FallThrough { next } => add(next, count),
            Terminator::Jump { target } => add(target, count),
            Terminator::CondBranch {
                id, taken, fall, ..
            } => {
                let (t, total) = profile.branch_counts(id);
                add(taken, t);
                add(fall, total - t);
            }
            Terminator::Call { callee, return_to } => {
                add(callee, count);
                add(return_to, count);
            }
            Terminator::Return => {}
            Terminator::Halt => add(program.entry(), count),
        }
    }
    // An elided block passes whatever flows into it straight through. It
    // only ever feeds block id+1, so one ascending sweep resolves chains.
    for b in program.blocks() {
        if elided(b) {
            inflow[b.id.0 as usize + 1] += inflow[b.id.0 as usize];
        }
    }
    for b in program.blocks() {
        if elided(b) {
            continue; // The zero measured count is legitimate.
        }
        let count = profile.block_count(b.id);
        let expected = inflow[b.id.0 as usize];
        if !within_tolerance(count, expected) {
            sink.error(
                "profile.flow-conservation",
                Location::Block(b.id),
                format!("block entered {count} times but predecessor edges supply {expected}",),
            );
        }
    }
}

/// Runs the `profile.trace-preconditions` rule over a trace-selection
/// configuration.
pub fn check_trace_preconditions(config: &TraceSelectConfig, sink: &mut DiagnosticSink) {
    if !config.threshold.is_finite() || config.threshold <= 0.0 {
        sink.error(
            "profile.trace-preconditions",
            Location::Program,
            format!(
                "trace-selection threshold {} must be finite and positive",
                config.threshold
            ),
        );
    } else if config.threshold < 0.5 {
        sink.warn(
            "profile.trace-preconditions",
            Location::Program,
            format!(
                "trace-selection threshold {} below 0.5: a non-majority edge can extend a trace",
                config.threshold
            ),
        );
    }
    if config.max_blocks == 0 {
        sink.error(
            "profile.trace-preconditions",
            Location::Program,
            "trace-selection max_blocks of 0 forbids even singleton traces",
        );
    }
}
