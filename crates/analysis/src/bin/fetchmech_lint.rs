//! `fetchmech-lint`: run the verification passes over suite benchmarks.
//!
//! ```text
//! fetchmech-lint [OPTIONS] [BENCHMARK...]
//!
//!   BENCHMARK           suite benchmark names (default: the full suite)
//!   --json              emit diagnostics as a JSON array
//!   --pass NAME         run only the named pass (repeatable)
//!   --insts N           profiling/diff instruction budget (default 20000)
//!   --deny-warnings     exit nonzero on warnings too
//!   --list-passes       print the registered passes and their rules
//!   --help              print this help
//! ```
//!
//! For every benchmark the tool generates the workload, collects a profile,
//! selects traces, reorders, lays out (natural, reordered, pad-all,
//! pad-trace), and runs every applicable pass over each artifact — including
//! the dynamic trace diff. Exit status is 1 if any error-severity diagnostic
//! was produced, 2 on usage errors.

use std::process::ExitCode;

use fetchmech_analysis::{report_human, report_json, Diagnostic, Registry, Severity, Target};
use fetchmech_compiler::{layout_pad_all, reorder, select_traces, Profile, TraceSelectConfig};
use fetchmech_isa::{Layout, LayoutOptions};
use fetchmech_workloads::{suite, InputId};

const BLOCK_BYTES: u64 = 16;

struct Options {
    benchmarks: Vec<String>,
    json: bool,
    passes: Vec<String>,
    insts: u64,
    deny_warnings: bool,
}

fn usage() -> &'static str {
    "usage: fetchmech-lint [--json] [--pass NAME]... [--insts N] \
     [--deny-warnings] [--list-passes] [BENCHMARK...]"
}

fn list_passes() {
    let registry = Registry::with_default_passes();
    for pass in registry.passes() {
        println!("{}: {}", pass.name(), pass.description());
        for rule in pass.rules() {
            println!("  {rule}");
        }
    }
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        benchmarks: Vec::new(),
        json: false,
        passes: Vec::new(),
        insts: 20_000,
        deny_warnings: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny_warnings = true,
            "--list-passes" => {
                list_passes();
                return Ok(None);
            }
            "--pass" => {
                let name = it.next().ok_or("--pass needs a pass name")?;
                opts.passes.push(name.clone());
            }
            "--insts" => {
                let n = it.next().ok_or("--insts needs a count")?;
                opts.insts = n.parse().map_err(|_| format!("bad --insts value {n}"))?;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(None);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other}"));
            }
            name => opts.benchmarks.push(name.to_string()),
        }
    }
    if opts.benchmarks.is_empty() {
        opts.benchmarks = suite::INT_NAMES
            .iter()
            .chain(suite::FP_NAMES.iter())
            .map(ToString::to_string)
            .collect();
    }
    Ok(Some(opts))
}

fn lint_benchmark(
    name: &str,
    opts: &Options,
    registry: &Registry,
) -> Result<Vec<Diagnostic>, String> {
    let w = suite::benchmark(name).ok_or_else(|| format!("unknown benchmark {name}"))?;
    let profile = Profile::collect(&w, &InputId::PROFILE, opts.insts);
    let config = TraceSelectConfig::default();
    let traces = select_traces(&w.program, &profile, &config);
    let reordered = reorder(&w.program, &profile, &config);
    let natural = Layout::natural(&w.program, LayoutOptions::new(BLOCK_BYTES))
        .map_err(|e| format!("{name}: natural layout failed: {e}"))?;
    let pad_all = layout_pad_all(&w.program, BLOCK_BYTES)
        .map_err(|e| format!("{name}: pad-all layout failed: {e}"))?;
    let opt_layout = reordered
        .layout(BLOCK_BYTES)
        .map_err(|e| format!("{name}: reordered layout failed: {e}"))?;
    let pad_trace = reordered
        .layout_pad_trace(BLOCK_BYTES)
        .map_err(|e| format!("{name}: pad-trace layout failed: {e}"))?;

    let targets = [
        Target::Program(&w.program),
        Target::Layout {
            program: &w.program,
            layout: &natural,
        },
        Target::Layout {
            program: &w.program,
            layout: &pad_all,
        },
        Target::Layout {
            program: &reordered.program,
            layout: &opt_layout,
        },
        Target::Layout {
            program: &reordered.program,
            layout: &pad_trace,
        },
        Target::Profile {
            program: &w.program,
            profile: &profile,
            config: Some(&config),
        },
        Target::Traces {
            program: &w.program,
            traces: &traces,
        },
        Target::Transform {
            original: &w.program,
            reordered: &reordered,
        },
        Target::TraceDiff {
            workload: &w,
            reordered: &reordered,
            insts: opts.insts,
        },
    ];
    let keep = |pass: &str| opts.passes.is_empty() || opts.passes.iter().any(|p| p == pass);
    let mut diags = Vec::new();
    for target in &targets {
        diags.extend(registry.run_filtered(target, keep));
    }
    Ok(diags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fetchmech-lint: {e}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };

    let registry = Registry::with_default_passes();
    for name in &opts.passes {
        if !registry.passes().iter().any(|p| p.name() == name) {
            eprintln!("fetchmech-lint: unknown pass {name} (see --list-passes)");
            return ExitCode::from(2);
        }
    }
    let mut all = Vec::new();
    let mut failed = false;
    for name in &opts.benchmarks {
        match lint_benchmark(name, &opts, &registry) {
            Ok(diags) => {
                if !opts.json {
                    let errors = diags
                        .iter()
                        .filter(|d| d.severity == Severity::Error)
                        .count();
                    println!("{name}: {} finding(s), {errors} error(s)", diags.len());
                    if !diags.is_empty() {
                        print!("{}", report_human(&diags));
                    }
                }
                all.extend(diags);
            }
            Err(e) => {
                eprintln!("fetchmech-lint: {e}");
                failed = true;
            }
        }
    }
    if opts.json {
        println!("{}", report_json(&all));
    }
    let bad = all.iter().any(|d| {
        d.severity == Severity::Error || (opts.deny_warnings && d.severity == Severity::Warning)
    });
    if failed || bad {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
