//! The diagnostic model: severities, locations, diagnostics, and reporters.

use std::fmt;

use fetchmech_isa::{Addr, BlockId, BranchId, FuncId};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but not semantics-breaking.
    Warning,
    /// An invariant violation; the IR must not be consumed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Where in the IR a diagnostic points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// The whole program / artifact under analysis.
    Program,
    /// A function.
    Func(FuncId),
    /// A basic block.
    Block(BlockId),
    /// A static conditional branch.
    Branch(BranchId),
    /// A laid-out instruction address.
    Addr(Addr),
    /// A selected trace, by index into the trace list.
    Trace(usize),
    /// A dynamic-instruction position in a compared execution trace.
    DynPos(usize),
    /// A simulated cycle (cycle-level sanitizer findings).
    Cycle(u64),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Program => write!(f, "program"),
            Location::Func(id) => write!(f, "{id}"),
            Location::Block(id) => write!(f, "{id}"),
            Location::Branch(id) => write!(f, "{id}"),
            Location::Addr(a) => write!(f, "{a}"),
            Location::Trace(i) => write!(f, "trace#{i}"),
            Location::DynPos(i) => write!(f, "dyn#{i}"),
            Location::Cycle(c) => write!(f, "cycle#{c}"),
        }
    }
}

/// One finding from an analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (e.g. `layout.addr-monotonic`). Mutation tests
    /// key on these, so treat them as API.
    pub rule_id: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// IR location the finding points at.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.rule_id, self.location, self.message
        )
    }
}

/// Collects diagnostics emitted by passes.
#[derive(Debug, Default)]
pub struct DiagnosticSink {
    diags: Vec<Diagnostic>,
}

impl DiagnosticSink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Emits a diagnostic.
    pub fn emit(
        &mut self,
        rule_id: &'static str,
        severity: Severity,
        location: Location,
        message: impl Into<String>,
    ) {
        self.diags.push(Diagnostic {
            rule_id,
            severity,
            location,
            message: message.into(),
        });
    }

    /// Emits an error-severity diagnostic.
    pub fn error(&mut self, rule_id: &'static str, location: Location, message: impl Into<String>) {
        self.emit(rule_id, Severity::Error, location, message);
    }

    /// Emits a warning-severity diagnostic.
    pub fn warn(&mut self, rule_id: &'static str, location: Location, message: impl Into<String>) {
        self.emit(rule_id, Severity::Warning, location, message);
    }

    /// Consumes the sink, returning the collected diagnostics.
    #[must_use]
    pub fn into_diagnostics(self) -> Vec<Diagnostic> {
        self.diags
    }

    /// Returns the diagnostics collected so far.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }
}

/// Returns `true` if any diagnostic is error-severity.
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders diagnostics for terminals: one `severity[rule] at loc: msg` line
/// each, followed by a summary line.
#[must_use]
pub fn report_human(diags: &[Diagnostic]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{d}");
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    let _ = writeln!(out, "{errors} error(s), {warnings} warning(s)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                rule_id: "prog.test-rule",
                severity: Severity::Error,
                location: Location::Block(BlockId(3)),
                message: "something \"quoted\"\nbroke".to_string(),
            },
            Diagnostic {
                rule_id: "layout.other",
                severity: Severity::Warning,
                location: Location::Addr(Addr::new(0x1_0000)),
                message: "suspicious".to_string(),
            },
        ]
    }

    #[test]
    fn human_report_has_summary() {
        let text = report_human(&sample());
        assert!(text.contains("error[prog.test-rule] at B3:"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let mut diags = sample();
        assert!(has_errors(&diags));
        diags.retain(|d| d.severity != Severity::Error);
        assert!(!has_errors(&diags));
    }
}
