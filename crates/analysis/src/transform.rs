//! Transform-equivalence checks: trace-selection postconditions, CFG
//! isomorphism across `reorder()`, and dynamic-trace equivalence.

use fetchmech_compiler::{Reordered, Trace};
use fetchmech_isa::{BlockId, Layout, LayoutOptions, OpClass, Program, Terminator};
use fetchmech_workloads::{InputId, Workload};

use crate::diag::{DiagnosticSink, Location};
use crate::registry::{Pass, Target};

/// Rule ids emitted by [`TracesPass`].
pub const TRACES_RULES: &[&str] = &[
    "traces.nonempty",
    "traces.partition",
    "traces.same-func",
    "traces.adjacent-edges",
];

/// Postcondition verifier for trace selection: traces partition the blocks,
/// stay within one function, and follow real CFG edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct TracesPass;

impl Pass for TracesPass {
    fn name(&self) -> &'static str {
        "traces"
    }

    fn description(&self) -> &'static str {
        "trace-selection postconditions: block partition, single-function \
         traces, CFG-successor adjacency"
    }

    fn rules(&self) -> &'static [&'static str] {
        TRACES_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(target, Target::Traces { .. })
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        if let Target::Traces { program, traces } = target {
            check_traces(program, traces, sink);
        }
    }
}

/// Runs every [`TracesPass`] rule.
pub fn check_traces(program: &Program, traces: &[Trace], sink: &mut DiagnosticSink) {
    let n = program.num_blocks();
    let mut seen = vec![false; n];
    for (ti, trace) in traces.iter().enumerate() {
        if trace.blocks.is_empty() {
            sink.error(
                "traces.nonempty",
                Location::Trace(ti),
                "trace has no blocks",
            );
            continue;
        }
        for &b in &trace.blocks {
            let idx = b.0 as usize;
            if idx >= n {
                sink.error(
                    "traces.partition",
                    Location::Trace(ti),
                    format!("trace contains out-of-range block {b}"),
                );
            } else if seen[idx] {
                sink.error(
                    "traces.partition",
                    Location::Trace(ti),
                    format!("block {b} appears in more than one trace"),
                );
            } else {
                seen[idx] = true;
            }
        }
        let func = program.block(trace.blocks[0]).func;
        for &b in &trace.blocks[1..] {
            if (b.0 as usize) < n && program.block(b).func != func {
                sink.error(
                    "traces.same-func",
                    Location::Trace(ti),
                    format!(
                        "block {b} is in {}, trace started in {func}",
                        program.block(b).func
                    ),
                );
            }
        }
        for pair in trace.blocks.windows(2) {
            if (pair[0].0 as usize) >= n || (pair[1].0 as usize) >= n {
                continue;
            }
            let is_succ = program
                .block(pair[0])
                .terminator
                .local_successors()
                .into_iter()
                .any(|(_, s)| s == pair[1]);
            if !is_succ {
                sink.error(
                    "traces.adjacent-edges",
                    Location::Trace(ti),
                    format!("{} -> {} is not a CFG edge", pair[0], pair[1]),
                );
            }
        }
    }
    for (idx, &s) in seen.iter().enumerate() {
        if !s {
            sink.error(
                "traces.partition",
                Location::Block(BlockId(idx as u32)),
                "block is not covered by any trace",
            );
        }
    }
}

/// Rule ids emitted by [`TransformPass`].
pub const TRANSFORM_RULES: &[&str] = &[
    "xform.isomorphic",
    "xform.body-preserved",
    "xform.terminator-equiv",
    "xform.order-permutation",
    "xform.inverted-count",
    "xform.trace-ends",
];

/// Static equivalence verifier across `reorder()`: the transformed program
/// must be the original CFG modulo branch-sense inversion, and the layout
/// order must be a permutation.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransformPass;

impl Pass for TransformPass {
    fn name(&self) -> &'static str {
        "transform"
    }

    fn description(&self) -> &'static str {
        "reorder equivalence: CFG isomorphism modulo branch-sense inversion, \
         order permutation, inversion accounting"
    }

    fn rules(&self) -> &'static [&'static str] {
        TRANSFORM_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(target, Target::Transform { .. })
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        if let Target::Transform {
            original,
            reordered,
        } = target
        {
            check_transform(original, reordered, sink);
        }
    }
}

/// Runs every [`TransformPass`] rule.
pub fn check_transform(original: &Program, reordered: &Reordered, sink: &mut DiagnosticSink) {
    let new = &reordered.program;

    // xform.isomorphic: identical block/function/branch structure.
    let mut shape_ok = true;
    if original.num_blocks() != new.num_blocks()
        || original.num_funcs() != new.num_funcs()
        || original.num_branches() != new.num_branches()
    {
        sink.error(
            "xform.isomorphic",
            Location::Program,
            format!(
                "shape changed: {}x{}x{} blocks/funcs/branches became {}x{}x{}",
                original.num_blocks(),
                original.num_funcs(),
                original.num_branches(),
                new.num_blocks(),
                new.num_funcs(),
                new.num_branches()
            ),
        );
        shape_ok = false;
    }
    if original.entry() != new.entry() {
        sink.error(
            "xform.isomorphic",
            Location::Block(new.entry()),
            format!("entry moved from {} to {}", original.entry(), new.entry()),
        );
    }
    if !shape_ok {
        return;
    }
    for (a, b) in original.blocks().iter().zip(new.blocks()) {
        if a.func != b.func {
            sink.error(
                "xform.isomorphic",
                Location::Block(a.id),
                format!("block moved from {} to {}", a.func, b.func),
            );
        }
    }

    // xform.body-preserved: reordering only rewrites terminators.
    for (a, b) in original.blocks().iter().zip(new.blocks()) {
        if a.insts != b.insts {
            sink.error(
                "xform.body-preserved",
                Location::Block(a.id),
                "block body instructions changed across reorder",
            );
        }
    }

    // xform.terminator-equiv: conditional branches may only swap their
    // taken/fall edges with the inverted flag toggled; every other
    // terminator must be untouched.
    let mut inverted_seen = 0usize;
    for (a, b) in original.blocks().iter().zip(new.blocks()) {
        match (a.terminator, b.terminator) {
            (
                Terminator::CondBranch {
                    id,
                    srcs,
                    taken,
                    fall,
                    inverted,
                },
                Terminator::CondBranch {
                    id: id2,
                    srcs: srcs2,
                    taken: taken2,
                    fall: fall2,
                    inverted: inverted2,
                },
            ) => {
                if id != id2 || srcs != srcs2 {
                    sink.error(
                        "xform.terminator-equiv",
                        Location::Block(a.id),
                        format!("branch identity changed: {id}/{srcs:?} vs {id2}/{srcs2:?}"),
                    );
                    continue;
                }
                if taken == taken2 && fall == fall2 {
                    if inverted != inverted2 {
                        sink.error(
                            "xform.terminator-equiv",
                            Location::Branch(id),
                            "inverted flag toggled without swapping the edges",
                        );
                    }
                } else if taken == fall2 && fall == taken2 {
                    if inverted == inverted2 {
                        sink.error(
                            "xform.terminator-equiv",
                            Location::Branch(id),
                            "edges swapped without toggling the inverted flag",
                        );
                    } else {
                        inverted_seen += 1;
                    }
                } else {
                    sink.error(
                        "xform.terminator-equiv",
                        Location::Branch(id),
                        format!("edges retargeted: {taken}/{fall} became {taken2}/{fall2}",),
                    );
                }
            }
            (a_t, b_t) if a_t == b_t => {}
            _ => sink.error(
                "xform.terminator-equiv",
                Location::Block(a.id),
                "non-branch terminator changed across reorder",
            ),
        }
    }

    // xform.inverted-count: the reported inversion count must match the
    // number of actually swapped branches.
    if inverted_seen != reordered.inverted_branches {
        sink.error(
            "xform.inverted-count",
            Location::Program,
            format!(
                "reorder reports {} inversions but {} branches changed sense",
                reordered.inverted_branches, inverted_seen
            ),
        );
    }

    // xform.order-permutation.
    let n = original.num_blocks();
    let mut seen = vec![false; n];
    if reordered.order.len() != n {
        sink.error(
            "xform.order-permutation",
            Location::Program,
            format!("order has {} entries for {n} blocks", reordered.order.len()),
        );
    }
    for &b in &reordered.order {
        let idx = b.0 as usize;
        if idx >= n || seen[idx] {
            sink.error(
                "xform.order-permutation",
                Location::Block(b),
                format!("block {b} is duplicated or out of range in the reorder output"),
            );
        } else {
            seen[idx] = true;
        }
    }

    // xform.trace-ends: padding points must be real blocks.
    for &b in &reordered.trace_ends {
        if (b.0 as usize) >= n {
            sink.error(
                "xform.trace-ends",
                Location::Block(b),
                format!("trace end {b} is out of range"),
            );
        }
    }
}

/// Rule ids emitted by [`TraceDiffPass`].
pub const TRACE_DIFF_RULES: &[&str] = &["xform.trace-equiv", "xform.trace-overlap"];

/// Dynamic equivalence verifier: executes a workload before and after
/// reordering and diffs the projected (non-control, non-nop) instruction
/// streams — the deterministic semantics reordering must preserve.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceDiffPass;

impl Pass for TraceDiffPass {
    fn name(&self) -> &'static str {
        "trace-diff"
    }

    fn description(&self) -> &'static str {
        "dynamic equivalence: the projected instruction stream is unchanged \
         by reordering under the held-out test input"
    }

    fn rules(&self) -> &'static [&'static str] {
        TRACE_DIFF_RULES
    }

    fn applies(&self, target: &Target<'_>) -> bool {
        matches!(target, Target::TraceDiff { .. })
    }

    fn run(&self, target: &Target<'_>, sink: &mut DiagnosticSink) {
        if let Target::TraceDiff {
            workload,
            reordered,
            insts,
        } = target
        {
            check_trace_diff(workload, reordered, *insts, sink);
        }
    }
}

/// Runs the dynamic-trace diff for `insts` instructions per side.
pub fn check_trace_diff(
    workload: &Workload,
    reordered: &Reordered,
    insts: u64,
    sink: &mut DiagnosticSink,
) {
    let block_bytes = 16;
    let natural = match Layout::natural(&workload.program, LayoutOptions::new(block_bytes)) {
        Ok(l) => l,
        Err(e) => {
            sink.error(
                "xform.trace-equiv",
                Location::Program,
                format!("original program fails to lay out: {e}"),
            );
            return;
        }
    };
    let transformed = match reordered.layout(block_bytes) {
        Ok(l) => l,
        Err(e) => {
            sink.error(
                "xform.trace-equiv",
                Location::Program,
                format!("reordered program fails to lay out: {e}"),
            );
            return;
        }
    };
    let reordered_workload = Workload {
        spec: workload.spec.clone(),
        program: reordered.program.clone(),
        behaviors: workload.behaviors.clone(),
    };
    // Project away addresses, control, and padding: what must survive the
    // transform is the computation, not the placement.
    let project = |w: &Workload, l: &Layout| -> Vec<(OpClass, _, _)> {
        w.executor(l, InputId::TEST, insts)
            .filter(|i| i.ctrl.is_none() && i.op != OpClass::Nop)
            .map(|i| (i.op, i.dest, i.srcs))
            .collect()
    };
    let before = project(workload, &natural);
    let after = project(&reordered_workload, &transformed);
    let n = before.len().min(after.len());
    // Both sides execute the same instruction budget, but nops and control
    // overhead differ between layouts, so the useful-instruction streams end
    // at different points; only the common prefix is comparable.
    if n < (insts as usize) / 4 {
        sink.warn(
            "xform.trace-overlap",
            Location::Program,
            format!(
                "only {n} comparable instructions from a budget of {insts}; \
                 the equivalence check has low coverage"
            ),
        );
    }
    for (pos, (a, b)) in before[..n].iter().zip(&after[..n]).enumerate() {
        if a != b {
            sink.error(
                "xform.trace-equiv",
                Location::DynPos(pos),
                format!(
                    "instruction streams diverge: natural executes {:?}, reordered executes {:?}",
                    a, b
                ),
            );
            return; // One divergence implies everything after differs.
        }
    }
}
