//! # fetchmech-cache
//!
//! Instruction-cache models for the `fetchmech` reproduction of the ISCA '95
//! fetch-mechanisms paper.
//!
//! All three machine models (P14/P18/P112) use a direct-mapped instruction
//! cache whose block holds exactly one issue-width of instructions (16 B /
//! 32 B / 64 B). The interleaved, banked, and collapsing-buffer fetch schemes
//! additionally view the cache as two independently-addressable banks; bank
//! selection is by block index parity. [`ICache`] models tags, fills, and
//! hit/miss statistics; data contents are immaterial to a timing simulator
//! and are not stored.
//!
//! # Examples
//!
//! ```
//! use fetchmech_cache::{CacheConfig, ICache};
//! use fetchmech_isa::Addr;
//!
//! let mut cache = ICache::new(CacheConfig::new(32 * 1024, 16, 2));
//! assert!(!cache.access(Addr::new(0x1000)).is_hit()); // cold miss fills
//! assert!(cache.access(Addr::new(0x1004)).is_hit());  // same block
//! assert_eq!(cache.stats().misses, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;

use fetchmech_isa::Addr;

/// Geometry of a direct-mapped, banked instruction cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Number of independently-addressable banks (1 for plain *sequential*,
    /// 2 for the interleaved/banked/collapsing schemes).
    pub banks: u32,
}

impl CacheConfig {
    /// Creates a cache configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `size_bytes` and `block_bytes` are powers of two with
    /// `size_bytes >= block_bytes`, and `banks` is a nonzero power of two.
    #[must_use]
    pub fn new(size_bytes: u64, block_bytes: u64, banks: u32) -> Self {
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(
            block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(size_bytes >= block_bytes, "cache smaller than one block");
        assert!(
            banks > 0 && banks.is_power_of_two(),
            "banks must be a nonzero power of two"
        );
        Self {
            size_bytes,
            block_bytes,
            banks,
        }
    }

    /// Number of blocks (sets, for a direct-mapped cache).
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / self.block_bytes
    }

    /// Instructions per cache block.
    #[must_use]
    pub fn insts_per_block(&self) -> u64 {
        self.block_bytes / fetchmech_isa::WORD_BYTES
    }

    /// Bank holding the block that contains `addr` (block-index parity
    /// interleaving, as in Figure 4 of the paper).
    #[must_use]
    pub fn bank_of(&self, addr: Addr) -> u32 {
        // `banks` is validated to be a power of two.
        (addr.block_index(self.block_bytes) & u64::from(self.banks - 1)) as u32
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB direct-mapped, {}B blocks, {} bank(s)",
            self.size_bytes / 1024,
            self.block_bytes,
            self.banks
        )
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The block was resident.
    Hit,
    /// The block was not resident and has been filled.
    Miss,
}

impl Access {
    /// Returns `true` for [`Access::Hit`].
    #[must_use]
    pub fn is_hit(self) -> bool {
        self == Access::Hit
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total block accesses.
    pub accesses: u64,
    /// Accesses that missed (and filled).
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; `0` when no accesses occurred.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A direct-mapped instruction cache (tags only).
#[derive(Debug, Clone)]
pub struct ICache {
    config: CacheConfig,
    tags: Vec<Option<u64>>,
    stats: CacheStats,
}

impl ICache {
    /// Creates an empty (all-invalid) cache.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            tags: vec![None; config.num_sets() as usize],
            stats: CacheStats::default(),
        }
    }

    /// Returns the configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accesses the block containing `addr`, filling it on a miss.
    pub fn access(&mut self, addr: Addr) -> Access {
        self.stats.accesses += 1;
        // Size and block bytes are powers of two, so set selection is a
        // mask and the tag a shift (this is the simulator's hottest loop).
        let block = addr.block_index(self.config.block_bytes);
        let sets = self.config.num_sets();
        let set = (block & (sets - 1)) as usize;
        let tag = block >> sets.trailing_zeros();
        if self.tags[set] == Some(tag) {
            Access::Hit
        } else {
            self.tags[set] = Some(tag);
            self.stats.misses += 1;
            Access::Miss
        }
    }

    /// Returns `true` if the block containing `addr` is resident, without
    /// updating state or statistics.
    #[must_use]
    pub fn probe(&self, addr: Addr) -> bool {
        let block = addr.block_index(self.config.block_bytes);
        let sets = self.config.num_sets();
        let set = (block & (sets - 1)) as usize;
        let tag = block >> sets.trailing_zeros();
        self.tags[set] == Some(tag)
    }

    /// Returns the bank holding `addr`'s block.
    #[must_use]
    pub fn bank_of(&self, addr: Addr) -> u32 {
        self.config.bank_of(addr)
    }

    /// Returns accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates every block and clears statistics.
    pub fn reset(&mut self) {
        self.tags.fill(None);
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ICache {
        // 256 B, 16 B blocks => 16 sets.
        ICache::new(CacheConfig::new(256, 16, 2))
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert_eq!(c.access(Addr::new(0x40)), Access::Miss);
        assert_eq!(c.access(Addr::new(0x4c)), Access::Hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflicting_blocks_evict() {
        let mut c = small();
        // 0x000 and 0x100 map to the same set (16 sets * 16 B = 256 B stride).
        assert_eq!(c.access(Addr::new(0x000)), Access::Miss);
        assert_eq!(c.access(Addr::new(0x100)), Access::Miss);
        assert_eq!(
            c.access(Addr::new(0x000)),
            Access::Miss,
            "must have been evicted"
        );
    }

    #[test]
    fn distinct_sets_coexist() {
        let mut c = small();
        for i in 0..16u64 {
            assert_eq!(c.access(Addr::new(i * 16)), Access::Miss);
        }
        for i in 0..16u64 {
            assert_eq!(c.access(Addr::new(i * 16)), Access::Hit);
        }
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = small();
        assert!(!c.probe(Addr::new(0x40)));
        assert_eq!(c.stats().accesses, 0);
        c.access(Addr::new(0x40));
        assert!(c.probe(Addr::new(0x40)));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn banks_alternate_by_block() {
        let c = small();
        assert_eq!(c.bank_of(Addr::new(0x00)), 0);
        assert_eq!(c.bank_of(Addr::new(0x10)), 1);
        assert_eq!(c.bank_of(Addr::new(0x20)), 0);
        // Addresses within one block share a bank.
        assert_eq!(c.bank_of(Addr::new(0x1c)), 1);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = small();
        c.access(Addr::new(0x40));
        c.reset();
        assert!(!c.probe(Addr::new(0x40)));
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        c.access(Addr::new(0x0));
        c.access(Addr::new(0x0));
        c.access(Addr::new(0x0));
        c.access(Addr::new(0x0));
        assert!((c.stats().miss_ratio() - 0.25).abs() < 1e-9);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn paper_geometries_are_constructible() {
        for (size, block) in [(32 * 1024, 16), (64 * 1024, 32), (128 * 1024, 64)] {
            let c = ICache::new(CacheConfig::new(size, block, 2));
            assert_eq!(c.config().insts_per_block() * 4, block);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = CacheConfig::new(3000, 16, 2);
    }
}
