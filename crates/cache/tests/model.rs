//! Model-based property tests: [`ICache`] against a trivially-correct
//! reference implementation of direct-mapped semantics.

use std::collections::HashMap;

use fetchmech_cache::{Access, CacheConfig, ICache};
use fetchmech_isa::Addr;
use proptest::prelude::*;

/// Reference model: a map from set index to resident block index.
struct RefCache {
    sets: u64,
    block_bytes: u64,
    resident: HashMap<u64, u64>,
}

impl RefCache {
    fn new(cfg: &CacheConfig) -> Self {
        Self {
            sets: cfg.num_sets(),
            block_bytes: cfg.block_bytes,
            resident: HashMap::new(),
        }
    }

    fn access(&mut self, addr: Addr) -> Access {
        let block = addr.byte() / self.block_bytes;
        let set = block % self.sets;
        if self.resident.get(&set) == Some(&block) {
            Access::Hit
        } else {
            self.resident.insert(set, block);
            Access::Miss
        }
    }
}

fn arb_config() -> impl Strategy<Value = CacheConfig> {
    (4u32..10, 2u32..7, 0u32..2).prop_map(|(size_log, block_log, banks_log)| {
        let block = 1u64 << block_log;
        let size = (1u64 << size_log).max(block) * block;
        CacheConfig::new(size, block, 1 << banks_log)
    })
}

proptest! {
    /// Every access agrees with the reference model, for arbitrary
    /// geometries and access sequences.
    #[test]
    fn matches_reference_model(
        cfg in arb_config(),
        addrs in proptest::collection::vec(0u64..(1 << 20), 1..300),
    ) {
        let mut dut = ICache::new(cfg);
        let mut model = RefCache::new(&cfg);
        let mut misses = 0u64;
        for a in addrs {
            let addr = Addr::new(a);
            let expect = model.access(addr);
            let got = dut.access(addr);
            prop_assert_eq!(got, expect, "addr {:#x}", a);
            misses += u64::from(!got.is_hit());
        }
        prop_assert_eq!(dut.stats().misses, misses);
    }

    /// A probe never changes behaviour: probe == (next access hits).
    #[test]
    fn probe_predicts_access(
        cfg in arb_config(),
        addrs in proptest::collection::vec(0u64..(1 << 16), 1..200),
    ) {
        let mut dut = ICache::new(cfg);
        for a in addrs {
            let addr = Addr::new(a);
            let predicted_hit = dut.probe(addr);
            let got = dut.access(addr);
            prop_assert_eq!(got.is_hit(), predicted_hit);
        }
    }

    /// Addresses within one block always share a bank; adjacent blocks
    /// alternate banks when there are two.
    #[test]
    fn bank_mapping_is_consistent(cfg in arb_config(), a in 0u64..(1 << 20)) {
        let cache = ICache::new(cfg);
        let addr = Addr::new(a);
        let base = addr.block_base(cfg.block_bytes);
        prop_assert_eq!(cache.bank_of(addr), cache.bank_of(base));
        if cfg.banks == 2 {
            let next = Addr::new(base.byte() + cfg.block_bytes);
            prop_assert_ne!(cache.bank_of(base), cache.bank_of(next));
        }
    }

    /// The working set fits: touching at most `num_sets` *distinct,
    /// conflict-free* blocks then re-touching them all hits.
    #[test]
    fn conflict_free_working_set_stays_resident(cfg in arb_config(), start in 0u64..64) {
        let mut dut = ICache::new(cfg);
        let n = cfg.num_sets().min(64);
        for i in 0..n {
            let addr = Addr::new((start + i) * cfg.block_bytes);
            prop_assert!(!dut.access(addr).is_hit());
        }
        for i in 0..n {
            let addr = Addr::new((start + i) * cfg.block_bytes);
            prop_assert!(dut.access(addr).is_hit(), "block {i} evicted unexpectedly");
        }
    }
}
