//! Profile collection: block and branch-edge counts from profiling runs.
//!
//! The paper's methodology (§4): five training inputs generate profile
//! statistics; the processor simulation then runs a sixth, held-out input.
//! [`Profile::collect`] executes a workload on its natural layout for each
//! profiling input and accumulates per-block execution counts and per-branch
//! taken/not-taken counts.

use fetchmech_isa::{BlockId, BranchId, Layout, LayoutOptions, OpClass, Program};
use fetchmech_workloads::{InputId, Workload};

/// Aggregated execution profile of one workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Executions of each block's first instruction, by `BlockId` index.
    block_count: Vec<u64>,
    /// Hardware-taken counts per conditional branch.
    taken: Vec<u64>,
    /// Execution counts per conditional branch.
    total: Vec<u64>,
}

impl Profile {
    /// Collects a profile by running `workload` on its natural layout for
    /// `insts_per_input` instructions on each of the given inputs.
    ///
    /// Profiles are collected on the *natural* (unoptimized) layout, whose
    /// conditional branches all have their original sense, so hardware-taken
    /// counts equal semantic-taken counts.
    #[must_use]
    pub fn collect(workload: &Workload, inputs: &[InputId], insts_per_input: u64) -> Self {
        let program = &workload.program;
        let layout = Layout::natural(program, LayoutOptions::new(16))
            .expect("natural layout of a valid program");
        let mut profile = Self {
            block_count: vec![0; program.num_blocks()],
            taken: vec![0; program.num_branches() as usize],
            total: vec![0; program.num_branches() as usize],
        };
        for &input in inputs {
            for inst in workload.executor(&layout, input, insts_per_input) {
                let laid = layout
                    .inst_at(inst.addr)
                    .expect("trace address maps to layout");
                // Count block entries at the block's first instruction.
                if layout.block_addr(laid.block) == inst.addr {
                    profile.block_count[laid.block.0 as usize] += 1;
                }
                if inst.op == OpClass::CondBranch {
                    let id = inst
                        .ctrl
                        .expect("branch ctrl")
                        .branch_id
                        .expect("branch id");
                    profile.total[id.0 as usize] += 1;
                    if inst.ctrl.expect("branch ctrl").taken {
                        profile.taken[id.0 as usize] += 1;
                    }
                }
            }
        }
        crate::hooks::check_profile(program, &profile);
        profile
    }

    /// Builds a profile from raw per-block and per-branch count vectors.
    ///
    /// Intended for analysis tooling and tests that need to construct (or
    /// deliberately corrupt) profiles without running an executor. `taken`
    /// and `total` must have equal length; dimensions against any particular
    /// program are *not* checked here — that is the analysis layer's job.
    ///
    /// # Panics
    ///
    /// Panics if `taken` and `total` differ in length.
    #[must_use]
    pub fn from_raw(block_count: Vec<u64>, taken: Vec<u64>, total: Vec<u64>) -> Self {
        assert_eq!(taken.len(), total.len(), "taken/total length mismatch");
        Self {
            block_count,
            taken,
            total,
        }
    }

    /// Number of blocks this profile has counts for.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.block_count.len()
    }

    /// Number of conditional branches this profile has counts for.
    #[must_use]
    pub fn num_branches(&self) -> usize {
        self.total.len()
    }

    /// Execution count of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    #[must_use]
    pub fn block_count(&self, block: BlockId) -> u64 {
        self.block_count[block.0 as usize]
    }

    /// `(taken, total)` execution counts of `branch`.
    ///
    /// # Panics
    ///
    /// Panics if `branch` is out of range.
    #[must_use]
    pub fn branch_counts(&self, branch: BranchId) -> (u64, u64) {
        (self.taken[branch.0 as usize], self.total[branch.0 as usize])
    }

    /// Probability the branch's *taken* edge is followed (0.5 when the branch
    /// was never executed during profiling).
    #[must_use]
    pub fn taken_prob(&self, branch: BranchId) -> f64 {
        let (t, n) = self.branch_counts(branch);
        if n == 0 {
            0.5
        } else {
            t as f64 / n as f64
        }
    }

    /// The probability-weighted count of each successor edge of `block`,
    /// as `(successor, estimated count)` pairs. Unexecuted blocks report
    /// zero-count edges.
    #[must_use]
    pub fn edge_weights(&self, program: &Program, block: BlockId) -> Vec<(BlockId, f64)> {
        let b = program.block(block);
        let count = self.block_count(block) as f64;
        match b.terminator.branch_id() {
            Some(id) => {
                let p = self.taken_prob(id);
                b.terminator
                    .local_successors()
                    .into_iter()
                    .map(|(kind, succ)| {
                        let w = match kind {
                            fetchmech_isa::EdgeKind::Taken => count * p,
                            _ => count * (1.0 - p),
                        };
                        (succ, w)
                    })
                    .collect()
            }
            None => b
                .terminator
                .local_successors()
                .into_iter()
                .map(|(_, succ)| (succ, count))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fetchmech_workloads::{suite, WorkloadSpec};

    fn workload() -> Workload {
        let mut s = WorkloadSpec::base_int("profile-unit", 11);
        s.funcs = 4;
        Workload::generate(s)
    }

    #[test]
    fn profile_counts_are_consistent() {
        let w = workload();
        let p = Profile::collect(&w, &InputId::PROFILE, 20_000);
        // Entry block runs at least once per restart.
        assert!(p.block_count(w.program.entry()) > 0);
        for i in 0..w.program.num_branches() {
            let (t, n) = p.branch_counts(BranchId(i));
            assert!(t <= n, "taken exceeds total for br{i}");
        }
        // Some branch actually executed.
        let any = (0..w.program.num_branches()).any(|i| p.branch_counts(BranchId(i)).1 > 0);
        assert!(any);
    }

    #[test]
    fn profile_is_deterministic() {
        let w = workload();
        let a = Profile::collect(&w, &InputId::PROFILE, 10_000);
        let b = Profile::collect(&w, &InputId::PROFILE, 10_000);
        assert_eq!(a, b);
    }

    #[test]
    fn edge_weights_sum_to_block_count_for_branches() {
        let w = suite::benchmark("compress").expect("known");
        let p = Profile::collect(&w, &[InputId(0)], 20_000);
        for b in w.program.blocks() {
            if b.terminator.branch_id().is_some() {
                let total: f64 = p
                    .edge_weights(&w.program, b.id)
                    .iter()
                    .map(|(_, w)| w)
                    .sum();
                let count = p.block_count(b.id) as f64;
                // Totals agree within rounding (branch may sit after a
                // partial block execution at the trace cut).
                assert!(
                    (total - count).abs() <= count * 0.25 + 2.0,
                    "block {} edge weights {total} vs count {count}",
                    b.id
                );
            }
        }
    }

    #[test]
    fn unexecuted_branch_defaults_to_half() {
        let w = workload();
        let p = Profile {
            block_count: vec![0; 4],
            taken: vec![0],
            total: vec![0],
        };
        let _ = w;
        assert_eq!(p.taken_prob(BranchId(0)), 0.5);
    }
}
