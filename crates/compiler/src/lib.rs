//! # fetchmech-compiler
//!
//! The profile-driven compiler optimizations of the ISCA '95 fetch-mechanisms
//! paper's §4:
//!
//! * [`Profile`] — block and branch-edge counts gathered from training
//!   inputs (the paper's five-profile-inputs methodology),
//! * [`select_traces`] — Fisher-style trace selection,
//! * [`reorder()`](reorder()) — trace layout with branch-sense inversion
//!   (code reordering, Figure 12 / Table 3),
//! * [`pad`] — the `pad-all` and `pad-trace` nop-insertion schemes
//!   (Figure 13 / Table 4),
//! * [`optimize`] — the SSA-era pass pipeline ([`lvn()`](lvn()),
//!   [`dce()`](dce()), [`superblock()`](superblock()), branch
//!   straightening), each application recorded for translation validation
//!   by the analysis crate.
//!
//! # Examples
//!
//! Profile a workload on its training inputs and reorder it:
//!
//! ```
//! use fetchmech_compiler::{reorder, Profile, TraceSelectConfig};
//! use fetchmech_workloads::{suite, InputId};
//!
//! let w = suite::benchmark("compress").expect("known benchmark");
//! let profile = Profile::collect(&w, &InputId::PROFILE, 10_000);
//! let reordered = reorder(&w.program, &profile, &TraceSelectConfig::default());
//! let layout = reordered.layout(16).expect("valid order");
//! assert_eq!(layout.order().len(), w.program.num_blocks());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dce;
pub mod hooks;
pub mod lvn;
pub mod pad;
pub mod passes;
pub mod profile;
pub mod reorder;
pub mod ssa;
pub mod superblock;
pub mod traceselect;

pub use dce::{dce, dead_inst_sites, value_liveness, DceResult, DeadSite};
pub use lvn::{copy_op, lvn, lvn_pure, LvnResult, LvnRewrite};
pub use pad::{expansion, layout_pad_all, PadReport};
pub use passes::{optimize, OptimizeConfig, Optimized, PassApplication, PassEdit, PassKind};
pub use profile::Profile;
pub use reorder::{reorder, Reordered};
pub use ssa::{build_ssa, PhiNode, SsaDef, SsaForm, SsaValue};
pub use superblock::{superblock, SuperblockResult};
pub use traceselect::{select_traces, Trace, TraceSelectConfig};
